//! Quickstart: build a small distributed task DAG on a simulated 4-node
//! cluster and run it with every communication backend.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The DAG is a map-shuffle-reduce: node-local "map" tasks produce real
//! payloads, a "shuffle" moves them across nodes through the ACTIVATE /
//! GET DATA / put protocol, and a "reduce" on node 0 folds everything.
//! The distributed result is checked against the sequential oracle.
//!
//! After the simulated backends, the same graph runs **for real** on the
//! work-stealing thread pool (`--threads N`; `0`/default = one per core,
//! `1` = deterministic) — same protocol over the in-process shared-memory
//! transport, wall-clock time, and the identical oracle-checked result.

use amtlc::bench::{comm_tuning_args, cost_model_arg, threads_arg, threads_arg_opt, ObsSink};
use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, GraphBuilder, TaskDesc};
use bytes::Bytes;

fn build_graph(nodes: usize) -> (amtlc::core::TaskGraph, amtlc::core::VersionId) {
    let mut g = GraphBuilder::new(nodes);

    // One seed datum per node.
    for n in 0..nodes as u64 {
        g.data(n, 8, n as usize, Some(Bytes::from(vec![n as u8 + 1; 8])));
    }

    // Map: each node doubles its seed.
    for n in 0..nodes as u64 {
        g.insert(
            TaskDesc::new("map")
                .on_node(n as usize)
                .flops(1e7)
                .read_key(n)
                .write(100 + n, 8)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>(),
                    )]
                }),
        );
    }

    // Shuffle: every node consumes its right neighbour's map output.
    for n in 0..nodes as u64 {
        let src = (n + 1) % nodes as u64;
        g.insert(
            TaskDesc::new("shuffle")
                .on_node(n as usize)
                .flops(1e7)
                .read_key(100 + src)
                .write(200 + n, 8)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b + 1).collect::<Vec<u8>>(),
                    )]
                }),
        );
    }

    // Reduce on node 0.
    let mut reduce = TaskDesc::new("reduce").on_node(0).flops(1e7).write(999, 8);
    for n in 0..nodes as u64 {
        reduce = reduce.read_key(200 + n);
    }
    let reduce = reduce.kernel(|ins| {
        let mut acc = vec![0u8; 8];
        for frame in ins {
            for (a, b) in acc.iter_mut().zip(frame.iter()) {
                *a = a.wrapping_add(*b);
            }
        }
        vec![Bytes::from(acc)]
    });
    g.insert(reduce);

    let out = g.current(999).expect("reduce output");
    (g.build(), out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ObsSink::install(&args);
    // An explicit --threads directs the observability flags at the real
    // execution below instead of the first simulated backend.
    let threads_flag = threads_arg_opt(&args);
    // --cost-model: overlay measured charges (from a --calibrate-out
    // profile) onto the simulated runs.
    let profile = cost_model_arg(&args);
    // --batch-bytes / --batch-window-ns / --multicast-k: message-layer
    // tuning, applied identically to every backend and the real run.
    let tuning = comm_tuning_args(&args);
    let nodes = 4;
    println!("amtlc quickstart: map-shuffle-reduce on {nodes} simulated nodes");
    if !tuning.is_default() {
        println!("comm tuning: {}", tuning.describe());
    }
    println!();

    for backend in BackendKind::ALL {
        let (graph, out) = build_graph(nodes);
        let oracle = graph.sequential_oracle()[&out].clone();

        let mut cfg = ClusterConfig {
            nodes,
            workers_per_node: 4,
            backend,
            ..Default::default()
        };
        if let Some(p) = &profile {
            cfg.cost.apply_profile(p);
        }
        tuning.apply(&mut cfg);
        if threads_flag.is_none() {
            ObsSink::arm(&mut cfg);
        }
        let mut cluster = Cluster::new(cfg);
        let report = cluster.execute(graph);
        ObsSink::capture(&cluster, &report);
        let result = cluster.data(out).expect("reduce output data");

        assert_eq!(result, oracle, "distributed result must match the oracle");
        println!("backend {backend}:");
        println!("  tasks executed   : {}", report.tasks_executed);
        println!("  virtual makespan : {}", report.makespan);
        println!(
            "  remote flows     : {} ({} bytes moved)",
            report.e2e_latency_us.count(),
            report.bytes_transferred()
        );
        println!(
            "  mean flow latency: {:.1} us",
            report.e2e_latency_us.mean()
        );
        println!(
            "  result           : {:?}  (matches sequential oracle)\n",
            &result[..]
        );
    }

    // Real execution: same graph, real OS threads, wall-clock time.
    let threads = threads_arg(&args);
    let (graph, out) = build_graph(nodes);
    let oracle = graph.sequential_oracle()[&out].clone();
    let mut cfg = ClusterConfig {
        nodes,
        workers_per_node: 4,
        ..Default::default()
    };
    tuning.apply(&mut cfg);
    // Arm unconditionally: if the virtual sweep already captured, this
    // only turns on what is still pending (e.g. the calibration profile,
    // which only a real run can supply).
    ObsSink::arm(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute_real(graph, threads);
    ObsSink::capture(&cluster, &report);
    let result = cluster.data(out).expect("reduce output data");
    assert_eq!(result, oracle, "real result must match the oracle");
    println!("real execution ({threads} thread(s)):");
    println!("  tasks executed   : {}", report.tasks_executed);
    println!("  wall-clock span  : {}", report.makespan);
    println!(
        "  remote flows     : {} ({} bytes moved)",
        report.e2e_latency_us.count(),
        report.bytes_transferred()
    );
    println!(
        "  result           : {:?}  (matches sequential oracle)",
        &result[..]
    );
}
