//! Why HiCMA exists: dense tile Cholesky (the DPLASMA-style baseline) vs
//! tile low-rank Cholesky on the same covariance problem — flops, data
//! volume, accuracy, and simulated time-to-solution.
//!
//! ```sh
//! cargo run --release --example dense_vs_tlr [mpi|lci|lci-direct]
//! ```

use amtlc::bench::ObsSink;
use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode};
use amtlc::tlr::{DenseCholesky, TlrCholesky, TlrProblem};

fn main() {
    ObsSink::install(&std::env::args().skip(1).collect::<Vec<_>>());
    let backend = std::env::args()
        .nth(1)
        .map(|s| BackendKind::parse(&s).unwrap_or_else(|| panic!("unknown backend {s:?}")))
        .unwrap_or(BackendKind::Lci);
    // Numeric comparison at a laptop-friendly size: both must factorize
    // correctly; TLR trades a bounded error for a lot less work.
    let (n, ts, nodes) = (256, 64, 2);
    println!("numeric check, N = {n}, tile {ts}, {nodes} nodes ({backend} backend)\n");

    let (dense, dgraph) = DenseCholesky::build_numeric(n, ts, nodes);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        workers_per_node: 4,
        backend,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    let dreport = cluster.execute(dgraph);
    assert!(dreport.complete());
    println!(
        "dense : {} tasks, residual {:.2e}",
        dreport.tasks_executed,
        dense.residual(&cluster)
    );

    let (tlr, tgraph) = TlrCholesky::build_numeric(TlrProblem::new(n, ts), nodes);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        workers_per_node: 4,
        backend,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    let treport = cluster.execute(tgraph);
    assert!(treport.complete());
    println!(
        "TLR   : {} tasks, residual {:.2e} (tol 1e-8, mean rank {:.1})\n",
        treport.tasks_executed,
        tlr.residual(&cluster),
        tlr.stats.mean_rank
    );

    // Paper-scale cost comparison (CostOnly): the compression pays off.
    let (n, ts, nodes) = (72_000, 3000, 8);
    println!("cost comparison, N = {n}, tile {ts}, {nodes} nodes (CostOnly)\n");
    let run = |label: &str, dense: bool| {
        let (flops, graph) = if dense {
            let (d, g) = DenseCholesky::build_cost_only(n, ts, nodes);
            (d.total_flops, g)
        } else {
            let (t, g) = TlrCholesky::build_cost_only(TlrProblem::new(n, ts), nodes);
            (t.stats.total_flops, g)
        };
        let mut cfg = ClusterConfig {
            mode: ExecMode::CostOnly,
            ..ClusterConfig::expanse(backend, nodes)
        };
        ObsSink::arm(&mut cfg);
        let mut cluster = Cluster::new(cfg);
        let r = cluster.execute(graph);
        assert!(r.complete());
        ObsSink::capture(&cluster, &r);
        println!(
            "{label:6}: {:>10.3e} flops, {:>8.1} MiB moved, tts {:>8.3}s",
            flops,
            r.bytes_transferred() as f64 / (1024.0 * 1024.0),
            r.makespan.as_secs_f64()
        );
        // Per task class breakdown.
        for (name, count, busy) in &r.class_stats {
            println!("         {name:>6}: {count:>6} tasks, {busy} busy");
        }
        r.makespan.as_secs_f64()
    };
    let d = run("dense", true);
    let t = run("TLR", false);
    println!(
        "\nTLR speedup over dense: {:.1}x — the compression HiCMA banks on.",
        d / t
    );
}
