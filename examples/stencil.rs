//! A 2-D five-point stencil with halo exchange — the classic
//! communication-bound pattern the paper's introduction motivates — run as
//! a task graph over the simulated cluster, strong-scaled over node counts.
//!
//! The domain is split into a grid of tiles (one task per tile per sweep);
//! each sweep's task reads its own tile plus the four neighbour tiles from
//! the previous sweep, so tile boundaries crossing node boundaries become
//! runtime dataflows.
//!
//! ```sh
//! cargo run --release --example stencil
//! ```

use amtlc::bench::stencil::build_stencil;
use amtlc::bench::{comm_tuning_args, cost_model_arg, threads_arg, threads_arg_opt, ObsSink};
use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode, TileDist2d};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ObsSink::install(&args);
    // An explicit --threads directs the observability flags at the real
    // execution below instead of the first simulated backend.
    let threads_flag = threads_arg_opt(&args);
    // --cost-model: overlay measured charges (from a --calibrate-out
    // profile) onto the simulated runs.
    let profile = cost_model_arg(&args);
    // --batch-bytes / --batch-window-ns / --multicast-k: message-layer
    // tuning, applied identically to every backend and the real run.
    let tuning = comm_tuning_args(&args);
    let tiles = 16u64; // 16×16 tile grid
    let tile_elems = 512; // 512² doubles per tile (2 MiB)
    let sweeps = 8;
    println!("2-D 5-point stencil, {tiles}x{tiles} tiles of {tile_elems}^2 f64, {sweeps} sweeps");
    if !tuning.is_default() {
        println!("comm tuning: {}", tuning.describe());
    }
    println!();
    println!(
        "{:>6} {:>13} {:>13} {:>13} {:>10} {:>10} {:>10}",
        "nodes", "LCI", "LCI-direct", "MPI", "LCI us", "direct us", "MPI us"
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        let mut row = Vec::new();
        for backend in [BackendKind::Lci, BackendKind::LciDirect, BackendKind::Mpi] {
            let dist = TileDist2d::square_grid(tiles, tiles, nodes);
            let graph = build_stencil(tiles, tile_elems, sweeps, &dist);
            let mut cfg = ClusterConfig {
                mode: ExecMode::CostOnly,
                ..ClusterConfig::expanse(backend, nodes)
            };
            if let Some(p) = &profile {
                cfg.cost.apply_profile(p);
            }
            tuning.apply(&mut cfg);
            if threads_flag.is_none() {
                ObsSink::arm(&mut cfg);
            }
            let mut cluster = Cluster::new(cfg);
            let report = cluster.execute(graph);
            assert!(report.complete());
            ObsSink::capture(&cluster, &report);
            row.push((
                report.makespan,
                if report.e2e_latency_us.count() > 0 {
                    report.e2e_latency_us.mean()
                } else {
                    0.0
                },
            ));
        }
        println!(
            "{:>6} {:>13} {:>13} {:>13} {:>10.1} {:>10.1} {:>10.1}",
            nodes,
            format!("{}", row[0].0),
            format!("{}", row[1].0),
            format!("{}", row[2].0),
            row[0].1,
            row[1].1,
            row[2].1
        );
    }
    println!("\nHalo dataflows become runtime ACTIVATE/GET DATA/put traffic; more nodes");
    println!("mean more halo crossings, and the lighter LCI path keeps latency lower");
    println!("(the §7 direct put lower still).");

    // Real execution: a smaller sweep set (cost-only tasks are empty, so
    // this exercises protocol + scheduling overhead) on the thread pool.
    let threads = threads_arg(&args);
    let nodes = 4;
    let dist = TileDist2d::square_grid(8, 8, nodes);
    let graph = build_stencil(8, tile_elems, 2, &dist);
    let mut cfg = ClusterConfig {
        mode: ExecMode::CostOnly,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    };
    tuning.apply(&mut cfg);
    // Arm unconditionally: if the virtual sweep already captured, this
    // only turns on what is still pending (e.g. the calibration profile,
    // which only a real run can supply).
    ObsSink::arm(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute_real(graph, threads);
    assert!(report.complete());
    ObsSink::capture(&cluster, &report);
    println!(
        "\nreal execution ({threads} thread(s)): 8x8 tiles, 2 sweeps on {nodes} nodes — \
         {} tasks, {} halo flows, wall-clock {}",
        report.tasks_executed,
        report.e2e_latency_us.count(),
        report.makespan
    );
}
