//! Numeric-mode TLR Cholesky: compress a real st-2d-sqexp covariance
//! matrix, factorize it on a simulated 4-node cluster with real kernels and
//! real data movement, and verify the factorization error — on every
//! communication backend.
//!
//! ```sh
//! cargo run --release --example tlr_cholesky
//! ```
//!
//! A final section factorizes the same matrix **for real** on the
//! work-stealing thread pool (`--threads N`; `0`/default = one per core,
//! `1` = deterministic) and verifies the identical residual.

use amtlc::bench::{threads_arg, ObsSink};
use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode};
use amtlc::tlr::{TlrCholesky, TlrProblem};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ObsSink::install(&args);
    let n = 512;
    let ts = 64;
    let nodes = 4;
    println!("TLR Cholesky (st-2d-sqexp), N = {n}, tile {ts}, {nodes} simulated nodes");
    println!("accuracy 1e-8, maxrank 150, band 1, two-flow algorithm\n");

    for backend in BackendKind::ALL {
        let problem = TlrProblem::new(n, ts);
        let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
        println!("backend {backend}:");
        println!(
            "  tasks: {} (potrf {}, trsm {}, syrk {}, gemm {})",
            chol.stats.tasks(),
            chol.stats.potrf,
            chol.stats.trsm,
            chol.stats.syrk,
            chol.stats.gemm
        );
        println!(
            "  mean off-diagonal rank after compression: {:.2}",
            chol.stats.mean_rank
        );

        let mut cfg = ClusterConfig {
            nodes,
            workers_per_node: 8,
            backend,
            mode: ExecMode::Numeric,
            ..Default::default()
        };
        ObsSink::arm(&mut cfg);
        let mut cluster = Cluster::new(cfg);
        let report = cluster.execute(graph);
        assert!(report.complete());
        ObsSink::capture(&cluster, &report);
        let residual = chol.residual(&cluster);
        println!("  virtual makespan : {}", report.makespan);
        println!(
            "  remote flows     : {} ({} KiB moved)",
            report.e2e_latency_us.count(),
            report.bytes_transferred() / 1024
        );
        println!("  ||A - LL'||/||A|| = {residual:.3e}");
        assert!(residual < 1e-6, "factorization accuracy");
        println!("  factorization verified.\n");
    }

    // Real execution: same factorization, real OS threads.
    let threads = threads_arg(&args);
    let problem = TlrProblem::new(n, ts);
    let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        workers_per_node: 8,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    let report = cluster.execute_real(graph, threads);
    assert!(report.complete());
    let residual = chol.residual(&cluster);
    println!("real execution ({threads} thread(s)):");
    println!("  tasks executed   : {}", report.tasks_executed);
    println!("  wall-clock span  : {}", report.makespan);
    println!(
        "  remote flows     : {} ({} KiB moved)",
        report.e2e_latency_us.count(),
        report.bytes_transferred() / 1024
    );
    println!("  ||A - LL'||/||A|| = {residual:.3e}");
    assert!(residual < 1e-6, "factorization accuracy");
    println!("  factorization verified.");
}
