//! Numeric-mode TLR Cholesky: compress a real st-2d-sqexp covariance
//! matrix, factorize it on a simulated 4-node cluster with real kernels and
//! real data movement, and verify the factorization error — on every
//! communication backend.
//!
//! ```sh
//! cargo run --release --example tlr_cholesky
//! ```
//!
//! A final section factorizes the same matrix **for real** on the
//! work-stealing thread pool (`--threads N`; `0`/default = one per core,
//! `1` = deterministic) and verifies the identical residual.

use amtlc::bench::{comm_tuning_args, cost_model_arg, threads_arg, threads_arg_opt, ObsSink};
use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode};
use amtlc::tlr::{TlrCholesky, TlrProblem};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ObsSink::install(&args);
    // An explicit --threads directs the observability flags at the real
    // execution below instead of the first simulated backend.
    let threads_flag = threads_arg_opt(&args);
    // --cost-model: overlay measured charges (from a --calibrate-out
    // profile) onto the simulated runs.
    let profile = cost_model_arg(&args);
    // --batch-bytes / --batch-window-ns / --multicast-k: message-layer
    // tuning, applied identically to every backend and the real run.
    let tuning = comm_tuning_args(&args);
    let n = 512;
    let ts = 64;
    let nodes = 4;
    println!("TLR Cholesky (st-2d-sqexp), N = {n}, tile {ts}, {nodes} simulated nodes");
    println!("accuracy 1e-8, maxrank 150, band 1, two-flow algorithm");
    if !tuning.is_default() {
        println!("comm tuning: {}", tuning.describe());
    }
    println!();

    for backend in BackendKind::ALL {
        let problem = TlrProblem::new(n, ts);
        let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
        println!("backend {backend}:");
        println!(
            "  tasks: {} (potrf {}, trsm {}, syrk {}, gemm {})",
            chol.stats.tasks(),
            chol.stats.potrf,
            chol.stats.trsm,
            chol.stats.syrk,
            chol.stats.gemm
        );
        println!(
            "  mean off-diagonal rank after compression: {:.2}",
            chol.stats.mean_rank
        );

        let mut cfg = ClusterConfig {
            nodes,
            workers_per_node: 8,
            backend,
            mode: ExecMode::Numeric,
            ..Default::default()
        };
        if let Some(p) = &profile {
            cfg.cost.apply_profile(p);
        }
        tuning.apply(&mut cfg);
        if threads_flag.is_none() {
            ObsSink::arm(&mut cfg);
        }
        let mut cluster = Cluster::new(cfg);
        let report = cluster.execute(graph);
        assert!(report.complete());
        ObsSink::capture(&cluster, &report);
        let residual = chol.residual(&cluster);
        println!("  virtual makespan : {}", report.makespan);
        println!(
            "  remote flows     : {} ({} KiB moved)",
            report.e2e_latency_us.count(),
            report.bytes_transferred() / 1024
        );
        println!("  ||A - LL'||/||A|| = {residual:.3e}");
        assert!(residual < 1e-6, "factorization accuracy");
        println!("  factorization verified.\n");
    }

    // Real execution: same factorization, real OS threads.
    let threads = threads_arg(&args);
    let problem = TlrProblem::new(n, ts);
    let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
    let mut cfg = ClusterConfig {
        nodes,
        workers_per_node: 8,
        mode: ExecMode::Numeric,
        ..Default::default()
    };
    tuning.apply(&mut cfg);
    // Arm unconditionally: if the virtual sweep already captured, this
    // only turns on what is still pending (e.g. the calibration profile,
    // which only a real run can supply).
    ObsSink::arm(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute_real(graph, threads);
    assert!(report.complete());
    ObsSink::capture(&cluster, &report);
    let residual = chol.residual(&cluster);
    println!("real execution ({threads} thread(s)):");
    println!("  tasks executed   : {}", report.tasks_executed);
    println!("  wall-clock span  : {}", report.makespan);
    println!(
        "  remote flows     : {} ({} KiB moved)",
        report.e2e_latency_us.count(),
        report.bytes_transferred() / 1024
    );
    println!("  ||A - LL'||/||A|| = {residual:.3e}");
    assert!(residual < 1e-6, "factorization accuracy");
    println!("  factorization verified.");
}
