//! The paper's §6.2 windowed ping-pong benchmark as a user application:
//! measure PaRSEC-style task-based bandwidth at a few granularities on both
//! backends and compare against the raw fabric (NetPIPE-equivalent).
//!
//! ```sh
//! cargo run --release --example pingpong
//! ```

use amt_bench::pingpong::{run_pingpong, PingPongCfg};
use amt_bench::ObsSink;
use amtlc::comm::BackendKind;
use amtlc::netmodel::{raw_pingpong_gbps, FabricConfig};

fn main() {
    ObsSink::install(&std::env::args().skip(1).collect::<Vec<_>>());
    println!("task-based windowed ping-pong, 2 simulated nodes, 256 MiB per iteration\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "granularity", "LCI", "LCI direct", "MPI", "NetPIPE"
    );
    for shift in [14u32, 16, 18, 20, 23] {
        let n = 1usize << shift;
        let cfg = PingPongCfg::bandwidth(n, 1, true, 5);
        let lci = run_pingpong(BackendKind::Lci, &cfg).gbit_per_s;
        let direct = run_pingpong(BackendKind::LciDirect, &cfg).gbit_per_s;
        let mpi = run_pingpong(BackendKind::Mpi, &cfg).gbit_per_s;
        let raw = raw_pingpong_gbps(&FabricConfig::expanse(2), n, 8);
        println!(
            "{:>9} KiB {:>9.1} {:>9.1} {:>9.1} {:>9.1}   (Gbit/s)",
            n / 1024,
            lci,
            direct,
            mpi,
            raw
        );
    }
    println!("\nLCI sustains near-peak bandwidth at smaller task granularity than MPI —");
    println!("the paper's Fig. 2a effect — and the §7 direct put pushes the knee lower");
    println!("still. Run `cargo bench --bench fig2_bandwidth` for the full ladder and");
    println!("headline numbers.");
}
