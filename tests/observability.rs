//! Observability-layer integration tests: Chrome-trace JSON round-trip
//! through a minimal in-test parser, flow-event pairing, counter-sample
//! monotonicity, cross-backend counter consistency, and byte-identical
//! metrics reports across identical runs.

use std::collections::HashMap;

use amtlc::comm::BackendKind;
use amtlc::core::{
    CalibrationProfile, Cluster, ClusterConfig, CostModel, ExecMode, GraphBuilder, TaskDesc,
    TaskGraph,
};
use amtlc::tlr::{TlrCholesky, TlrProblem};

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to round-trip the trace and metrics
// output without pulling a serde dependency into the workspace.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage at byte {}", p.i);
    v
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.b.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.b[self.i] {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(self.b[self.i..].starts_with(word.as_bytes()));
        self.i += word.len();
        v
    }

    fn number(&mut self) -> Json {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("utf8 number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    let c = self.b[self.i];
                    self.i += 1;
                    match c {
                        b'"' | b'\\' | b'/' => out.push(c as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4]).unwrap();
                            let cp = u32::from_str_radix(hex, 16).expect("hex escape");
                            self.i += 4;
                            out.push(char::from_u32(cp).expect("BMP code point"));
                        }
                        other => panic!("unknown escape \\{}", other as char),
                    }
                }
                _ => {
                    let s = self.i;
                    while !matches!(self.b[self.i], b'"' | b'\\') {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[s..self.i]).expect("utf8 string"));
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut out = Vec::new();
        self.ws();
        if self.b[self.i] == b']' {
            self.i += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            self.ws();
            match self.b[self.i] {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(out);
                }
                c => panic!("expected , or ] got {:?}", c as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut out = Vec::new();
        self.ws();
        if self.b[self.i] == b'}' {
            self.i += 1;
            return Json::Obj(out);
        }
        loop {
            self.ws();
            let k = self.string();
            self.eat(b':');
            out.push((k, self.value()));
            self.ws();
            match self.b[self.i] {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(out);
                }
                c => panic!("expected , or }} got {:?}", c as char),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workload: a small graph with guaranteed remote ACTIVATE → GET DATA → put
// flows on every backend.

fn flow_graph(nodes: usize) -> TaskGraph {
    let mut g = GraphBuilder::new(nodes);
    for k in 0..8u64 {
        g.data(k, 64 * 1024, (k as usize) % nodes, None);
    }
    for step in 0..24u64 {
        let key = step % 8;
        g.insert(
            TaskDesc::new("hop")
                .on_node(((step + 1) % nodes as u64) as usize)
                .flops(2e7)
                .read_key(key)
                .read_key((key + 3) % 8)
                .write(key, 64 * 1024),
        );
    }
    g.build()
}

fn observed_run(backend: BackendKind) -> (Cluster, amtlc::core::RunReport) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        backend,
        mode: ExecMode::CostOnly,
        trace: true,
        metrics: true,
        ..Default::default()
    });
    let report = cluster.execute(flow_graph(2));
    assert!(report.complete());
    (cluster, report)
}

#[test]
fn trace_round_trips_with_paired_flows_and_monotone_counters() {
    for backend in BackendKind::ALL {
        let (cluster, _) = observed_run(backend);
        let json = cluster.trace_json().expect("trace after execute");
        let parsed = parse_json(&json);
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let mut flow_starts: HashMap<u64, u64> = HashMap::new();
        let mut flow_ends: HashMap<u64, u64> = HashMap::new();
        let mut counter_last_ts: HashMap<String, f64> = HashMap::new();
        let mut worker_spans = 0usize;
        let mut comm_spans = 0usize;
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
            match ph {
                "X" => {
                    assert!(ev.get("dur").and_then(Json::as_num).expect("dur") >= 0.0);
                    // Span names resolve through thread metadata; count by
                    // name class instead.
                    match ev.get("name").and_then(Json::as_str).expect("name") {
                        "hop" => worker_spans += 1,
                        "commands" | "testsome" | "completion" | "fifo_round" | "am" | "data"
                        | "delegated" | "backend" | "progress" => comm_spans += 1,
                        _ => {}
                    }
                }
                "s" | "f" => {
                    let id = ev.get("id").and_then(Json::as_num).expect("flow id") as u64;
                    let m = if ph == "s" {
                        &mut flow_starts
                    } else {
                        assert_eq!(ev.get("bp").and_then(Json::as_str), Some("e"));
                        &mut flow_ends
                    };
                    *m.entry(id).or_insert(0) += 1;
                }
                "C" => {
                    let name = ev.get("name").and_then(Json::as_str).expect("name");
                    let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
                    let last = counter_last_ts.entry(name.to_string()).or_insert(-1.0);
                    assert!(ts >= *last, "{backend:?}: counter {name} ts regressed");
                    *last = ts;
                }
                _ => {}
            }
        }
        assert!(worker_spans > 0, "{backend:?}: no worker task spans");
        assert!(comm_spans > 0, "{backend:?}: no comm-thread spans");
        assert!(!flow_starts.is_empty(), "{backend:?}: no flow events");
        assert_eq!(
            flow_starts, flow_ends,
            "{backend:?}: unpaired flow endpoints"
        );
        assert!(
            counter_last_ts.len() >= 2,
            "{backend:?}: expected >= 2 counter tracks, got {counter_last_ts:?}"
        );
    }
}

#[test]
fn metrics_report_surfaces_event_queue_pressure() {
    // `events_peak_pending` must appear in the sim section alongside the
    // clamp counter, and a real run necessarily queued at least one event.
    let (cluster, report) = observed_run(BackendKind::Lci);
    let parsed = parse_json(&cluster.metrics_report(&report).to_json());
    let peak = parsed
        .get("sim")
        .and_then(|s| s.get("events_peak_pending"))
        .and_then(Json::as_num)
        .expect("missing sim.events_peak_pending");
    assert!(peak >= 1.0, "no queue pressure recorded: {peak}");
}

#[test]
fn lifecycle_counts_are_consistent_across_backends() {
    let mut per_backend: Vec<(BackendKind, Json)> = Vec::new();
    for backend in BackendKind::ALL {
        let (cluster, report) = observed_run(backend);
        let parsed = parse_json(&cluster.metrics_report(&report).to_json());
        per_backend.push((backend, parsed));
    }
    let count = |j: &Json, path: [&str; 2]| {
        j.get(path[0])
            .and_then(|v| v.get(path[1]))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("missing {path:?}")) as u64
    };
    let reference = &per_backend[0].1;
    for (backend, j) in &per_backend {
        // What the protocol does is backend-invariant: every submitted AM is
        // eventually received somewhere, every put completes on both sides.
        assert_eq!(
            count(j, ["engine", "am_submitted"]),
            count(reference, ["engine", "am_submitted"]),
            "{backend:?} vs {:?}",
            per_backend[0].0
        );
        for eq in ["puts_started", "puts_remote_done", "put_bytes_in"] {
            assert_eq!(
                count(j, ["engine", eq]),
                count(reference, ["engine", eq]),
                "{backend:?}: {eq} diverged"
            );
        }
        assert_eq!(
            count(j, ["engine", "am_received"]),
            count(j, ["engine", "am_sent"]),
            "{backend:?}: sent AMs must all be received"
        );
        assert_eq!(
            count(j, ["engine", "puts_started"]),
            count(j, ["engine", "puts_remote_done"]),
            "{backend:?}: started puts must all complete remotely"
        );
        // Per-stage histograms exist and agree with the counters.
        let stage_count = |name: &str| {
            j.get("stages")
                .and_then(|s| s.get("histograms"))
                .and_then(|h| h.get(name))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64
        };
        // Aggregation coalesces submissions, so stage samples count wire
        // messages: one per issued AM.
        assert_eq!(
            stage_count("am.queue_ns"),
            count(j, ["engine", "am_sent"]),
            "{backend:?}: every issued AM passes the queue stage"
        );
        assert_eq!(
            stage_count("am.wire_ns"),
            count(j, ["engine", "am_received"]),
            "{backend:?}: every received AM records a wire latency"
        );
        assert_eq!(
            stage_count("put.callback_ns"),
            count(j, ["engine", "puts_remote_done"]),
            "{backend:?}: every remote put completion runs its callback"
        );
        // Overlap fraction is a fraction, and this workload has wire time.
        let frac = j
            .get("overlap")
            .and_then(|o| o.get("fraction"))
            .and_then(Json::as_num)
            .expect("overlap fraction");
        assert!(
            frac > 0.0 && frac <= 1.0,
            "{backend:?}: overlap fraction {frac} outside (0, 1]"
        );
    }
}

#[test]
fn metrics_report_is_byte_identical_across_identical_runs() {
    for backend in BackendKind::ALL {
        let (c1, r1) = observed_run(backend);
        let (c2, r2) = observed_run(backend);
        let j1 = c1.metrics_report(&r1).to_json();
        let j2 = c2.metrics_report(&r2).to_json();
        assert_eq!(j1, j2, "{backend:?}: metrics report not deterministic");
        let t1 = c1.trace_json().expect("trace");
        let t2 = c2.trace_json().expect("trace");
        assert_eq!(t1, t2, "{backend:?}: trace not deterministic");
    }
}

// ---------------------------------------------------------------------------
// Real substrate: the same observability layer over wall-clock execution on
// the work-stealing pool.

fn observed_real_run(threads: usize) -> (Cluster, amtlc::core::RunReport) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        mode: ExecMode::CostOnly,
        trace: true,
        metrics: true,
        ..Default::default()
    });
    let report = cluster.execute_real(flow_graph(2), threads);
    assert!(report.complete());
    (cluster, report)
}

#[test]
fn real_trace_has_worker_spans_steal_flows_and_park_instants() {
    let (cluster, report) = observed_real_run(4);
    let stats = report.pool.clone().expect("real runs carry pool stats");
    assert_eq!(
        stats.trace_dropped, 0,
        "trace ring overflowed on a tiny run"
    );

    let json = cluster.trace_json().expect("trace after execute_real");
    let events_owner = parse_json(&json);
    let events = events_owner
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut tracks: Vec<String> = Vec::new();
    let mut hop_spans = 0u64;
    let mut steal_spans = 0u64;
    let mut stolen_spans = 0u64;
    let mut flow_starts: HashMap<u64, u64> = HashMap::new();
    let mut flow_ends: HashMap<u64, u64> = HashMap::new();
    let mut counter_last_ts: HashMap<String, f64> = HashMap::new();
    let mut parks = 0u64;
    let mut unparks = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        match ph {
            "M" if ev.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let t = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name args");
                tracks.push(t.to_string());
            }
            "X" => match ev.get("name").and_then(Json::as_str).expect("name") {
                "hop" => hop_spans += 1,
                "steal" => steal_spans += 1,
                "stolen" => stolen_spans += 1,
                other => panic!("unexpected span {other}"),
            },
            "s" | "f" => {
                let id = ev.get("id").and_then(Json::as_num).expect("flow id") as u64;
                let m = if ph == "s" {
                    &mut flow_starts
                } else {
                    assert_eq!(ev.get("bp").and_then(Json::as_str), Some("e"));
                    &mut flow_ends
                };
                *m.entry(id).or_insert(0) += 1;
            }
            "C" => {
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
                let last = counter_last_ts.entry(name.to_string()).or_insert(-1.0);
                assert!(ts >= *last, "counter {name} ts regressed");
                *last = ts;
            }
            "i" => match ev.get("name").and_then(Json::as_str).expect("name") {
                "park" => parks += 1,
                "unpark" => unparks += 1,
                other => panic!("unexpected instant {other}"),
            },
            _ => {}
        }
    }

    // Every executed task left a span on a per-node worker track.
    assert_eq!(hop_spans, report.tasks_executed);
    assert!(
        tracks.iter().any(|t| t.starts_with("n0.w"))
            && tracks.iter().any(|t| t.starts_with("n1.w")),
        "task spans must land on n{{node}}.w{{worker}} tracks: {tracks:?}"
    );
    // Steal arrows reconcile exactly with the pool's steal counter: one
    // start (victim) + one end (thief) + both anchor spans per steal.
    let steals = stats.steals();
    assert_eq!(flow_starts.values().sum::<u64>(), steals);
    assert_eq!(flow_ends.values().sum::<u64>(), steals);
    assert_eq!(flow_starts, flow_ends, "unpaired steal-flow endpoints");
    assert_eq!(steal_spans, steals);
    assert_eq!(stolen_spans, steals);
    // Park instants reconcile with the pool's park counter, and an idle
    // 4-worker pool over this mostly-serial graph parks at least once.
    assert_eq!(parks, stats.parks());
    assert!(parks >= 1, "no worker ever parked");
    assert!(unparks <= parks, "more unparks than parks");
    // Depth counters present on pool tracks; monotonicity checked above.
    assert!(
        counter_last_ts.keys().any(|k| k.ends_with(".deque")),
        "expected deque-depth counters, got {counter_last_ts:?}"
    );
}

#[test]
fn real_and_virtual_lifecycle_counts_agree_on_cholesky() {
    let cfg = || ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        mode: ExecMode::CostOnly,
        metrics: true,
        ..Default::default()
    };
    let (_, graph) = TlrCholesky::build_numeric(TlrProblem::new(256, 32), 2);
    let mut virt = Cluster::new(cfg());
    let vr = virt.execute(graph);
    assert!(vr.complete());
    let (_, graph) = TlrCholesky::build_numeric(TlrProblem::new(256, 32), 2);
    let mut real = Cluster::new(cfg());
    let rr = real.execute_real(graph, 2);
    assert!(rr.complete());

    // The protocol is substrate-invariant: same tasks, same data flows,
    // same bytes over the (simulated or shared-memory) wire.
    assert_eq!(vr.tasks_executed, rr.tasks_executed);
    assert_eq!(vr.e2e_latency_us.count(), rr.e2e_latency_us.count());
    assert_eq!(vr.bytes_transferred(), rr.bytes_transferred());

    let vj = parse_json(&virt.metrics_report(&vr).to_json());
    let rj = parse_json(&real.metrics_report(&rr).to_json());
    assert_eq!(vj.get("substrate").and_then(Json::as_str), Some("virtual"));
    assert_eq!(rj.get("substrate").and_then(Json::as_str), Some("real"));
    let stage_count = |j: &Json, name: &str| {
        j.get("stages")
            .and_then(|s| s.get("histograms"))
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64
    };
    // Per-put lifecycle samples count completed data movements — one per
    // flow on either substrate. (AM wire counts are not compared: virtual
    // backends aggregate records into fewer wire messages.)
    for stage in ["put.wire_ns", "put.callback_ns"] {
        assert_eq!(
            stage_count(&vj, stage),
            stage_count(&rj, stage),
            "{stage} count diverged across substrates"
        );
        assert_eq!(
            stage_count(&rj, stage),
            rr.e2e_latency_us.count(),
            "{stage}: one sample per completed flow"
        );
    }
    // Pool stats only exist on the real substrate, and conserve work.
    assert!(vj.get("pool") == Some(&Json::Null));
    let pool = rj.get("pool").expect("real pool stats");
    assert_eq!(
        pool.get("spawns").and_then(Json::as_num),
        pool.get("executions").and_then(Json::as_num),
        "spawned jobs must all execute"
    );
}

#[test]
fn calibration_profile_round_trips_through_cluster_and_cost_model() {
    let (cluster, report) = observed_real_run(2);
    let profile = cluster
        .calibration_profile()
        .expect("metrics-on real run yields a calibration profile");
    assert_eq!(profile.threads, 2);
    assert_eq!(profile.tasks, report.tasks_executed);
    assert!(profile.classes.contains_key("hop"));
    for rec in [
        amtlc::core::REC_ACTIVATE,
        amtlc::core::REC_GET_REQUEST,
        amtlc::core::REC_ARRIVAL,
        amtlc::core::REC_TASK_OVERHEAD,
    ] {
        let s = profile.records.get(rec).unwrap_or_else(|| panic!("{rec}"));
        assert!(s.count > 0, "{rec}: no samples");
    }
    // Byte-stable serialization and a faithful parse round trip.
    let json = profile.to_json();
    let back = CalibrationProfile::from_json(&json).expect("parse own output");
    assert_eq!(back.to_json(), json);
    // Loading the profile moves the simulator's charges to the medians.
    let cost = CostModel::from_profile(&profile);
    assert_eq!(
        cost.task_charge("hop", 1e9, 1.0),
        cost.task_overhead + amtlc::simnet::SimTime::from_ns(profile.classes["hop"].median_ns)
    );
}

#[test]
fn disabled_real_observability_emits_nothing() {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        mode: ExecMode::CostOnly,
        ..Default::default()
    });
    let report = cluster.execute_real(flow_graph(2), 2);
    assert!(report.complete());
    let trace = cluster.trace_json().expect("merged trace exists");
    let parsed = parse_json(&trace);
    assert_eq!(
        parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0),
        "untraced real run must produce an empty event array"
    );
    let metrics = cluster.metrics_report(&report);
    assert!(metrics.stages.is_empty(), "unmetered real run stays empty");
    assert!(
        cluster.calibration_profile().is_none(),
        "no profile without metrics"
    );
    // Pool conservation counters are always-on (they are plain atomics).
    let pool = report.pool.as_ref().expect("pool stats");
    assert_eq!(pool.spawns(), pool.executions());
}

#[test]
fn disabled_observability_emits_nothing() {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        mode: ExecMode::CostOnly,
        ..Default::default()
    });
    let report = cluster.execute(flow_graph(2));
    assert!(report.complete());
    let trace = cluster.trace_json().expect("merged trace exists");
    let events = parse_json(&trace);
    assert_eq!(
        events
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0),
        "disabled tracing must produce an empty event array"
    );
    let metrics = cluster.metrics_report(&report);
    assert!(
        metrics.stages.is_empty(),
        "disabled metrics must stay empty"
    );
    assert_eq!(metrics.wire_ns, 0);
}
