//! Observability-layer integration tests: Chrome-trace JSON round-trip
//! through a minimal in-test parser, flow-event pairing, counter-sample
//! monotonicity, cross-backend counter consistency, and byte-identical
//! metrics reports across identical runs.

use std::collections::HashMap;

use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc, TaskGraph};

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to round-trip the trace and metrics
// output without pulling a serde dependency into the workspace.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage at byte {}", p.i);
    v
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.b.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.b[self.i] {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(self.b[self.i..].starts_with(word.as_bytes()));
        self.i += word.len();
        v
    }

    fn number(&mut self) -> Json {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("utf8 number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    let c = self.b[self.i];
                    self.i += 1;
                    match c {
                        b'"' | b'\\' | b'/' => out.push(c as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4]).unwrap();
                            let cp = u32::from_str_radix(hex, 16).expect("hex escape");
                            self.i += 4;
                            out.push(char::from_u32(cp).expect("BMP code point"));
                        }
                        other => panic!("unknown escape \\{}", other as char),
                    }
                }
                _ => {
                    let s = self.i;
                    while !matches!(self.b[self.i], b'"' | b'\\') {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[s..self.i]).expect("utf8 string"));
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut out = Vec::new();
        self.ws();
        if self.b[self.i] == b']' {
            self.i += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            self.ws();
            match self.b[self.i] {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(out);
                }
                c => panic!("expected , or ] got {:?}", c as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut out = Vec::new();
        self.ws();
        if self.b[self.i] == b'}' {
            self.i += 1;
            return Json::Obj(out);
        }
        loop {
            self.ws();
            let k = self.string();
            self.eat(b':');
            out.push((k, self.value()));
            self.ws();
            match self.b[self.i] {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(out);
                }
                c => panic!("expected , or }} got {:?}", c as char),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workload: a small graph with guaranteed remote ACTIVATE → GET DATA → put
// flows on every backend.

fn flow_graph(nodes: usize) -> TaskGraph {
    let mut g = GraphBuilder::new(nodes);
    for k in 0..8u64 {
        g.data(k, 64 * 1024, (k as usize) % nodes, None);
    }
    for step in 0..24u64 {
        let key = step % 8;
        g.insert(
            TaskDesc::new("hop")
                .on_node(((step + 1) % nodes as u64) as usize)
                .flops(2e7)
                .read_key(key)
                .read_key((key + 3) % 8)
                .write(key, 64 * 1024),
        );
    }
    g.build()
}

fn observed_run(backend: BackendKind) -> (Cluster, amtlc::core::RunReport) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        backend,
        mode: ExecMode::CostOnly,
        trace: true,
        metrics: true,
        ..Default::default()
    });
    let report = cluster.execute(flow_graph(2));
    assert!(report.complete());
    (cluster, report)
}

#[test]
fn trace_round_trips_with_paired_flows_and_monotone_counters() {
    for backend in BackendKind::ALL {
        let (cluster, _) = observed_run(backend);
        let json = cluster.trace_json().expect("trace after execute");
        let parsed = parse_json(&json);
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let mut flow_starts: HashMap<u64, u64> = HashMap::new();
        let mut flow_ends: HashMap<u64, u64> = HashMap::new();
        let mut counter_last_ts: HashMap<String, f64> = HashMap::new();
        let mut worker_spans = 0usize;
        let mut comm_spans = 0usize;
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
            match ph {
                "X" => {
                    assert!(ev.get("dur").and_then(Json::as_num).expect("dur") >= 0.0);
                    // Span names resolve through thread metadata; count by
                    // name class instead.
                    match ev.get("name").and_then(Json::as_str).expect("name") {
                        "hop" => worker_spans += 1,
                        "commands" | "testsome" | "completion" | "fifo_round" | "am" | "data"
                        | "delegated" | "backend" | "progress" => comm_spans += 1,
                        _ => {}
                    }
                }
                "s" | "f" => {
                    let id = ev.get("id").and_then(Json::as_num).expect("flow id") as u64;
                    let m = if ph == "s" {
                        &mut flow_starts
                    } else {
                        assert_eq!(ev.get("bp").and_then(Json::as_str), Some("e"));
                        &mut flow_ends
                    };
                    *m.entry(id).or_insert(0) += 1;
                }
                "C" => {
                    let name = ev.get("name").and_then(Json::as_str).expect("name");
                    let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
                    let last = counter_last_ts.entry(name.to_string()).or_insert(-1.0);
                    assert!(ts >= *last, "{backend:?}: counter {name} ts regressed");
                    *last = ts;
                }
                _ => {}
            }
        }
        assert!(worker_spans > 0, "{backend:?}: no worker task spans");
        assert!(comm_spans > 0, "{backend:?}: no comm-thread spans");
        assert!(!flow_starts.is_empty(), "{backend:?}: no flow events");
        assert_eq!(
            flow_starts, flow_ends,
            "{backend:?}: unpaired flow endpoints"
        );
        assert!(
            counter_last_ts.len() >= 2,
            "{backend:?}: expected >= 2 counter tracks, got {counter_last_ts:?}"
        );
    }
}

#[test]
fn lifecycle_counts_are_consistent_across_backends() {
    let mut per_backend: Vec<(BackendKind, Json)> = Vec::new();
    for backend in BackendKind::ALL {
        let (cluster, report) = observed_run(backend);
        let parsed = parse_json(&cluster.metrics_report(&report).to_json());
        per_backend.push((backend, parsed));
    }
    let count = |j: &Json, path: [&str; 2]| {
        j.get(path[0])
            .and_then(|v| v.get(path[1]))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("missing {path:?}")) as u64
    };
    let reference = &per_backend[0].1;
    for (backend, j) in &per_backend {
        // What the protocol does is backend-invariant: every submitted AM is
        // eventually received somewhere, every put completes on both sides.
        assert_eq!(
            count(j, ["engine", "am_submitted"]),
            count(reference, ["engine", "am_submitted"]),
            "{backend:?} vs {:?}",
            per_backend[0].0
        );
        for eq in ["puts_started", "puts_remote_done", "put_bytes_in"] {
            assert_eq!(
                count(j, ["engine", eq]),
                count(reference, ["engine", eq]),
                "{backend:?}: {eq} diverged"
            );
        }
        assert_eq!(
            count(j, ["engine", "am_received"]),
            count(j, ["engine", "am_sent"]),
            "{backend:?}: sent AMs must all be received"
        );
        assert_eq!(
            count(j, ["engine", "puts_started"]),
            count(j, ["engine", "puts_remote_done"]),
            "{backend:?}: started puts must all complete remotely"
        );
        // Per-stage histograms exist and agree with the counters.
        let stage_count = |name: &str| {
            j.get("stages")
                .and_then(|s| s.get("histograms"))
                .and_then(|h| h.get(name))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64
        };
        // Aggregation coalesces submissions, so stage samples count wire
        // messages: one per issued AM.
        assert_eq!(
            stage_count("am.queue_ns"),
            count(j, ["engine", "am_sent"]),
            "{backend:?}: every issued AM passes the queue stage"
        );
        assert_eq!(
            stage_count("am.wire_ns"),
            count(j, ["engine", "am_received"]),
            "{backend:?}: every received AM records a wire latency"
        );
        assert_eq!(
            stage_count("put.callback_ns"),
            count(j, ["engine", "puts_remote_done"]),
            "{backend:?}: every remote put completion runs its callback"
        );
        // Overlap fraction is a fraction, and this workload has wire time.
        let frac = j
            .get("overlap")
            .and_then(|o| o.get("fraction"))
            .and_then(Json::as_num)
            .expect("overlap fraction");
        assert!(
            frac > 0.0 && frac <= 1.0,
            "{backend:?}: overlap fraction {frac} outside (0, 1]"
        );
    }
}

#[test]
fn metrics_report_is_byte_identical_across_identical_runs() {
    for backend in BackendKind::ALL {
        let (c1, r1) = observed_run(backend);
        let (c2, r2) = observed_run(backend);
        let j1 = c1.metrics_report(&r1).to_json();
        let j2 = c2.metrics_report(&r2).to_json();
        assert_eq!(j1, j2, "{backend:?}: metrics report not deterministic");
        let t1 = c1.trace_json().expect("trace");
        let t2 = c2.trace_json().expect("trace");
        assert_eq!(t1, t2, "{backend:?}: trace not deterministic");
    }
}

#[test]
fn disabled_observability_emits_nothing() {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        mode: ExecMode::CostOnly,
        ..Default::default()
    });
    let report = cluster.execute(flow_graph(2));
    assert!(report.complete());
    let trace = cluster.trace_json().expect("merged trace exists");
    let events = parse_json(&trace);
    assert_eq!(
        events
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0),
        "disabled tracing must produce an empty event array"
    );
    let metrics = cluster.metrics_report(&report);
    assert!(
        metrics.stages.is_empty(),
        "disabled metrics must stay empty"
    );
    assert_eq!(metrics.wire_ns, 0);
}
