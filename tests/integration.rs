//! Cross-crate integration tests: distributed executions against sequential
//! oracles, backend equivalence, determinism, and benchmark sanity.

use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc};
use amtlc::linalg::Matrix;
use amtlc::tlr::{TlrCholesky, TlrProblem};
use bytes::Bytes;

fn backends() -> [BackendKind; 3] {
    BackendKind::ALL
}

/// A randomized DAG executed on 1, 2 and 4 nodes must agree with the
/// sequential oracle byte-for-byte on every backend.
#[test]
fn random_dag_matches_oracle_across_node_counts() {
    use amtlc::simnet::DetRng;

    for backend in backends() {
        for nodes in [1usize, 2, 4] {
            let mut rng = DetRng::seed_from_u64(42);
            let mut g = GraphBuilder::new(nodes);
            let keys = 12u64;
            for k in 0..keys {
                let node = (k as usize) % nodes;
                g.data(k, 16, node, Some(Bytes::from(vec![k as u8 + 1; 16])));
            }
            for step in 0..60u64 {
                let out = rng.gen_range(0..keys);
                let in1 = rng.gen_range(0..keys);
                let in2 = rng.gen_range(0..keys);
                let node = rng.gen_usize(0..nodes);
                let salt = (step % 251) as u8;
                g.insert(
                    TaskDesc::new("mix")
                        .on_node(node)
                        .flops(1e6)
                        .read_key(in1)
                        .read_key(in2)
                        .write(out, 16)
                        .kernel(move |ins| {
                            let mixed: Vec<u8> = ins[0]
                                .iter()
                                .zip(ins[1].iter())
                                .map(|(a, b)| a.wrapping_mul(3).wrapping_add(*b).wrapping_add(salt))
                                .collect();
                            vec![Bytes::from(mixed)]
                        }),
                );
            }
            let finals: Vec<_> = (0..keys).map(|k| g.current(k).expect("version")).collect();
            let graph = g.build();
            let oracle = graph.sequential_oracle();
            let mut cluster = Cluster::new(ClusterConfig {
                nodes,
                workers_per_node: 3,
                backend,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            assert!(report.complete(), "{backend} nodes={nodes}");
            for v in finals {
                assert_eq!(
                    cluster.data(v).as_ref(),
                    oracle.get(&v),
                    "{backend} nodes={nodes}: version {v:?} diverged from oracle"
                );
            }
        }
    }
}

/// Distributed TLR Cholesky achieves the requested accuracy on both
/// backends, several node counts.
#[test]
fn tlr_cholesky_accuracy_across_configs() {
    for backend in backends() {
        for nodes in [1usize, 4] {
            let problem = TlrProblem::new(256, 64);
            let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
            let mut cluster = Cluster::new(ClusterConfig {
                nodes,
                workers_per_node: 4,
                backend,
                mode: ExecMode::Numeric,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            assert!(report.complete(), "{backend} nodes={nodes}");
            let res = chol.residual(&cluster);
            assert!(res < 1e-6, "{backend} nodes={nodes}: residual {res:.2e}");
        }
    }
}

/// The TLR factor must be numerically usable: solve A·x = b through the
/// factor and check the solution.
#[test]
fn tlr_factor_solves_linear_system() {
    let n = 192;
    let ts = 48;
    let problem = TlrProblem::new(n, ts);
    let (chol, graph) = TlrCholesky::build_numeric(problem, 2);
    let a = chol.dense_a.clone().expect("numeric build");
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        workers_per_node: 4,
        backend: BackendKind::Lci,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    cluster.execute(graph);

    // Assemble L and solve L Lᵀ x = b by forward/backward substitution.
    let mut l = Matrix::zeros(n, n);
    for k in 0..(n / ts) as u64 {
        let b = cluster.data(chol.diag_out[k as usize]).expect("diag");
        let lt = Matrix::from_bytes(ts, ts, &b);
        let block = Matrix::from_fn(ts, ts, |i, j| if i >= j { lt.get(i, j) } else { 0.0 });
        l.set_submatrix(k as usize * ts, k as usize * ts, &block);
    }
    for (&(i, j), &(uv, vv)) in &chol.lr_out {
        let u = amtlc::tlr::LrTile::factor_from_bytes(ts, &cluster.data(uv).expect("u"));
        let v = amtlc::tlr::LrTile::factor_from_bytes(ts, &cluster.data(vv).expect("v"));
        let tile = amtlc::tlr::LrTile { u, v };
        l.set_submatrix(i as usize * ts, j as usize * ts, &tile.to_dense());
    }
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    // b = A x.
    let mut b = vec![0.0; n];
    for (j, &xj) in x_true.iter().enumerate() {
        for (i, bi) in b.iter_mut().enumerate() {
            *bi += a.get(i, j) * xj;
        }
    }
    // Forward: L y = b.
    let mut y = b.clone();
    for i in 0..n {
        for k in 0..i {
            y[i] -= l.get(i, k) * y[k];
        }
        y[i] /= l.get(i, i);
    }
    // Backward: Lᵀ x = y.
    let mut x = y.clone();
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            x[i] -= l.get(k, i) * x[k];
        }
        x[i] /= l.get(i, i);
    }
    let err: f64 = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-4, "solution error {err:.2e}");
}

/// The communication backend must not change numerics: a Numeric-mode TLR
/// Cholesky produces byte-identical factor tiles on all three backends, and
/// each backend's virtual makespan is itself reproducible run-to-run.
#[test]
fn backends_agree_byte_for_byte_on_numeric_cholesky() {
    use amtlc::simnet::SimTime;

    let run = |backend: BackendKind| -> (Vec<(String, Vec<u8>)>, SimTime) {
        let problem = TlrProblem::new(256, 64);
        let (chol, graph) = TlrCholesky::build_numeric(problem, 4);
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            workers_per_node: 4,
            backend,
            mode: ExecMode::Numeric,
            ..Default::default()
        });
        let report = cluster.execute(graph);
        assert!(report.complete(), "{backend}");
        let mut out = Vec::new();
        for (k, v) in chol.diag_out.iter().enumerate() {
            out.push((
                format!("diag[{k}]"),
                cluster.data(*v).expect("diag").to_vec(),
            ));
        }
        let mut lr: Vec<_> = chol.lr_out.iter().collect();
        lr.sort_by_key(|(ij, _)| **ij);
        for (&(i, j), &(uv, vv)) in lr {
            out.push((format!("u[{i},{j}]"), cluster.data(uv).expect("u").to_vec()));
            out.push((format!("v[{i},{j}]"), cluster.data(vv).expect("v").to_vec()));
        }
        (out, report.makespan)
    };

    let (reference, _) = run(BackendKind::Mpi);
    assert!(!reference.is_empty());
    for backend in [BackendKind::Lci, BackendKind::LciDirect] {
        let (tiles, makespan) = run(backend);
        assert_eq!(tiles.len(), reference.len(), "{backend}: tile set differs");
        for ((name, bytes), (ref_name, ref_bytes)) in tiles.iter().zip(&reference) {
            assert_eq!(name, ref_name, "{backend}: tile ordering differs");
            assert_eq!(
                bytes, ref_bytes,
                "{backend}: tile {name} diverged from the MPI reference"
            );
        }
        let (_, makespan2) = run(backend);
        assert_eq!(
            makespan, makespan2,
            "{backend}: virtual time not reproducible"
        );
    }
}

/// Same graph, same seed, same backend: byte-identical virtual timings.
#[test]
fn executions_are_deterministic() {
    for backend in backends() {
        let run = || {
            let problem = TlrProblem::new(24_000, 3000);
            let (_, graph) = TlrCholesky::build_cost_only(problem, 4);
            let mut cluster = Cluster::new(ClusterConfig {
                mode: ExecMode::CostOnly,
                ..ClusterConfig::expanse(backend, 4)
            });
            let r = cluster.execute(graph);
            (r.makespan, r.tasks_executed, r.e2e_latency_us.count())
        };
        assert_eq!(run(), run(), "{backend}");
    }
}

/// The headline orderings the paper reports must hold in the simulation.
#[test]
fn paper_headline_orderings_hold() {
    use amt_bench::pingpong::{run_pingpong, PingPongCfg};

    // Fig. 2a: at fine granularity LCI sustains higher bandwidth.
    let fine = PingPongCfg::bandwidth(32 * 1024, 1, true, 4);
    let lci = run_pingpong(BackendKind::Lci, &fine).gbit_per_s;
    let mpi = run_pingpong(BackendKind::Mpi, &fine).gbit_per_s;
    assert!(
        lci > mpi * 1.2,
        "fine-grained bandwidth: LCI {lci:.1} vs MPI {mpi:.1}"
    );

    // At coarse granularity both approach peak.
    let coarse = PingPongCfg::bandwidth(4 * 1024 * 1024, 1, true, 4);
    let lci_c = run_pingpong(BackendKind::Lci, &coarse).gbit_per_s;
    let mpi_c = run_pingpong(BackendKind::Mpi, &coarse).gbit_per_s;
    assert!(
        lci_c > 90.0 && mpi_c > 90.0,
        "coarse: {lci_c:.1} / {mpi_c:.1}"
    );

    // Fig. 4b: LCI's communication latency is lower in TLR Cholesky.
    use amt_bench::tlrrun::{run_tlr, TlrRunCfg};
    let lci_r = run_tlr(&TlrRunCfg {
        backend: BackendKind::Lci,
        nodes: 4,
        n: 36_000,
        tile_size: 1500,
        multithread_am: false,
        tuning: Default::default(),
    });
    let mpi_r = run_tlr(&TlrRunCfg {
        backend: BackendKind::Mpi,
        nodes: 4,
        n: 36_000,
        tile_size: 1500,
        multithread_am: false,
        tuning: Default::default(),
    });
    assert!(
        lci_r.req_us < mpi_r.req_us,
        "control-path latency: LCI {:.1} vs MPI {:.1}",
        lci_r.req_us,
        mpi_r.req_us
    );
}

/// CostOnly and Numeric modes run the same protocol: flow counts match.
#[test]
fn cost_only_and_numeric_have_identical_traffic_shape() {
    for backend in backends() {
        let flows = |mode: ExecMode| {
            let problem = TlrProblem::new(192, 48);
            let (_, graph) = match mode {
                ExecMode::Numeric => TlrCholesky::build_numeric(problem, 2),
                ExecMode::CostOnly => TlrCholesky::build_cost_only(problem, 2),
            };
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 2,
                workers_per_node: 4,
                backend,
                mode,
                ..Default::default()
            });
            let r = cluster.execute(graph);
            assert!(r.complete());
            r.e2e_latency_us.count()
        };
        assert_eq!(
            flows(ExecMode::Numeric),
            flows(ExecMode::CostOnly),
            "{backend}: protocol traffic must not depend on execution mode"
        );
    }
}

/// Execution mode must not change numerics either: the same TLR Cholesky
/// produces bitwise-identical factor tiles (and equal task counts) under
/// full unroll (`execute`), windowed discovery (`execute_windowed`), and
/// **real** work-stealing execution (`execute_real`) at every thread count
/// 1..=4 — kernels are pure functions of their fixed input versions, so not
/// even floating-point summation order can vary.
#[test]
fn execution_modes_agree_byte_for_byte_on_numeric_cholesky() {
    use amtlc::tlr::TlrCholeskySource;

    let nodes = 2;
    let collect = |chol: &TlrCholesky, cluster: &Cluster| -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for (k, v) in chol.diag_out.iter().enumerate() {
            out.push((
                format!("diag[{k}]"),
                cluster.data(*v).expect("diag").to_vec(),
            ));
        }
        let mut lr: Vec<_> = chol.lr_out.iter().collect();
        lr.sort_by_key(|(ij, _)| **ij);
        for (&(i, j), &(uv, vv)) in lr {
            out.push((format!("u[{i},{j}]"), cluster.data(uv).expect("u").to_vec()));
            out.push((format!("v[{i},{j}]"), cluster.data(vv).expect("v").to_vec()));
        }
        out
    };
    let cfg = || ClusterConfig {
        nodes,
        workers_per_node: 4,
        mode: ExecMode::Numeric,
        ..Default::default()
    };

    // Reference: full unroll on the virtual substrate.
    let problem = TlrProblem::new(256, 64);
    let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
    let mut full = Cluster::new(cfg());
    let full_report = full.execute(graph);
    assert!(full_report.complete());
    let reference = collect(&chol, &full);
    assert!(!reference.is_empty());

    // Windowed discovery produces the same version numbering and bytes.
    let mut win = Cluster::new(cfg());
    let win_report = win.execute_windowed(
        Box::new(TlrCholeskySource::numeric(TlrProblem::new(256, 64), nodes)),
        64,
    );
    assert!(win_report.complete());
    assert_eq!(win_report.tasks_total, full_report.tasks_total);
    assert_eq!(collect(&chol, &win), reference, "windowed diverged");

    // Real execution at 1..=4 worker threads.
    for threads in 1..=4usize {
        let (chol_r, graph_r) = TlrCholesky::build_numeric(TlrProblem::new(256, 64), nodes);
        let mut real = Cluster::new(cfg());
        let report = real.execute_real(graph_r, threads);
        assert!(report.complete(), "threads={threads}");
        assert_eq!(
            report.tasks_total, full_report.tasks_total,
            "threads={threads}"
        );
        assert_eq!(
            collect(&chol_r, &real),
            reference,
            "real execution at {threads} thread(s) diverged bitwise"
        );
    }
}

/// Windowed retirement frees whole task-storage chunks as the completion
/// frontier passes — but data for a version can still arrive at a node
/// *after* consumers on other nodes (already satisfied from their own
/// copies) completed and had their chunk freed. The release scan must skip
/// those instead of touching freed storage. Regression: panicked with
/// "access to a retired (freed) graph chunk" at 512 simulated nodes, with
/// both the dense and the flyweight store. Both flavors must also still
/// agree with the full unroll on virtual time.
#[test]
fn windowed_retirement_survives_late_arrivals_at_scale() {
    use amtlc::tlr::TlrCholeskySource;

    let nodes = 512;
    let problem = || TlrProblem::new(24 * 1200, 1200);
    let cfg = |flyweight: bool| ClusterConfig {
        flyweight,
        mode: ExecMode::CostOnly,
        get_window_bytes: 2 << 20,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    };

    let (_, graph) = TlrCholesky::build_cost_only(problem(), nodes);
    let mut full = Cluster::new(cfg(false));
    let full_report = full.execute(graph);
    assert!(full_report.complete());

    for flyweight in [false, true] {
        let mut cluster = Cluster::new(cfg(flyweight));
        let report = cluster.execute_windowed(
            Box::new(TlrCholeskySource::cost_only(problem(), nodes)),
            20_000,
        );
        assert!(report.complete(), "flyweight={flyweight}");
        assert_eq!(report.tasks_total, full_report.tasks_total);
        assert_eq!(
            report.makespan, full_report.makespan,
            "flyweight={flyweight}: windowed diverged from full unroll"
        );
    }
}

/// AM batching and multicast activation trees are pure message-layer
/// optimizations: with them on, a Numeric-mode TLR Cholesky produces
/// factor tiles bitwise identical to the flat defaults — on every virtual
/// backend and on the real substrate.
#[test]
fn batching_and_multicast_preserve_payloads_byte_for_byte() {
    let nodes = 4;
    let collect = |chol: &TlrCholesky, cluster: &Cluster| -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for (k, v) in chol.diag_out.iter().enumerate() {
            out.push((
                format!("diag[{k}]"),
                cluster.data(*v).expect("diag").to_vec(),
            ));
        }
        let mut lr: Vec<_> = chol.lr_out.iter().collect();
        lr.sort_by_key(|(ij, _)| **ij);
        for (&(i, j), &(uv, vv)) in lr {
            out.push((format!("u[{i},{j}]"), cluster.data(uv).expect("u").to_vec()));
            out.push((format!("v[{i},{j}]"), cluster.data(vv).expect("v").to_vec()));
        }
        out
    };
    let build = || TlrCholesky::build_numeric(TlrProblem::new(256, 64), nodes);
    let base = |backend: BackendKind| ClusterConfig {
        nodes,
        workers_per_node: 4,
        backend,
        mode: ExecMode::Numeric,
        ..Default::default()
    };
    let with_tree = |mut cfg: ClusterConfig| {
        cfg.bcast_tree_min = Some(2);
        cfg.multicast_k = Some(3);
        cfg
    };
    let with_batch = |mut cfg: ClusterConfig| {
        cfg.engine = cfg.engine.clone().with_batching(5_000, 4096);
        cfg
    };

    // Flat reference: library defaults (no batching, no trees).
    let (chol, graph) = build();
    let mut flat = Cluster::new(base(BackendKind::Mpi));
    assert!(flat.execute(graph).complete());
    let reference = collect(&chol, &flat);
    assert!(!reference.is_empty());

    for backend in backends() {
        for (label, cfg) in [
            ("batched", with_batch(base(backend))),
            ("batched+tree", with_tree(with_batch(base(backend)))),
        ] {
            let (chol_v, graph_v) = build();
            let mut cluster = Cluster::new(cfg);
            assert!(cluster.execute(graph_v).complete(), "{backend} {label}");
            assert_eq!(
                collect(&chol_v, &cluster),
                reference,
                "{backend} {label}: payloads diverged from flat"
            );
        }
    }

    // Real substrate with multicast trees on (batching is an engine
    // behavior the transport deliberately lacks; the knob must be inert).
    for threads in [1usize, 3] {
        let (chol_r, graph_r) = build();
        let mut real = Cluster::new(with_tree(with_batch(base(BackendKind::Lci))));
        assert!(
            real.execute_real(graph_r, threads).complete(),
            "real threads={threads}"
        );
        assert_eq!(
            collect(&chol_r, &real),
            reference,
            "real batched+tree at {threads} thread(s) diverged from flat"
        );
    }
}
