//! Randomized property tests over the whole stack, driven by the in-tree
//! deterministic generator (the workspace builds offline, so no external
//! `proptest`).

use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, GraphBuilder, TaskDesc};
use amtlc::linalg::{gemm, Matrix, Trans};
use amtlc::simnet::{DetRng, Sim, SimTime};
use amtlc::tlr::LrTile;
use bytes::Bytes;

const CASES: u64 = 24;

/// DES: events execute in non-decreasing time order regardless of the
/// scheduling order.
#[test]
fn des_event_order_is_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xde5_0000 + case);
        let n = rng.gen_usize(1..200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut sim = Sim::new();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for &t in &times {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(t), move |sim| {
                log.borrow_mut().push(sim.now().as_ns());
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), times.len(), "case {case}");
        for w in log.windows(2) {
            assert!(w[0] <= w[1], "case {case}");
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(&*log, &sorted, "case {case}");
    }
}

/// The ladder-queue engine executes arbitrary interleaved
/// `schedule_at`/`schedule_in`/`schedule_now` workloads — including events
/// that schedule further events mid-run, with times spanning dense ties,
/// the near window, and the far horizon — in exactly the order of the
/// seed reference engine (binary heap + boxed closures).
#[test]
fn ladder_engine_matches_reference_order() {
    use amtlc::simnet::reference::RefSim;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, u64)>>>;

    // Identical workload driver for both engine types. Every executed
    // event logs (id, now) and may spawn children whose scheduling mode
    // and delay are drawn from an id-seeded rng, so the two engines see
    // byte-identical closures in byte-identical schedule order; any
    // divergence in execution order derails the id stream and the logs.
    macro_rules! workload {
        ($sim_ty:ty, $case:expr) => {{
            fn event(
                sim: &mut $sim_ty,
                id: u64,
                depth: u32,
                case: u64,
                log: Log,
                next: Rc<RefCell<u64>>,
            ) {
                log.borrow_mut().push((id, sim.now().as_ns()));
                if depth == 0 {
                    return;
                }
                let mut rng = DetRng::seed_from_u64(case.wrapping_mul(0x9e3779b9).wrapping_add(id));
                for _ in 0..rng.gen_usize(0..3) {
                    let kid = {
                        let mut n = next.borrow_mut();
                        *n += 1;
                        *n
                    };
                    let (log, next) = (log.clone(), next.clone());
                    let d = rng.gen_range(0..5_000);
                    match rng.gen_range(0..3) {
                        0 => sim.schedule_now(move |s| event(s, kid, depth - 1, case, log, next)),
                        1 => sim.schedule_in(SimTime::from_ns(d), move |s| {
                            event(s, kid, depth - 1, case, log, next)
                        }),
                        _ => {
                            let at = SimTime::from_ns(sim.now().as_ns() + d * 1000);
                            sim.schedule_at(at, move |s| event(s, kid, depth - 1, case, log, next))
                        }
                    }
                }
            }
            let case: u64 = $case;
            let mut rng = DetRng::seed_from_u64(0x1adde2 ^ case);
            let n = rng.gen_usize(1..100);
            let mut sim = <$sim_ty>::new();
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let next = Rc::new(RefCell::new(n as u64));
            for id in 0..n as u64 {
                let t = match rng.gen_range(0..4) {
                    0 => rng.gen_range(0..200),        // dense ties
                    1 => rng.gen_range(0..100_000),    // within one bucket span
                    2 => rng.gen_range(0..5_000_000),  // across the near ring
                    _ => rng.gen_range(0..50_000_000), // far beyond the window
                };
                let (log, next) = (log.clone(), next.clone());
                sim.schedule_at(SimTime::from_ns(t), move |s| {
                    event(s, id, 3, case, log, next)
                });
            }
            sim.run();
            let trace = log.borrow().clone();
            (trace, sim.events_executed())
        }};
    }

    for case in 0..CASES {
        let (ladder, ladder_n) = workload!(Sim, case);
        let (reference, ref_n) = workload!(RefSim, case);
        assert_eq!(ladder_n, ref_n, "case {case}");
        assert_eq!(ladder.len() as u64, ladder_n, "case {case}");
        assert_eq!(ladder, reference, "case {case}");
    }
}

/// The parallel sweep runner returns bit-identical results to the
/// sequential one, whatever the worker count.
#[test]
fn parallel_sweep_is_bit_identical_across_jobs() {
    use amtlc::bench::pingpong::{run_pingpong, PingPongCfg};
    use amtlc::bench::run_sweep;

    let points: Vec<(usize, BackendKind)> = [16 * 1024, 64 * 1024]
        .into_iter()
        .flat_map(|n| BackendKind::ALL.into_iter().map(move |b| (n, b)))
        .collect();
    let run = |&(n, b): &(usize, BackendKind)| {
        run_pingpong(b, &PingPongCfg::bandwidth(n, 1, true, 2))
            .gbit_per_s
            .to_bits()
    };
    let sequential = run_sweep(&points, 1, run);
    for jobs in [2, 8] {
        assert_eq!(run_sweep(&points, jobs, run), sequential, "jobs {jobs}");
    }
}

/// Fabric: every sent message is delivered exactly once with its
/// declared size, whatever the size/order mix.
#[test]
fn fabric_delivers_every_message() {
    use amtlc::netmodel::{rx_handler, Fabric, FabricConfig, Payload};
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xfab_0000 + case);
        let n = rng.gen_usize(1..40);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_usize(0..2_000_000)).collect();

        let mut sim = Sim::new();
        let fab = Fabric::new(FabricConfig::expanse(2));
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g = got.clone();
        fab.borrow_mut()
            .set_handler(1, rx_handler(move |_s, d| g.borrow_mut().push(d.size)));
        for &s in &sizes {
            Fabric::send(&fab, &mut sim, 0, 1, s, Payload::Empty, None);
        }
        sim.run();
        let mut got = got.borrow().clone();
        let mut want = sizes.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// Runtime: arbitrary read/write chains over a handful of keys match
/// the sequential oracle on every backend.
#[test]
fn runtime_matches_oracle() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x0c1e_0000 + case);
        let n = rng.gen_usize(1..40);
        let ops: Vec<(u64, u64, usize)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..6),
                    rng.gen_range(0..6),
                    rng.gen_usize(0..3),
                )
            })
            .collect();
        let seed = rng.gen_range(0..255) as u8;

        for backend in BackendKind::ALL {
            let nodes = 3;
            let mut g = GraphBuilder::new(nodes);
            for k in 0..6u64 {
                g.data(
                    k,
                    4,
                    (k as usize) % nodes,
                    Some(Bytes::from(vec![seed ^ k as u8; 4])),
                );
            }
            for &(src, dst, node) in &ops {
                g.insert(
                    TaskDesc::new("op")
                        .on_node(node)
                        .flops(1e5)
                        .read_key(src)
                        .write(dst, 4)
                        .kernel(move |ins| {
                            vec![Bytes::from(
                                ins[0]
                                    .iter()
                                    .map(|b| b.wrapping_add(7))
                                    .collect::<Vec<u8>>(),
                            )]
                        }),
                );
            }
            let finals: Vec<_> = (0..6u64).map(|k| g.current(k).expect("version")).collect();
            let graph = g.build();
            let oracle = graph.sequential_oracle();
            let mut cluster = Cluster::new(ClusterConfig {
                nodes,
                workers_per_node: 2,
                backend,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            assert!(report.complete(), "case {case} backend {backend}");
            for v in finals {
                let got = cluster.data(v);
                assert_eq!(
                    got.as_ref(),
                    oracle.get(&v),
                    "case {case} backend {backend}"
                );
            }
        }
    }
}

/// Collective trees span: for arbitrary `(root, n, k)` the k-ary
/// parent/child computations agree, every non-root rank is reached exactly
/// once from the root, and the multicast splitter `tree_children_k` covers
/// every destination exactly once with fan-out at most `k` at every level.
#[test]
fn collective_trees_span_for_arbitrary_shapes() {
    use amtlc::comm::{kary_children, kary_parent};
    use amtlc::core::tree_children_k;
    use std::collections::VecDeque;

    fn walk(subtree: &[u32], k: usize, out: &mut Vec<u32>, case: u64) {
        let splits = tree_children_k(subtree, k);
        assert!(splits.len() <= k, "case {case}: fan-out {}", splits.len());
        for (child, rest) in splits {
            out.push(child);
            walk(&rest, k, out, case);
        }
    }

    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x7ee_0000 + case);
        let n = rng.gen_usize(1..200);
        let root = rng.gen_usize(0..n);
        let k = rng.gen_usize(2..9);

        // BFS from the root over kary_children must visit every rank
        // exactly once, with kary_parent agreeing edge by edge.
        assert_eq!(kary_parent(root, root, n, k), None, "case {case}");
        let mut seen = vec![false; n];
        seen[root] = true;
        let mut queue = VecDeque::from([root]);
        let mut visited = 0usize;
        while let Some(r) = queue.pop_front() {
            visited += 1;
            let children = kary_children(r, root, n, k);
            assert!(children.len() <= k, "case {case}");
            for c in children {
                assert!(!seen[c], "case {case}: rank {c} reached twice");
                assert_eq!(kary_parent(c, root, n, k), Some(r), "case {case}");
                seen[c] = true;
                queue.push_back(c);
            }
        }
        assert_eq!(visited, n, "case {case}: tree does not span");

        // Multicast destination splitter: arbitrary dest list, full
        // single coverage.
        let m = rng.gen_usize(0..80);
        let dests: Vec<u32> = (0..m as u32).map(|i| i * 3 + 1).collect();
        let mut covered = Vec::new();
        walk(&dests, k, &mut covered, case);
        covered.sort_unstable();
        assert_eq!(covered, dests, "case {case}: coverage differs");
    }
}

/// Fat-tree routing is deterministic and loop-free for arbitrary
/// topologies: recomputing a route yields the identical hop list, no hop
/// repeats, every route starts at the source NIC and ends at the
/// destination NIC, and cross-pod routes climb exactly once through the
/// two pods' shared links and the spine.
#[test]
fn fat_tree_routes_are_deterministic_and_loop_free() {
    use amtlc::netmodel::{FabricConfig, FatTreeConfig, Hop, Topology};

    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xf47_0000 + case);
        let nodes = rng.gen_usize(2..130);
        let pods = rng.gen_usize(1..nodes.min(16) + 1);
        let mut cfg = FabricConfig::expanse(nodes);
        cfg.topology = Topology::FatTree(FatTreeConfig {
            pods,
            link_bandwidth_gbps: 50.0 + rng.gen_f64() * 750.0,
            spine_latency: SimTime::from_ns(rng.gen_range(1..5_000)),
        });
        // The spine latency is the islands' conservative lookahead; a
        // random topology must never degenerate to zero.
        assert!(cfg.lookahead() > SimTime::ZERO, "case {case}");
        for _ in 0..64 {
            let src = rng.gen_usize(0..nodes);
            let dst = rng.gen_usize(0..nodes);
            let route = cfg.route(src, dst);
            assert_eq!(route, cfg.route(src, dst), "case {case}: nondeterministic");
            for (i, h) in route.iter().enumerate() {
                assert!(!route[..i].contains(h), "case {case}: loop in {route:?}");
            }
            assert_eq!(route.first(), Some(&Hop::SrcNic(src)), "case {case}");
            assert_eq!(route.last(), Some(&Hop::DstNic(dst)), "case {case}");
            if cfg.pod_of(src) == cfg.pod_of(dst) {
                assert_eq!(route.len(), 2, "case {case}: {route:?}");
            } else {
                assert_eq!(
                    route,
                    vec![
                        Hop::SrcNic(src),
                        Hop::PodUp(cfg.pod_of(src)),
                        Hop::Spine,
                        Hop::PodDown(cfg.pod_of(dst)),
                        Hop::DstNic(dst),
                    ],
                    "case {case}"
                );
            }
        }
    }
}

/// Island-parallel execution reproduces the monolithic engine's report
/// byte for byte on randomized task graphs, island counts, and backends.
#[test]
fn island_execution_matches_monolithic_on_random_graphs() {
    use amtlc::core::{execute_islands, ExecMode};

    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x151a_0000 + case);
        let nodes = rng.gen_usize(2..9);
        let n_ops = rng.gen_usize(5..60);
        let ops: Vec<(u64, u64, usize, i64)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(0..5),
                    rng.gen_range(0..5),
                    rng.gen_usize(0..nodes),
                    rng.gen_range(0..7) as i64 - 3,
                )
            })
            .collect();
        let backend = BackendKind::ALL[rng.gen_usize(0..3)];
        let islands = rng.gen_usize(1..nodes + 1);

        let build = |g: &mut GraphBuilder| {
            for k in 0..5u64 {
                g.data(k, 128 + 32 * k as usize, (k as usize) % nodes, None);
            }
            for &(src, dst, node, pri) in &ops {
                g.insert(
                    TaskDesc::new("op")
                        .on_node(node)
                        .flops(2e5)
                        .priority(pri)
                        .read_key(src)
                        .write(dst, 64),
                );
            }
        };
        let cfg = ClusterConfig {
            nodes,
            workers_per_node: 2,
            backend,
            mode: ExecMode::CostOnly,
            ..Default::default()
        };
        let mono = {
            let mut g = GraphBuilder::new(nodes);
            build(&mut g);
            let mut cluster = Cluster::new(cfg.clone());
            let report = cluster.execute(g.build());
            assert!(report.complete(), "case {case}");
            report.to_json()
        };
        let island = execute_islands(&cfg, islands, build);
        assert!(island.complete(), "case {case} islands={islands}");
        assert_eq!(
            island.to_json(),
            mono,
            "case {case} islands={islands} backend={backend}"
        );
    }
}

/// TLR compression respects the error bound: the truncated tile
/// reconstructs the original within tol × √(matrix area) (absolute
/// threshold on singular values bounds the Frobenius error).
#[test]
fn tlr_compression_error_bounded() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x71c_0000 + case);
        let m = rng.gen_usize(4..20);
        let n = rng.gen_usize(4..20);
        let tol_exp = rng.gen_range(2..10) as u32;

        let tol = 10f64.powi(-(tol_exp as i32));
        let a = Matrix::from_fn(m, n, |i, j| {
            (-((i as f64 / m as f64 - j as f64 / n as f64).powi(2)) * 8.0).exp()
        });
        let t = LrTile::compress(&a, tol, m.min(n));
        let err = t.to_dense().max_diff(&a);
        // Dropped singular values are each < tol; crude but sound bound.
        let bound = tol * (m.min(n) as f64) + 1e-12;
        assert!(err <= bound, "case {case}: err {err} > bound {bound}");
        assert!(t.rank() >= 1 && t.rank() <= m.min(n), "case {case}");
    }
}

/// Rounded low-rank addition equals the dense sum within tolerance.
#[test]
fn tlr_addition_matches_dense() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xadd_0000 + case);
        let k1 = rng.gen_usize(1..4);
        let k2 = rng.gen_usize(1..4);
        let scale = 0.1 + rng.gen_f64() * 9.9;

        let n = 16;
        let mk = |k: usize, off: usize| {
            Matrix::from_fn(n, k, |i, j| {
                let h = ((i * 37 + j * 11 + off) as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (((h >> 16) % 1000) as f64 / 1000.0 - 0.5) * scale
            })
        };
        let (u, v, w, z) = (mk(k1, 0), mk(k1, 5), mk(k2, 11), mk(k2, 17));
        let t = LrTile {
            u: u.clone(),
            v: v.clone(),
        };
        let sum = t.add_truncate(&w, &z, 1e-12, n);
        let mut dense = Matrix::zeros(n, n);
        gemm(1.0, &u, Trans::No, &v, Trans::Yes, 0.0, &mut dense);
        gemm(1.0, &w, Trans::No, &z, Trans::Yes, 1.0, &mut dense);
        let err = sum.to_dense().max_diff(&dense);
        assert!(err < 1e-8 * scale.max(1.0), "case {case}: err {err}");
    }
}
