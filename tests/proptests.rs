//! Randomized property tests over the whole stack, driven by the in-tree
//! deterministic generator (the workspace builds offline, so no external
//! `proptest`).

use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, GraphBuilder, TaskDesc};
use amtlc::linalg::{gemm, Matrix, Trans};
use amtlc::simnet::{DetRng, Sim, SimTime};
use amtlc::tlr::LrTile;
use bytes::Bytes;

const CASES: u64 = 24;

/// DES: events execute in non-decreasing time order regardless of the
/// scheduling order.
#[test]
fn des_event_order_is_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xde5_0000 + case);
        let n = rng.gen_usize(1..200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut sim = Sim::new();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for &t in &times {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(t), move |sim| {
                log.borrow_mut().push(sim.now().as_ns());
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), times.len(), "case {case}");
        for w in log.windows(2) {
            assert!(w[0] <= w[1], "case {case}");
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(&*log, &sorted, "case {case}");
    }
}

/// Fabric: every sent message is delivered exactly once with its
/// declared size, whatever the size/order mix.
#[test]
fn fabric_delivers_every_message() {
    use amtlc::netmodel::{rx_handler, Fabric, FabricConfig, Payload};
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xfab_0000 + case);
        let n = rng.gen_usize(1..40);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_usize(0..2_000_000)).collect();

        let mut sim = Sim::new();
        let fab = Fabric::new(FabricConfig::expanse(2));
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g = got.clone();
        fab.borrow_mut()
            .set_handler(1, rx_handler(move |_s, d| g.borrow_mut().push(d.size)));
        for &s in &sizes {
            Fabric::send(&fab, &mut sim, 0, 1, s, Payload::Empty, None);
        }
        sim.run();
        let mut got = got.borrow().clone();
        let mut want = sizes.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// Runtime: arbitrary read/write chains over a handful of keys match
/// the sequential oracle on every backend.
#[test]
fn runtime_matches_oracle() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x0c1e_0000 + case);
        let n = rng.gen_usize(1..40);
        let ops: Vec<(u64, u64, usize)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..6),
                    rng.gen_range(0..6),
                    rng.gen_usize(0..3),
                )
            })
            .collect();
        let seed = rng.gen_range(0..255) as u8;

        for backend in BackendKind::ALL {
            let nodes = 3;
            let mut g = GraphBuilder::new(nodes);
            for k in 0..6u64 {
                g.data(
                    k,
                    4,
                    (k as usize) % nodes,
                    Some(Bytes::from(vec![seed ^ k as u8; 4])),
                );
            }
            for &(src, dst, node) in &ops {
                g.insert(
                    TaskDesc::new("op")
                        .on_node(node)
                        .flops(1e5)
                        .read_key(src)
                        .write(dst, 4)
                        .kernel(move |ins| {
                            vec![Bytes::from(
                                ins[0]
                                    .iter()
                                    .map(|b| b.wrapping_add(7))
                                    .collect::<Vec<u8>>(),
                            )]
                        }),
                );
            }
            let finals: Vec<_> = (0..6u64).map(|k| g.current(k).expect("version")).collect();
            let graph = g.build();
            let oracle = graph.sequential_oracle();
            let mut cluster = Cluster::new(ClusterConfig {
                nodes,
                workers_per_node: 2,
                backend,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            assert!(report.complete(), "case {case} backend {backend}");
            for v in finals {
                let got = cluster.data(v);
                assert_eq!(
                    got.as_ref(),
                    oracle.get(&v),
                    "case {case} backend {backend}"
                );
            }
        }
    }
}

/// TLR compression respects the error bound: the truncated tile
/// reconstructs the original within tol × √(matrix area) (absolute
/// threshold on singular values bounds the Frobenius error).
#[test]
fn tlr_compression_error_bounded() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x71c_0000 + case);
        let m = rng.gen_usize(4..20);
        let n = rng.gen_usize(4..20);
        let tol_exp = rng.gen_range(2..10) as u32;

        let tol = 10f64.powi(-(tol_exp as i32));
        let a = Matrix::from_fn(m, n, |i, j| {
            (-((i as f64 / m as f64 - j as f64 / n as f64).powi(2)) * 8.0).exp()
        });
        let t = LrTile::compress(&a, tol, m.min(n));
        let err = t.to_dense().max_diff(&a);
        // Dropped singular values are each < tol; crude but sound bound.
        let bound = tol * (m.min(n) as f64) + 1e-12;
        assert!(err <= bound, "case {case}: err {err} > bound {bound}");
        assert!(t.rank() >= 1 && t.rank() <= m.min(n), "case {case}");
    }
}

/// Rounded low-rank addition equals the dense sum within tolerance.
#[test]
fn tlr_addition_matches_dense() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xadd_0000 + case);
        let k1 = rng.gen_usize(1..4);
        let k2 = rng.gen_usize(1..4);
        let scale = 0.1 + rng.gen_f64() * 9.9;

        let n = 16;
        let mk = |k: usize, off: usize| {
            Matrix::from_fn(n, k, |i, j| {
                let h = ((i * 37 + j * 11 + off) as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (((h >> 16) % 1000) as f64 / 1000.0 - 0.5) * scale
            })
        };
        let (u, v, w, z) = (mk(k1, 0), mk(k1, 5), mk(k2, 11), mk(k2, 17));
        let t = LrTile {
            u: u.clone(),
            v: v.clone(),
        };
        let sum = t.add_truncate(&w, &z, 1e-12, n);
        let mut dense = Matrix::zeros(n, n);
        gemm(1.0, &u, Trans::No, &v, Trans::Yes, 0.0, &mut dense);
        gemm(1.0, &w, Trans::No, &z, Trans::Yes, 1.0, &mut dense);
        let err = sum.to_dense().max_diff(&dense);
        assert!(err < 1e-8 * scale.max(1.0), "case {case}: err {err}");
    }
}
