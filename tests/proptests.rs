//! Property-based tests over the whole stack.

use amtlc::comm::BackendKind;
use amtlc::core::{Cluster, ClusterConfig, GraphBuilder, TaskDesc};
use amtlc::linalg::{gemm, Matrix, Trans};
use amtlc::simnet::{Sim, SimTime};
use amtlc::tlr::LrTile;
use bytes::Bytes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DES: events execute in non-decreasing time order regardless of the
    /// scheduling order.
    #[test]
    fn des_event_order_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Sim::new();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for &t in &times {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(t), move |sim| {
                log.borrow_mut().push(sim.now().as_ns());
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&*log, &sorted);
    }

    /// Fabric: every sent message is delivered exactly once with its
    /// declared size, whatever the size/order mix.
    #[test]
    fn fabric_delivers_every_message(sizes in prop::collection::vec(0usize..2_000_000, 1..40)) {
        use amtlc::netmodel::{rx_handler, Fabric, FabricConfig, Payload};
        let mut sim = Sim::new();
        let fab = Fabric::new(FabricConfig::expanse(2));
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g = got.clone();
        fab.borrow_mut().set_handler(1, rx_handler(move |_s, d| g.borrow_mut().push(d.size)));
        for &s in &sizes {
            Fabric::send(&fab, &mut sim, 0, 1, s, Payload::Empty, None);
        }
        sim.run();
        let mut got = got.borrow().clone();
        let mut want = sizes.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Runtime: arbitrary read/write chains over a handful of keys match
    /// the sequential oracle on both backends.
    #[test]
    fn runtime_matches_oracle(
        ops in prop::collection::vec((0u64..6, 0u64..6, 0usize..3), 1..40),
        seed in 0u8..255,
    ) {
        for backend in [BackendKind::Mpi, BackendKind::Lci] {
            let nodes = 3;
            let mut g = GraphBuilder::new(nodes);
            for k in 0..6u64 {
                g.data(k, 4, (k as usize) % nodes, Some(Bytes::from(vec![seed ^ k as u8; 4])));
            }
            for &(src, dst, node) in &ops {
                g.insert(
                    TaskDesc::new("op")
                        .on_node(node)
                        .flops(1e5)
                        .read_key(src)
                        .write(dst, 4)
                        .kernel(move |ins| {
                            vec![Bytes::from(
                                ins[0].iter().map(|b| b.wrapping_add(7)).collect::<Vec<u8>>(),
                            )]
                        }),
                );
            }
            let finals: Vec<_> = (0..6u64).map(|k| g.current(k).expect("version")).collect();
            let graph = g.build();
            let oracle = graph.sequential_oracle();
            let mut cluster = Cluster::new(ClusterConfig {
                nodes,
                workers_per_node: 2,
                backend,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            prop_assert!(report.complete());
            for v in finals {
                let got = cluster.data(v);
                prop_assert_eq!(got.as_ref(), oracle.get(&v));
            }
        }
    }

    /// TLR compression respects the error bound: the truncated tile
    /// reconstructs the original within tol × √(matrix area) (absolute
    /// threshold on singular values bounds the Frobenius error).
    #[test]
    fn tlr_compression_error_bounded(
        m in 4usize..20,
        n in 4usize..20,
        tol_exp in 2u32..10,
    ) {
        let tol = 10f64.powi(-(tol_exp as i32));
        let a = Matrix::from_fn(m, n, |i, j| {
            (-((i as f64 / m as f64 - j as f64 / n as f64).powi(2)) * 8.0).exp()
        });
        let t = LrTile::compress(&a, tol, m.min(n));
        let err = t.to_dense().max_diff(&a);
        // Dropped singular values are each < tol; crude but sound bound.
        let bound = tol * (m.min(n) as f64) + 1e-12;
        prop_assert!(err <= bound, "err {} > bound {}", err, bound);
        prop_assert!(t.rank() >= 1 && t.rank() <= m.min(n));
    }

    /// Rounded low-rank addition equals the dense sum within tolerance.
    #[test]
    fn tlr_addition_matches_dense(
        k1 in 1usize..4,
        k2 in 1usize..4,
        scale in 0.1f64..10.0,
    ) {
        let n = 16;
        let mk = |k: usize, off: usize| {
            Matrix::from_fn(n, k, |i, j| {
                let h = ((i * 37 + j * 11 + off) as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (((h >> 16) % 1000) as f64 / 1000.0 - 0.5) * scale
            })
        };
        let (u, v, w, z) = (mk(k1, 0), mk(k1, 5), mk(k2, 11), mk(k2, 17));
        let t = LrTile { u: u.clone(), v: v.clone() };
        let sum = t.add_truncate(&w, &z, 1e-12, n);
        let mut dense = Matrix::zeros(n, n);
        gemm(1.0, &u, Trans::No, &v, Trans::Yes, 0.0, &mut dense);
        gemm(1.0, &w, Trans::No, &z, Trans::Yes, 1.0, &mut dense);
        let err = sum.to_dense().max_diff(&dense);
        prop_assert!(err < 1e-8 * scale.max(1.0), "err {}", err);
    }
}
