//! # amtlc — Asynchronous Many-Task runtime with a Lightweight Communication engine
//!
//! Facade crate re-exporting the whole workspace. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduction results of
//! Mor, Bosilca, Snir, *"Improving the Scaling of an Asynchronous Many-Task
//! Runtime with a Lightweight Communication Engine"* (ICPP 2023).

pub use amt_bench as bench;
pub use amt_comm as comm;
pub use amt_core as core;
pub use amt_exec as exec;
pub use amt_lci as lci;
pub use amt_linalg as linalg;
pub use amt_minimpi as minimpi;
pub use amt_netmodel as netmodel;
pub use amt_simnet as simnet;
pub use amt_tlr as tlr;
