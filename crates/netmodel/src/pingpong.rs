//! Raw-fabric ping-pong: the NetPIPE-equivalent baseline of Fig. 2a.
//!
//! No communication library, no runtime — just the hardware envelope. A
//! message bounces between node 0 and node 1; bandwidth is reported as
//! NetPIPE does: `size / (rtt / 2)`.

use std::cell::Cell;
use std::rc::Rc;

use amt_simnet::{Sim, SimTime};

use crate::config::FabricConfig;
use crate::fabric::{rx_handler, Fabric, Payload};

/// Run `iters` ping-pong round trips of `size`-byte messages on a fresh
/// 2-node fabric; returns the NetPIPE-style bandwidth in Gbit/s.
pub fn raw_pingpong_gbps(cfg: &FabricConfig, size: usize, iters: usize) -> f64 {
    let total = run_pingpong(cfg, size, iters);
    let half_rtt_ns = total.as_ns() as f64 / (2.0 * iters as f64);
    // bits per ns == Gbit/s.
    size as f64 * 8.0 / half_rtt_ns
}

/// Mean one-way latency (half round trip) for `size`-byte messages.
pub fn raw_roundtrip_latency(cfg: &FabricConfig, size: usize, iters: usize) -> SimTime {
    let total = run_pingpong(cfg, size, iters);
    SimTime::from_ns(total.as_ns() / (2 * iters as u64))
}

fn run_pingpong(cfg: &FabricConfig, size: usize, iters: usize) -> SimTime {
    assert!(cfg.nodes >= 2, "ping-pong needs two nodes");
    assert!(iters > 0);
    let mut sim = Sim::new();
    let fab = Fabric::new(cfg.clone());

    let remaining = Rc::new(Cell::new(2 * iters)); // messages still to deliver
    let finish = Rc::new(Cell::new(SimTime::ZERO));

    for node in 0..2usize {
        let fab2 = fab.clone();
        let remaining = remaining.clone();
        let finish = finish.clone();
        let handler = rx_handler(move |sim, d| {
            let left = remaining.get() - 1;
            remaining.set(left);
            if left == 0 {
                finish.set(sim.now());
            } else {
                // Bounce straight back.
                Fabric::send(&fab2, sim, d.dst, d.src, d.size, Payload::Empty, None);
            }
        });
        fab.borrow_mut().set_handler(node, handler);
    }

    Fabric::send(&fab, &mut sim, 0, 1, size, Payload::Empty, None);
    sim.run();
    assert_eq!(remaining.get(), 0, "ping-pong did not complete");
    finish.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_messages_approach_peak_bandwidth() {
        let cfg = FabricConfig::expanse(2);
        let bw = raw_pingpong_gbps(&cfg, 8 * 1024 * 1024, 4);
        assert!(bw > 90.0 && bw <= 100.0, "8 MiB bandwidth {bw} Gbit/s");
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let cfg = FabricConfig::expanse(2);
        let bw = raw_pingpong_gbps(&cfg, 8 * 1024, 16);
        // 8 KiB one-way ideal ~1.9 us -> ~30-40 Gbit/s, well below peak.
        assert!(bw > 10.0 && bw < 60.0, "8 KiB bandwidth {bw} Gbit/s");
    }

    #[test]
    fn bandwidth_is_monotone_in_size() {
        let cfg = FabricConfig::expanse(2);
        let mut last = 0.0;
        for shift in 10..=23 {
            let bw = raw_pingpong_gbps(&cfg, 1usize << shift, 4);
            assert!(bw > last, "bandwidth dipped at 2^{shift}: {bw} <= {last}");
            last = bw;
        }
    }

    #[test]
    fn zero_byte_latency_is_wire_plus_overheads() {
        let cfg = FabricConfig::expanse(2);
        let lat = raw_roundtrip_latency(&cfg, 0, 8);
        let ideal = cfg.ideal_one_way(0);
        assert_eq!(lat, ideal, "lat {lat} vs ideal {ideal}");
    }
}
