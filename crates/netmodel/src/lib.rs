//! # amt-netmodel
//!
//! A simulated cluster fabric: the hardware envelope over which the
//! communication libraries (`amt-minimpi`, `amt-lci`) run.
//!
//! ## Model
//!
//! Each node has one NIC with independent transmit and receive engines.
//! A message is segmented into chunks (default 64 KiB); the transmit engine
//! serves one chunk at a time at `1/bandwidth`, round-robining across
//! concurrently active transfers so a small control message is delayed by at
//! most one chunk of a bulk transfer (this is what gives the fabric a
//! *message-rate* ceiling distinct from its bandwidth ceiling). Chunks cross
//! the wire with a constant base latency — SDSC Expanse's hybrid fat tree is
//! close to non-blocking at the ≤32-node scale of the paper, so no
//! inter-switch contention is modelled — and are then serialized through the
//! receive engine; the last chunk's receive completion delivers the message
//! to the destination node's registered handler.
//!
//! Per-message and per-chunk fixed overheads model NIC/driver processing and
//! produce realistic small-message behaviour (the NetPIPE-like baseline curve
//! of Fig. 2a falls out of these three parameters).
//!
//! The fabric carries *real payloads* ([`Payload`]): either raw bytes or an
//! `Rc<dyn Any>` protocol structure, so upper layers exchange genuine data
//! and distributed computations are numerically verifiable.

mod config;
mod fabric;
mod pingpong;

pub use config::{FabricConfig, FatTreeConfig, Hop, Topology};
pub use fabric::{
    rx_handler, Delivery, Fabric, FabricHandle, MsgId, NodeId, Payload, RemoteChunk, RxHandler,
};
pub use pingpong::{raw_pingpong_gbps, raw_roundtrip_latency};

#[cfg(test)]
mod tests;
