//! Fabric behaviour tests: chunk interleaving, payload integrity, accounting,
//! determinism.

use std::cell::RefCell;
use std::rc::Rc;

use amt_simnet::{EventFn, Sim, SimTime};
use bytes::Bytes;

use crate::{rx_handler, Fabric, FabricConfig, Payload};

fn two_node_fabric() -> (Sim, crate::FabricHandle) {
    (Sim::new(), Fabric::new(FabricConfig::expanse(2)))
}

#[test]
fn payload_bytes_arrive_intact() {
    let (mut sim, fab) = two_node_fabric();
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let got2 = got.clone();
    fab.borrow_mut().set_handler(
        1,
        rx_handler(move |_sim, d| {
            *got2.borrow_mut() = Some(d.payload.expect_bytes());
        }),
    );
    fab.borrow_mut()
        .set_handler(0, rx_handler(|_, _| panic!("unexpected")));

    let data = Bytes::from((0..=255u8).collect::<Vec<u8>>());
    Fabric::send(
        &fab,
        &mut sim,
        0,
        1,
        data.len(),
        Payload::Bytes(data.clone()),
        None,
    );
    sim.run();
    assert_eq!(got.borrow().as_deref(), Some(&data[..]));
}

#[test]
fn small_message_overtakes_bulk_transfer() {
    // A tiny control message injected right after an 8 MiB transfer must be
    // delayed by at most ~one chunk, not the whole transfer.
    let (mut sim, fab) = two_node_fabric();
    let deliveries = Rc::new(RefCell::new(Vec::new()));
    let d2 = deliveries.clone();
    fab.borrow_mut().set_handler(
        1,
        rx_handler(move |sim, d| {
            d2.borrow_mut().push((d.size, sim.now()));
        }),
    );
    let big = 8 * 1024 * 1024;
    Fabric::send(&fab, &mut sim, 0, 1, big, Payload::Empty, None);
    Fabric::send(&fab, &mut sim, 0, 1, 64, Payload::Empty, None);
    sim.run();

    let log = deliveries.borrow();
    assert_eq!(log.len(), 2);
    // Small message delivered first.
    assert_eq!(log[0].0, 64);
    assert_eq!(log[1].0, big);
    // And within a couple of chunk times of t=0 (one chunk ~5.3 us).
    assert!(
        log[0].1 < SimTime::from_us(20),
        "control message delayed: {}",
        log[0].1
    );
    // Bulk transfer takes ~671 us of serialization.
    assert!(log[1].1 > SimTime::from_us(600));
}

#[test]
fn tx_done_fires_before_delivery() {
    let (mut sim, fab) = two_node_fabric();
    let order = Rc::new(RefCell::new(Vec::new()));
    let (o1, o2) = (order.clone(), order.clone());
    fab.borrow_mut().set_handler(
        1,
        rx_handler(move |_sim, _d| o1.borrow_mut().push("delivered")),
    );
    Fabric::send(
        &fab,
        &mut sim,
        0,
        1,
        1024,
        Payload::Empty,
        Some(EventFn::new(move |_sim| o2.borrow_mut().push("tx_done"))),
    );
    sim.run();
    assert_eq!(*order.borrow(), vec!["tx_done", "delivered"]);
}

#[test]
fn counters_track_traffic() {
    let (mut sim, fab) = two_node_fabric();
    fab.borrow_mut().set_handler(1, rx_handler(|_, _| {}));
    fab.borrow_mut().set_handler(0, rx_handler(|_, _| {}));
    for _ in 0..3 {
        Fabric::send(&fab, &mut sim, 0, 1, 1000, Payload::Empty, None);
    }
    Fabric::send(&fab, &mut sim, 1, 0, 500, Payload::Empty, None);
    sim.run();
    let f = fab.borrow();
    assert_eq!(f.tx_msgs(0), 3);
    assert_eq!(f.tx_bytes(0), 3000);
    assert_eq!(f.rx_msgs(1), 3);
    assert_eq!(f.rx_bytes(1), 3000);
    assert_eq!(f.tx_bytes(1), 500);
    assert_eq!(f.rx_bytes(0), 500);
}

#[test]
fn self_send_loops_back() {
    let (mut sim, fab) = two_node_fabric();
    let hit = Rc::new(RefCell::new(false));
    let h2 = hit.clone();
    fab.borrow_mut().set_handler(
        0,
        rx_handler(move |_sim, d| {
            assert_eq!(d.src, 0);
            assert_eq!(d.dst, 0);
            *h2.borrow_mut() = true;
        }),
    );
    Fabric::send(&fab, &mut sim, 0, 0, 128, Payload::Empty, None);
    sim.run();
    assert!(*hit.borrow());
    // Loopback does not touch the NIC counters.
    assert_eq!(fab.borrow().tx_msgs(0), 0);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let (mut sim, fab) = two_node_fabric();
        let log = Rc::new(RefCell::new(Vec::new()));
        for node in 0..2 {
            let l = log.clone();
            let f2 = fab.clone();
            fab.borrow_mut().set_handler(
                node,
                rx_handler(move |sim, d| {
                    l.borrow_mut().push((d.msg_id, d.size, sim.now().as_ns()));
                    if d.size > 1000 {
                        Fabric::send(&f2, sim, d.dst, d.src, d.size / 2, Payload::Empty, None);
                    }
                }),
            );
        }
        for i in 0..10usize {
            Fabric::send(
                &fab,
                &mut sim,
                i % 2,
                (i + 1) % 2,
                100_000 >> (i % 4),
                Payload::Empty,
                None,
            );
        }
        sim.run();
        let result = log.borrow().clone();
        result
    };
    assert_eq!(run(), run());
}

#[test]
fn concurrent_senders_share_receiver_bandwidth() {
    // Two senders into one receiver: total time ~ twice a single transfer
    // (receive engine is the bottleneck).
    let mut sim = Sim::new();
    let fab = Fabric::new(FabricConfig::expanse(3));
    let done = Rc::new(RefCell::new(Vec::new()));
    let d2 = done.clone();
    fab.borrow_mut().set_handler(
        2,
        rx_handler(move |sim, d| d2.borrow_mut().push((d.src, sim.now()))),
    );
    let size = 4 * 1024 * 1024;
    Fabric::send(&fab, &mut sim, 0, 2, size, Payload::Empty, None);
    Fabric::send(&fab, &mut sim, 1, 2, size, Payload::Empty, None);
    sim.run();
    let log = done.borrow();
    assert_eq!(log.len(), 2);
    let single = FabricConfig::expanse(2).serialization_time(size);
    let last = log[1].1;
    // Both transfers must finish in about 2x the single-transfer service
    // time (within overheads), not 1x.
    assert!(last > single * 2, "rx sharing too fast: {last}");
    assert!(
        last < single * 2 + SimTime::from_us(200),
        "rx sharing too slow: {last}"
    );
}

fn fat_tree_fabric(nodes: usize, pods: usize, link_gbps: f64) -> (Sim, crate::FabricHandle) {
    let cfg = FabricConfig {
        topology: crate::Topology::FatTree(crate::FatTreeConfig {
            pods,
            link_bandwidth_gbps: link_gbps,
            spine_latency: SimTime::from_ns(600),
        }),
        ..FabricConfig::expanse(nodes)
    };
    (Sim::new(), Fabric::new(cfg))
}

#[test]
fn cross_pod_message_pays_spine_and_pod_links() {
    // node 0 → node 1 stays inside pod 0; node 0 → node 2 crosses the
    // spine. The cross-pod copy of an identical message must arrive later
    // by at least the spine latency plus one pod-link serialization.
    let (mut sim, fab) = fat_tree_fabric(4, 2, 400.0);
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    for node in [1usize, 2] {
        let a = arrivals.clone();
        fab.borrow_mut().set_handler(
            node,
            rx_handler(move |sim, d| a.borrow_mut().push((d.dst, sim.now()))),
        );
    }
    let size = 256 * 1024;
    Fabric::send(&fab, &mut sim, 0, 1, size, Payload::Empty, None);
    sim.run();
    Fabric::send(&fab, &mut sim, 0, 2, size, Payload::Empty, None);
    sim.run();
    let log = arrivals.borrow();
    assert_eq!(log.len(), 2);
    let intra = log[0].1;
    let cross = log[1].1 - intra; // second send started at `intra`
    assert!(
        cross >= intra + SimTime::from_ns(600),
        "cross-pod not slower: intra {intra}, cross {cross}"
    );
}

#[test]
fn shared_up_link_serializes_cross_pod_senders() {
    // Two senders in pod 0 push to pod 1 concurrently through a shared
    // up-link narrower than one NIC: the up-link is the bottleneck, so the
    // last delivery lands no earlier than the link-serialization of the
    // combined traffic — and strictly later than with a wide link.
    let run = |gbps: f64| {
        let (mut sim, fab) = fat_tree_fabric(4, 2, gbps);
        let done = Rc::new(RefCell::new(Vec::new()));
        for node in [2usize, 3] {
            let d2 = done.clone();
            fab.borrow_mut().set_handler(
                node,
                rx_handler(move |sim, _d| d2.borrow_mut().push(sim.now())),
            );
        }
        let size = 4 * 1024 * 1024;
        Fabric::send(&fab, &mut sim, 0, 2, size, Payload::Empty, None);
        Fabric::send(&fab, &mut sim, 1, 3, size, Payload::Empty, None);
        sim.run();
        let log = done.borrow().clone();
        assert_eq!(log.len(), 2);
        *log.iter().max().unwrap()
    };
    let narrow = run(50.0);
    let wide = run(800.0);
    // 8 MiB through a 50 Gb/s link is ≥ 1342 us of pure serialization.
    let floor = FabricConfig::default().link_time(8 * 1024 * 1024, 50.0);
    assert!(narrow >= floor, "narrow link too fast: {narrow} < {floor}");
    assert!(narrow > wide, "no up-link contention: {narrow} <= {wide}");
}

#[test]
fn fat_tree_deterministic_replay() {
    // Same replay guarantee as the flat fabric, with cross-pod traffic and
    // shared-link contention in play.
    let run = || {
        let (mut sim, fab) = fat_tree_fabric(6, 3, 100.0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for node in 0..6 {
            let l = log.clone();
            let f2 = fab.clone();
            fab.borrow_mut().set_handler(
                node,
                rx_handler(move |sim, d| {
                    l.borrow_mut().push((d.msg_id, d.size, sim.now().as_ns()));
                    if d.size > 2000 {
                        Fabric::send(&f2, sim, d.dst, d.src, d.size / 3, Payload::Empty, None);
                    }
                }),
            );
        }
        for i in 0..18usize {
            Fabric::send(
                &fab,
                &mut sim,
                i % 6,
                (i * 5 + 2) % 6,
                300_000 >> (i % 5),
                Payload::Empty,
                None,
            );
        }
        sim.run();
        let result = log.borrow().clone();
        result
    };
    assert_eq!(run(), run());
}
