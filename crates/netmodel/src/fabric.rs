//! The fabric proper: per-node NIC transmit/receive engines, chunked
//! round-robin serialization, wire latency, and delivery to node handlers.
//!
//! ## Arrival calendars and deterministic drain order
//!
//! Every path into a shared resource (a destination NIC's receive engine, a
//! fat-tree pod link) goes through an *arrival calendar*: chunks destined
//! for resource `R` at instant `T` are buffered under `(R, T)` and charged
//! by a single drain event in ascending `(src, per-src chunk seq)` order.
//! That key is a pure function of the traffic (not of simulator event
//! sequence numbers), so the charge order for same-instant arrivals is
//! identical whether the cluster runs in one event queue or is partitioned
//! into node islands (`Fabric::new_partition`) — the property the
//! conservative-lookahead parallel engine relies on for byte-identical
//! results at any island count (DESIGN.md §3.10).

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::ops::Range;
use std::rc::Rc;

use amt_simnet::{CoreResource, Counter, EventFn, Shared, Sim, SimTime, Trace};
use bytes::Bytes;

use crate::config::{FabricConfig, Topology};

/// Index of a node in the simulated cluster.
pub type NodeId = usize;

/// Unique id of a message on the fabric (tracing / debugging). Encodes the
/// source: `(src << 40) | per-src counter`, so ids are identical whether
/// the fabric runs whole or partitioned into islands.
pub type MsgId = u64;

/// What a message carries. The fabric is payload-agnostic; communication
/// libraries layered on top define their own protocol structures. Payloads
/// are `Send` so messages can cross island boundaries between threads.
pub enum Payload {
    /// No payload (pure control signal; the wire size is still accounted).
    Empty,
    /// Real data bytes (zero-copy shared).
    Bytes(Bytes),
    /// An arbitrary protocol structure.
    Any(Box<dyn Any + Send>),
}

impl Payload {
    /// Byte length of a `Bytes` payload, 0 otherwise.
    pub fn data_len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            _ => 0,
        }
    }

    /// Extract the bytes, panicking if this is not a `Bytes` payload.
    pub fn expect_bytes(self) -> Bytes {
        match self {
            Payload::Bytes(b) => b,
            _ => panic!("payload is not Bytes"),
        }
    }

    /// Downcast an `Any` payload to a concrete protocol type.
    pub fn downcast<T: 'static>(self) -> Box<T> {
        match self {
            Payload::Any(a) => a.downcast::<T>().expect("payload downcast failed"),
            _ => panic!("payload is not Any"),
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Bytes(b) => write!(f, "Bytes({})", b.len()),
            Payload::Any(_) => write!(f, "Any"),
        }
    }
}

/// A message delivered to a node's receive handler.
#[derive(Debug)]
pub struct Delivery {
    pub src: NodeId,
    pub dst: NodeId,
    /// Wire size in bytes (headers included, as declared by the sender).
    pub size: usize,
    pub msg_id: MsgId,
    pub payload: Payload,
    /// Virtual time at which the sender injected the message.
    pub sent_at: SimTime,
}

/// Per-node receive handler. Invoked once per delivered message, in its own
/// event (never re-entrantly).
pub type RxHandler = Rc<RefCell<dyn FnMut(&mut Sim, Delivery)>>;

/// Local-completion callback for a transfer. An [`EventFn`], so callbacks
/// capturing at most three machine words (the common "one `Rc` plus two
/// indices" shape) cost no allocation.
pub type TxDone = EventFn;

struct Transfer {
    msg_id: MsgId,
    src: NodeId,
    dst: NodeId,
    size: usize,
    sent_at: SimTime,
    remaining: usize,
    first_chunk: bool,
    payload: Option<Payload>,
    on_tx_done: Option<TxDone>,
}

/// Total order on same-instant arrivals at a shared resource:
/// `(src, per-src chunk sequence)` — island-invariant by construction.
type ChunkKey = (NodeId, u64);

/// The tx-done callback slot of a [`ChunkRec`]. `EventFn` is not `Send`,
/// but the callback fires — and the slot empties — the instant the chunk
/// leaves its source NIC, strictly before the chunk can enter an island
/// outbox: a chunk crossing a thread boundary always carries `None`
/// (debug-asserted at both outbox sites).
struct TxDoneSlot(Option<TxDone>);

// SAFETY: the slot is `None` whenever its `ChunkRec` moves between
// threads; see the type docs.
unsafe impl Send for TxDoneSlot {}

/// One chunk in flight past its source NIC. Boxed when created (one
/// allocation per chunk); `Send`, so it can cross island boundaries. The
/// calendar key and tx-done callback ride inside the box so every
/// per-chunk event captures only the fabric handle plus the box and stays
/// inline in its `EventFn` slot.
struct ChunkRec {
    key: ChunkKey,
    msg_id: MsgId,
    src: NodeId,
    dst: NodeId,
    size: usize,
    sent_at: SimTime,
    chunk_bytes: usize,
    first_chunk: bool,
    /// Fires when this (final) chunk leaves the sender's NIC.
    on_tx_done: TxDoneSlot,
    /// Present only on the final chunk; its receive completion delivers.
    finale: Option<Payload>,
}

/// Which calendar a cross-island chunk enters on the destination island.
enum RemoteStage {
    /// Flat (or intra-pod) wire: straight into the destination NIC's
    /// receive calendar.
    Rx,
    /// Fat-tree spine crossing: into the destination pod's down-link
    /// calendar.
    Down(usize),
}

/// A chunk crossing an island boundary: drained from the source island's
/// outbox, injected into the destination island at `t` (which the
/// conservative lookahead guarantees lies at or beyond the destination's
/// synchronization horizon).
pub struct RemoteChunk {
    stage: RemoteStage,
    t: SimTime,
    rec: Box<ChunkRec>,
}

impl RemoteChunk {
    /// The destination node (routes the chunk to its owning island).
    pub fn dst(&self) -> NodeId {
        self.rec.dst
    }

    /// The virtual instant at which the chunk enters the destination
    /// island (arrival-calendar timestamp).
    pub fn arrives_at(&self) -> SimTime {
        self.t
    }
}

/// An arrival calendar: chunks buffered per `(resource, instant)`, drained
/// by one event per occupied instant in ascending [`ChunkKey`] order.
///
/// Lookups are only ever by exact key (never iterated), so a `HashMap` —
/// which retains its capacity across remove/insert cycles — keeps
/// steady-state traffic allocation-free; drained slot vectors are recycled
/// through a free list for the same reason. (A `BTreeMap` here cost one
/// root-node allocation per occupied instant: the map oscillates between
/// empty and one entry on the common NIC receive path.)
// A chunk stays in its box from source NIC to delivery (the per-chunk
// events hold the box); the calendar only parks boxes between arrival and
// drain, so unboxing into the vectors would force a re-box per hop.
#[allow(clippy::vec_box)]
struct Calendar<K: Eq + Hash + Copy> {
    map: HashMap<(K, SimTime), Vec<Box<ChunkRec>>>,
    free: Vec<Vec<Box<ChunkRec>>>,
}

#[allow(clippy::vec_box)]
impl<K: Eq + Hash + Copy> Calendar<K> {
    fn new() -> Self {
        Calendar {
            map: HashMap::new(),
            free: Vec::new(),
        }
    }

    /// Buffer a chunk; returns true when this `(resource, instant)` slot
    /// was vacant and the caller must schedule its drain.
    fn push(&mut self, k: K, t: SimTime, rec: Box<ChunkRec>) -> bool {
        let slot = self
            .map
            .entry((k, t))
            .or_insert_with(|| self.free.pop().unwrap_or_default());
        slot.push(rec);
        slot.len() == 1
    }

    /// Remove and key-sort the batch for `(resource, instant)`. Return the
    /// emptied vector via [`Calendar::recycle`].
    fn drain(&mut self, k: K, t: SimTime) -> Vec<Box<ChunkRec>> {
        let mut batch = self.map.remove(&(k, t)).unwrap_or_default();
        batch.sort_by_key(|rec| rec.key);
        batch
    }

    /// Hand a drained batch's storage back for reuse.
    fn recycle(&mut self, mut batch: Vec<Box<ChunkRec>>) {
        batch.clear();
        self.free.push(batch);
    }
}

struct NodeNic {
    tx_busy: bool,
    /// Single-chunk (control) transfers: their own virtual lane.
    tx_ctl: VecDeque<Transfer>,
    /// Multi-chunk (bulk) transfers, FIFO.
    tx_bulk: VecDeque<Transfer>,
    rx: CoreResource,
    tx_bytes: Counter,
    rx_bytes: Counter,
    tx_msgs: Counter,
    rx_msgs: Counter,
    tx_busy_time: SimTime,
    /// Per-source message counter (deterministic [`MsgId`] low bits).
    next_msg: u64,
    /// Per-source chunk counter (the [`ChunkKey`] tiebreak).
    next_chunk: u64,
}

impl NodeNic {
    fn new(node: NodeId) -> Self {
        NodeNic {
            tx_busy: false,
            tx_ctl: VecDeque::new(),
            tx_bulk: VecDeque::new(),
            rx: CoreResource::new(format!("nic{node}.rx")),
            tx_bytes: Counter::default(),
            rx_bytes: Counter::default(),
            tx_msgs: Counter::default(),
            rx_msgs: Counter::default(),
            tx_busy_time: SimTime::ZERO,
            next_msg: 0,
            next_chunk: 0,
        }
    }
}

/// Shared up/down links of one fat-tree pod.
struct PodLinks {
    up: CoreResource,
    down: CoreResource,
}

/// The simulated cluster fabric. See the crate docs for the model.
pub struct Fabric {
    cfg: FabricConfig,
    nics: Vec<NodeNic>,
    handlers: Vec<Option<RxHandler>>,
    /// Optional trace sink for per-node NIC injection-occupancy counters.
    trace: Option<Shared<Trace>>,
    /// Fat-tree pod links (empty under `Topology::Flat`).
    pods: Vec<PodLinks>,
    /// Nodes simulated by this fabric instance (the whole cluster unless
    /// partitioned into islands).
    local: Range<NodeId>,
    /// Chunks bound for other islands, drained by the coordinator at
    /// synchronization barriers.
    outbox: Vec<RemoteChunk>,
    /// Destination-NIC receive calendar.
    rx_cal: Calendar<NodeId>,
    /// Pod up-link calendars (same-instant tx-done ties).
    up_cal: Calendar<usize>,
    /// Pod down-link ingress calendars (post-spine arrivals).
    down_cal: Calendar<usize>,
}

/// Shared handle to a [`Fabric`]; all operations are associated functions
/// over the handle so user handlers can re-enter the fabric.
pub type FabricHandle = Rc<RefCell<Fabric>>;

impl Fabric {
    /// Build a fabric simulating the whole cluster.
    pub fn new(cfg: FabricConfig) -> FabricHandle {
        let nodes = cfg.nodes;
        Fabric::new_partition(cfg, 0..nodes)
    }

    /// Build a fabric simulating only the nodes in `local` (one island of
    /// a partitioned cluster). Sends must originate from local nodes;
    /// chunks addressed to non-local nodes accumulate in the outbox
    /// ([`Fabric::take_outbox`]) for the island coordinator to move.
    pub fn new_partition(cfg: FabricConfig, local: Range<NodeId>) -> FabricHandle {
        assert!(local.end <= cfg.nodes, "partition exceeds cluster");
        let nics = (0..cfg.nodes).map(NodeNic::new).collect();
        let handlers = (0..cfg.nodes).map(|_| None).collect();
        let pods = match &cfg.topology {
            Topology::Flat => Vec::new(),
            Topology::FatTree(ft) => {
                assert!(ft.pods >= 1, "fat tree needs at least one pod");
                assert!(
                    !ft.spine_latency.is_zero(),
                    "fat-tree spine latency must be nonzero"
                );
                (0..ft.pods)
                    .map(|p| PodLinks {
                        up: CoreResource::new(format!("pod{p}.up")),
                        down: CoreResource::new(format!("pod{p}.down")),
                    })
                    .collect()
            }
        };
        Rc::new(RefCell::new(Fabric {
            cfg,
            nics,
            handlers,
            trace: None,
            pods,
            local,
            outbox: Vec::new(),
            rx_cal: Calendar::new(),
            up_cal: Calendar::new(),
            down_cal: Calendar::new(),
        }))
    }

    /// Attach a trace sink; the fabric then samples an `n{ix}.nic` counter
    /// track (queued + in-flight transmit transfers) on every change.
    pub fn set_trace(&mut self, trace: Shared<Trace>) {
        self.trace = Some(trace);
    }

    /// Sample the transmit-occupancy counter of `node` at `now`.
    fn sample_nic(&self, node: NodeId, now: SimTime) {
        if let Some(tr) = &self.trace {
            let nic = &self.nics[node];
            let v = nic.tx_ctl.len() + nic.tx_bulk.len() + usize::from(nic.tx_busy);
            tr.borrow_mut()
                .counter(format!("n{node}.nic"), now, v as f64);
        }
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// The node range this fabric instance simulates.
    pub fn local_range(&self) -> Range<NodeId> {
        self.local.clone()
    }

    #[inline]
    fn is_local(&self, node: NodeId) -> bool {
        self.local.contains(&node)
    }

    /// Register the receive handler for `node` (replaces any previous one).
    pub fn set_handler(&mut self, node: NodeId, handler: RxHandler) {
        self.handlers[node] = Some(handler);
    }

    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.nics[node].tx_bytes.get()
    }

    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.nics[node].rx_bytes.get()
    }

    pub fn tx_msgs(&self, node: NodeId) -> u64 {
        self.nics[node].tx_msgs.get()
    }

    pub fn rx_msgs(&self, node: NodeId) -> u64 {
        self.nics[node].rx_msgs.get()
    }

    /// Total time node `node`'s transmit engine has been occupied.
    pub fn tx_busy_time(&self, node: NodeId) -> SimTime {
        self.nics[node].tx_busy_time
    }

    /// Total occupancy of pod `p`'s up-link (fat tree only).
    pub fn pod_up_busy(&self, p: usize) -> SimTime {
        self.pods[p].up.busy_time()
    }

    /// Total occupancy of pod `p`'s down-link (fat tree only).
    pub fn pod_down_busy(&self, p: usize) -> SimTime {
        self.pods[p].down.busy_time()
    }

    /// Drain the chunks bound for other islands.
    pub fn take_outbox(&mut self) -> Vec<RemoteChunk> {
        std::mem::take(&mut self.outbox)
    }

    /// Inject chunks handed over from other islands. Their timestamps must
    /// lie at or beyond the current horizon (guaranteed by the conservative
    /// lookahead), so every drain here is a future event.
    pub fn inject_remote(fab: &FabricHandle, sim: &mut Sim, chunks: Vec<RemoteChunk>) {
        for c in chunks {
            debug_assert!(c.t >= sim.now(), "remote chunk in the past");
            match c.stage {
                RemoteStage::Rx => Fabric::rx_push(fab, sim, c.t, c.rec),
                RemoteStage::Down(pod) => Fabric::down_push(fab, sim, pod, c.t, c.rec),
            }
        }
    }

    /// Inject a message. `size` is the wire size in bytes (the caller
    /// accounts for headers); `payload` rides along and is handed to the
    /// destination handler; `on_tx_done` fires when the last chunk leaves
    /// the sender's NIC (local completion).
    ///
    /// Self-sends (`src == dst`) bypass the NIC entirely and deliver after
    /// a small fixed loopback delay.
    pub fn send(
        fab: &FabricHandle,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        size: usize,
        payload: Payload,
        on_tx_done: Option<TxDone>,
    ) -> MsgId {
        let msg_id;
        {
            let mut f = fab.borrow_mut();
            assert!(src < f.cfg.nodes && dst < f.cfg.nodes, "bad node id");
            debug_assert!(f.is_local(src), "send from non-local node {src}");
            msg_id = ((src as u64) << 40) | f.nics[src].next_msg;
            f.nics[src].next_msg += 1;

            if src == dst {
                drop(f);
                let fab2 = fab.clone();
                let sent_at = sim.now();
                sim.schedule_in(SimTime::from_ns(100), move |sim| {
                    if let Some(cb) = on_tx_done {
                        cb.invoke(sim);
                    }
                    Fabric::deliver(
                        &fab2,
                        sim,
                        Delivery {
                            src,
                            dst,
                            size,
                            msg_id,
                            payload,
                            sent_at,
                        },
                    );
                });
                return msg_id;
            }

            f.nics[src].tx_msgs.inc();
            f.nics[src].tx_bytes.add(size as u64);
            let t = Transfer {
                msg_id,
                src,
                dst,
                size,
                sent_at: sim.now(),
                remaining: size,
                first_chunk: true,
                payload: Some(payload),
                on_tx_done,
            };
            if size <= f.cfg.chunk_bytes {
                f.nics[src].tx_ctl.push_back(t);
            } else {
                f.nics[src].tx_bulk.push_back(t);
            }
            f.sample_nic(src, sim.now());
        }
        Fabric::tx_pump(fab, sim, src);
        msg_id
    }

    /// If the transmit engine of `node` is idle and has queued transfers,
    /// serve the next chunk.
    ///
    /// Scheduling policy: bulk (multi-chunk) transfers are served FIFO —
    /// message by message, as an RDMA NIC drains a queue pair — while
    /// single-chunk messages (control traffic) jump ahead between chunks,
    /// modelling a separate virtual lane. This keeps control latency
    /// bounded without splitting bandwidth across every outstanding bulk
    /// transfer (completion times matter: a fair round-robin would make
    /// every transfer of a burst complete at the very end).
    ///
    /// The two lanes are separate queues, so picking the next chunk is
    /// O(1): control front if any, else bulk front — exactly the transfer
    /// the seed's linear `position(size <= chunk)` scan selected, since
    /// relative order within each class is preserved by both schemes.
    fn tx_pump(fab: &FabricHandle, sim: &mut Sim, node: NodeId) {
        let (dur, mut rec);
        {
            let mut f = fab.borrow_mut();
            if f.nics[node].tx_busy {
                return;
            }
            let mut t = match f.nics[node].tx_ctl.pop_front() {
                Some(t) => t,
                None => match f.nics[node].tx_bulk.pop_front() {
                    Some(t) => t,
                    None => return,
                },
            };
            let chunk = t.remaining.min(f.cfg.chunk_bytes);
            let first = t.first_chunk;
            t.first_chunk = false;
            t.remaining -= chunk;
            let finished = t.remaining == 0;

            dur = f.cfg.serialization_time(chunk)
                + f.cfg.per_chunk_overhead
                + if first {
                    f.cfg.per_message_overhead
                } else {
                    SimTime::ZERO
                };

            let key = (t.src, f.nics[node].next_chunk);
            f.nics[node].next_chunk += 1;
            rec = Box::new(ChunkRec {
                key,
                msg_id: t.msg_id,
                src: t.src,
                dst: t.dst,
                size: t.size,
                sent_at: t.sent_at,
                chunk_bytes: chunk,
                first_chunk: first,
                on_tx_done: TxDoneSlot(if finished { t.on_tx_done.take() } else { None }),
                finale: if finished {
                    Some(t.payload.take().expect("payload consumed twice"))
                } else {
                    None
                },
            });

            if !finished {
                // Unfinished bulk transfer stays at the head (FIFO).
                f.nics[node].tx_bulk.push_front(t);
            }
            f.nics[node].tx_busy = true;
            f.nics[node].tx_busy_time += dur;
        }

        // Captures: one Rc + one Box — inline in the `EventFn` slot.
        let fab2 = fab.clone();
        sim.schedule_in(dur, move |sim| {
            // Chunk left the sender NIC (transfers queue at their source,
            // so the transmitting node is the chunk's src).
            let node = rec.src;
            {
                let mut f = fab2.borrow_mut();
                f.nics[node].tx_busy = false;
                f.sample_nic(node, sim.now());
            }
            if let Some(cb) = rec.on_tx_done.0.take() {
                cb.invoke(sim);
            }
            Fabric::route_chunk(&fab2, sim, rec);
            Fabric::tx_pump(&fab2, sim, node);
        });
    }

    /// A chunk has left its source NIC: route it to the next hop.
    fn route_chunk(fab: &FabricHandle, sim: &mut Sim, rec: Box<ChunkRec>) {
        let (wire_latency, src_pod, dst_pod) = {
            let f = fab.borrow();
            (
                f.cfg.wire_latency,
                f.cfg.pod_of(rec.src),
                f.cfg.pod_of(rec.dst),
            )
        };
        if src_pod == dst_pod {
            let t = sim.now() + wire_latency;
            Fabric::rx_push(fab, sim, t, rec);
        } else {
            // Cross-pod: same-instant tx-done ties from different NICs
            // contend for the shared up-link; the calendar orders them.
            Fabric::up_push(fab, sim, src_pod, sim.now(), rec);
        }
    }

    /// Buffer a chunk in the destination NIC's receive calendar (or the
    /// outbox, when the destination belongs to another island), scheduling
    /// the drain on first occupancy of the `(dst, t)` slot.
    fn rx_push(fab: &FabricHandle, sim: &mut Sim, t: SimTime, rec: Box<ChunkRec>) {
        let dst = rec.dst;
        let vacant = {
            let mut f = fab.borrow_mut();
            if !f.is_local(dst) {
                debug_assert!(rec.on_tx_done.0.is_none(), "tx-done crossing islands");
                f.outbox.push(RemoteChunk {
                    stage: RemoteStage::Rx,
                    t,
                    rec,
                });
                return;
            }
            f.rx_cal.push(dst, t, rec)
        };
        if vacant {
            let fab2 = fab.clone();
            let drain = move |sim: &mut Sim| Fabric::drain_rx(&fab2, sim, dst, t);
            if t <= sim.now() {
                sim.schedule_now(drain);
            } else {
                sim.schedule_at(t, drain);
            }
        }
    }

    /// Charge the key-sorted batch for `(dst, t)` through the receive
    /// engine; each final chunk's completion delivers its message.
    fn drain_rx(fab: &FabricHandle, sim: &mut Sim, dst: NodeId, t: SimTime) {
        let mut batch = fab.borrow_mut().rx_cal.drain(dst, t);
        for mut rec in batch.drain(..) {
            let fab2 = fab.clone();
            let mut f = fab.borrow_mut();
            let dur = f.cfg.serialization_time(rec.chunk_bytes)
                + f.cfg.per_chunk_overhead
                + if rec.first_chunk {
                    f.cfg.per_message_overhead
                } else {
                    SimTime::ZERO
                };
            f.nics[dst].rx.charge(sim, dur, move |sim| {
                let dst = rec.dst;
                if let Some(payload) = rec.finale.take() {
                    {
                        let mut f = fab2.borrow_mut();
                        f.nics[dst].rx_msgs.inc();
                        f.nics[dst].rx_bytes.add(rec.size as u64);
                    }
                    Fabric::deliver(
                        &fab2,
                        sim,
                        Delivery {
                            src: rec.src,
                            dst,
                            size: rec.size,
                            msg_id: rec.msg_id,
                            payload,
                            sent_at: rec.sent_at,
                        },
                    );
                }
            });
        }
        fab.borrow_mut().rx_cal.recycle(batch);
    }

    /// Buffer a chunk in its source pod's up-link calendar (same-instant
    /// slot: tx-done ties from different NICs of one pod).
    fn up_push(fab: &FabricHandle, sim: &mut Sim, pod: usize, t: SimTime, rec: Box<ChunkRec>) {
        let vacant = fab.borrow_mut().up_cal.push(pod, t, rec);
        if vacant {
            let fab2 = fab.clone();
            sim.schedule_now(move |sim| Fabric::drain_up(&fab2, sim, pod, t));
        }
    }

    /// Serialize the key-sorted batch through the pod up-link; each chunk's
    /// completion launches it across the spine toward the destination
    /// pod's down-link (possibly on another island).
    fn drain_up(fab: &FabricHandle, sim: &mut Sim, pod: usize, t: SimTime) {
        let mut batch = fab.borrow_mut().up_cal.drain(pod, t);
        for rec in batch.drain(..) {
            let fab2 = fab.clone();
            let mut f = fab.borrow_mut();
            let ft = match &f.cfg.topology {
                Topology::FatTree(ft) => ft,
                Topology::Flat => unreachable!("up-link on flat topology"),
            };
            let dur = f.cfg.link_time(rec.chunk_bytes, ft.link_bandwidth_gbps);
            f.pods[pod].up.charge(sim, dur, move |sim| {
                let (spine, dst_pod, dst_local) = {
                    let f = fab2.borrow();
                    let ft = match &f.cfg.topology {
                        Topology::FatTree(ft) => ft,
                        Topology::Flat => unreachable!("up-link on flat topology"),
                    };
                    (ft.spine_latency, f.cfg.pod_of(rec.dst), f.is_local(rec.dst))
                };
                let ingress = sim.now() + spine;
                if dst_local {
                    Fabric::down_push(&fab2, sim, dst_pod, ingress, rec);
                } else {
                    debug_assert!(rec.on_tx_done.0.is_none(), "tx-done crossing islands");
                    fab2.borrow_mut().outbox.push(RemoteChunk {
                        stage: RemoteStage::Down(dst_pod),
                        t: ingress,
                        rec,
                    });
                }
            });
        }
        fab.borrow_mut().up_cal.recycle(batch);
    }

    /// Buffer a post-spine chunk in the destination pod's down-link
    /// calendar (a strictly-future slot: the spine latency is nonzero).
    fn down_push(fab: &FabricHandle, sim: &mut Sim, pod: usize, t: SimTime, rec: Box<ChunkRec>) {
        let vacant = fab.borrow_mut().down_cal.push(pod, t, rec);
        if vacant {
            let fab2 = fab.clone();
            let drain = move |sim: &mut Sim| Fabric::drain_down(&fab2, sim, pod, t);
            if t <= sim.now() {
                sim.schedule_now(drain);
            } else {
                sim.schedule_at(t, drain);
            }
        }
    }

    /// Serialize the key-sorted batch through the pod down-link; each
    /// chunk's completion takes the last intra-pod wire hop into the
    /// destination NIC's receive calendar.
    fn drain_down(fab: &FabricHandle, sim: &mut Sim, pod: usize, t: SimTime) {
        let mut batch = fab.borrow_mut().down_cal.drain(pod, t);
        for rec in batch.drain(..) {
            let fab2 = fab.clone();
            let mut f = fab.borrow_mut();
            let ft = match &f.cfg.topology {
                Topology::FatTree(ft) => ft,
                Topology::Flat => unreachable!("down-link on flat topology"),
            };
            let dur = f.cfg.link_time(rec.chunk_bytes, ft.link_bandwidth_gbps);
            f.pods[pod].down.charge(sim, dur, move |sim| {
                let t = sim.now() + fab2.borrow().cfg.wire_latency;
                Fabric::rx_push(&fab2, sim, t, rec);
            });
        }
        fab.borrow_mut().down_cal.recycle(batch);
    }

    fn deliver(fab: &FabricHandle, sim: &mut Sim, delivery: Delivery) {
        let handler = fab.borrow().handlers[delivery.dst]
            .as_ref()
            .unwrap_or_else(|| panic!("node {} has no rx handler", delivery.dst))
            .clone();
        sim.schedule_now(move |sim| {
            (handler.borrow_mut())(sim, delivery);
        });
    }
}

/// Convenience: wrap a closure as an [`RxHandler`].
pub fn rx_handler(f: impl FnMut(&mut Sim, Delivery) + 'static) -> RxHandler {
    Rc::new(RefCell::new(f))
}
