//! The fabric proper: per-node NIC transmit/receive engines, chunked
//! round-robin serialization, wire latency, and delivery to node handlers.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use amt_simnet::{CoreResource, Counter, EventFn, Shared, Sim, SimTime, Trace};
use bytes::Bytes;

use crate::config::FabricConfig;

/// Index of a node in the simulated cluster.
pub type NodeId = usize;

/// Unique id of a message on the fabric (tracing / debugging).
pub type MsgId = u64;

/// What a message carries. The fabric is payload-agnostic; communication
/// libraries layered on top define their own protocol structures.
pub enum Payload {
    /// No payload (pure control signal; the wire size is still accounted).
    Empty,
    /// Real data bytes (zero-copy shared).
    Bytes(Bytes),
    /// An arbitrary protocol structure.
    Any(Rc<dyn Any>),
}

impl Payload {
    /// Byte length of a `Bytes` payload, 0 otherwise.
    pub fn data_len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            _ => 0,
        }
    }

    /// Extract the bytes, panicking if this is not a `Bytes` payload.
    pub fn expect_bytes(self) -> Bytes {
        match self {
            Payload::Bytes(b) => b,
            _ => panic!("payload is not Bytes"),
        }
    }

    /// Downcast an `Any` payload to a concrete protocol type.
    pub fn downcast<T: 'static>(self) -> Rc<T> {
        match self {
            Payload::Any(a) => a.downcast::<T>().expect("payload downcast failed"),
            _ => panic!("payload is not Any"),
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Bytes(b) => write!(f, "Bytes({})", b.len()),
            Payload::Any(_) => write!(f, "Any"),
        }
    }
}

/// A message delivered to a node's receive handler.
#[derive(Debug)]
pub struct Delivery {
    pub src: NodeId,
    pub dst: NodeId,
    /// Wire size in bytes (headers included, as declared by the sender).
    pub size: usize,
    pub msg_id: MsgId,
    pub payload: Payload,
    /// Virtual time at which the sender injected the message.
    pub sent_at: SimTime,
}

/// Per-node receive handler. Invoked once per delivered message, in its own
/// event (never re-entrantly).
pub type RxHandler = Rc<RefCell<dyn FnMut(&mut Sim, Delivery)>>;

/// Local-completion callback for a transfer. An [`EventFn`], so callbacks
/// capturing at most three machine words (the common "one `Rc` plus two
/// indices" shape) cost no allocation.
pub type TxDone = EventFn;

struct Transfer {
    msg_id: MsgId,
    src: NodeId,
    dst: NodeId,
    size: usize,
    sent_at: SimTime,
    remaining: usize,
    first_chunk: bool,
    payload: Option<Payload>,
    on_tx_done: Option<TxDone>,
}

/// Boxed when created (one allocation per chunk) so the three per-chunk
/// events — tx done, wire flight, rx completion — each capture only the
/// fabric handle plus the box and stay inline in their `EventFn` slots.
struct ChunkArrival {
    msg_id: MsgId,
    src: NodeId,
    dst: NodeId,
    size: usize,
    sent_at: SimTime,
    chunk_bytes: usize,
    first_chunk: bool,
    wire_latency: SimTime,
    /// Present only on the final chunk; its receive completion delivers.
    finale: Option<(Payload, Option<TxDone>)>,
}

struct NodeNic {
    tx_busy: bool,
    /// Single-chunk (control) transfers: their own virtual lane.
    tx_ctl: VecDeque<Transfer>,
    /// Multi-chunk (bulk) transfers, FIFO.
    tx_bulk: VecDeque<Transfer>,
    rx: CoreResource,
    tx_bytes: Counter,
    rx_bytes: Counter,
    tx_msgs: Counter,
    rx_msgs: Counter,
    tx_busy_time: SimTime,
}

impl NodeNic {
    fn new(node: NodeId) -> Self {
        NodeNic {
            tx_busy: false,
            tx_ctl: VecDeque::new(),
            tx_bulk: VecDeque::new(),
            rx: CoreResource::new(format!("nic{node}.rx")),
            tx_bytes: Counter::default(),
            rx_bytes: Counter::default(),
            tx_msgs: Counter::default(),
            rx_msgs: Counter::default(),
            tx_busy_time: SimTime::ZERO,
        }
    }
}

/// The simulated cluster fabric. See the crate docs for the model.
pub struct Fabric {
    cfg: FabricConfig,
    nics: Vec<NodeNic>,
    handlers: Vec<Option<RxHandler>>,
    next_msg: MsgId,
    /// Optional trace sink for per-node NIC injection-occupancy counters.
    trace: Option<Shared<Trace>>,
}

/// Shared handle to a [`Fabric`]; all operations are associated functions
/// over the handle so user handlers can re-enter the fabric.
pub type FabricHandle = Rc<RefCell<Fabric>>;

impl Fabric {
    /// Build a fabric and return a shared handle.
    pub fn new(cfg: FabricConfig) -> FabricHandle {
        let nics = (0..cfg.nodes).map(NodeNic::new).collect();
        let handlers = (0..cfg.nodes).map(|_| None).collect();
        Rc::new(RefCell::new(Fabric {
            cfg,
            nics,
            handlers,
            next_msg: 0,
            trace: None,
        }))
    }

    /// Attach a trace sink; the fabric then samples an `n{ix}.nic` counter
    /// track (queued + in-flight transmit transfers) on every change.
    pub fn set_trace(&mut self, trace: Shared<Trace>) {
        self.trace = Some(trace);
    }

    /// Sample the transmit-occupancy counter of `node` at `now`.
    fn sample_nic(&self, node: NodeId, now: SimTime) {
        if let Some(tr) = &self.trace {
            let nic = &self.nics[node];
            let v = nic.tx_ctl.len() + nic.tx_bulk.len() + usize::from(nic.tx_busy);
            tr.borrow_mut()
                .counter(format!("n{node}.nic"), now, v as f64);
        }
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Register the receive handler for `node` (replaces any previous one).
    pub fn set_handler(&mut self, node: NodeId, handler: RxHandler) {
        self.handlers[node] = Some(handler);
    }

    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.nics[node].tx_bytes.get()
    }

    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.nics[node].rx_bytes.get()
    }

    pub fn tx_msgs(&self, node: NodeId) -> u64 {
        self.nics[node].tx_msgs.get()
    }

    pub fn rx_msgs(&self, node: NodeId) -> u64 {
        self.nics[node].rx_msgs.get()
    }

    /// Total time node `node`'s transmit engine has been occupied.
    pub fn tx_busy_time(&self, node: NodeId) -> SimTime {
        self.nics[node].tx_busy_time
    }

    /// Inject a message. `size` is the wire size in bytes (the caller
    /// accounts for headers); `payload` rides along and is handed to the
    /// destination handler; `on_tx_done` fires when the last chunk leaves
    /// the sender's NIC (local completion).
    ///
    /// Self-sends (`src == dst`) bypass the NIC entirely and deliver after
    /// a small fixed loopback delay.
    pub fn send(
        fab: &FabricHandle,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        size: usize,
        payload: Payload,
        on_tx_done: Option<TxDone>,
    ) -> MsgId {
        let msg_id;
        {
            let mut f = fab.borrow_mut();
            msg_id = f.next_msg;
            f.next_msg += 1;
            assert!(src < f.cfg.nodes && dst < f.cfg.nodes, "bad node id");

            if src == dst {
                drop(f);
                let fab2 = fab.clone();
                let sent_at = sim.now();
                sim.schedule_in(SimTime::from_ns(100), move |sim| {
                    if let Some(cb) = on_tx_done {
                        cb.invoke(sim);
                    }
                    Fabric::deliver(
                        &fab2,
                        sim,
                        Delivery {
                            src,
                            dst,
                            size,
                            msg_id,
                            payload,
                            sent_at,
                        },
                    );
                });
                return msg_id;
            }

            f.nics[src].tx_msgs.inc();
            f.nics[src].tx_bytes.add(size as u64);
            let t = Transfer {
                msg_id,
                src,
                dst,
                size,
                sent_at: sim.now(),
                remaining: size,
                first_chunk: true,
                payload: Some(payload),
                on_tx_done,
            };
            if size <= f.cfg.chunk_bytes {
                f.nics[src].tx_ctl.push_back(t);
            } else {
                f.nics[src].tx_bulk.push_back(t);
            }
            f.sample_nic(src, sim.now());
        }
        Fabric::tx_pump(fab, sim, src);
        msg_id
    }

    /// If the transmit engine of `node` is idle and has queued transfers,
    /// serve the next chunk.
    ///
    /// Scheduling policy: bulk (multi-chunk) transfers are served FIFO —
    /// message by message, as an RDMA NIC drains a queue pair — while
    /// single-chunk messages (control traffic) jump ahead between chunks,
    /// modelling a separate virtual lane. This keeps control latency
    /// bounded without splitting bandwidth across every outstanding bulk
    /// transfer (completion times matter: a fair round-robin would make
    /// every transfer of a burst complete at the very end).
    ///
    /// The two lanes are separate queues, so picking the next chunk is
    /// O(1): control front if any, else bulk front — exactly the transfer
    /// the seed's linear `position(size <= chunk)` scan selected, since
    /// relative order within each class is preserved by both schemes.
    fn tx_pump(fab: &FabricHandle, sim: &mut Sim, node: NodeId) {
        let (dur, arrival);
        {
            let mut f = fab.borrow_mut();
            if f.nics[node].tx_busy {
                return;
            }
            let mut t = match f.nics[node].tx_ctl.pop_front() {
                Some(t) => t,
                None => match f.nics[node].tx_bulk.pop_front() {
                    Some(t) => t,
                    None => return,
                },
            };
            let chunk = t.remaining.min(f.cfg.chunk_bytes);
            let first = t.first_chunk;
            t.first_chunk = false;
            t.remaining -= chunk;
            let finished = t.remaining == 0;

            dur = f.cfg.serialization_time(chunk)
                + f.cfg.per_chunk_overhead
                + if first {
                    f.cfg.per_message_overhead
                } else {
                    SimTime::ZERO
                };

            arrival = Box::new(ChunkArrival {
                msg_id: t.msg_id,
                src: t.src,
                dst: t.dst,
                size: t.size,
                sent_at: t.sent_at,
                chunk_bytes: chunk,
                first_chunk: first,
                wire_latency: f.cfg.wire_latency,
                finale: if finished {
                    Some((
                        t.payload.take().expect("payload consumed twice"),
                        t.on_tx_done.take(),
                    ))
                } else {
                    None
                },
            });

            if !finished {
                // Unfinished bulk transfer stays at the head (FIFO).
                f.nics[node].tx_bulk.push_front(t);
            }
            f.nics[node].tx_busy = true;
            f.nics[node].tx_busy_time += dur;
        }

        // Captures: one Rc + one Box — inline in the event slot.
        let fab2 = fab.clone();
        sim.schedule_in(dur, move |sim| {
            // Chunk left the sender NIC (transfers queue at their source,
            // so the transmitting node is `arrival.src`).
            let node = arrival.src;
            {
                let mut f = fab2.borrow_mut();
                f.nics[node].tx_busy = false;
                f.sample_nic(node, sim.now());
            }
            let mut arrival = arrival;
            let on_tx_done = arrival.finale.as_mut().and_then(|(_, cb)| cb.take());
            if let Some(cb) = on_tx_done {
                cb.invoke(sim);
            }
            let fab3 = fab2.clone();
            let wire_latency = arrival.wire_latency;
            sim.schedule_in(wire_latency, move |sim| {
                Fabric::rx_chunk(&fab3, sim, arrival);
            });
            Fabric::tx_pump(&fab2, sim, node);
        });
    }

    /// A chunk reached the destination NIC: serialize through the receive
    /// engine; the final chunk's completion delivers the message.
    fn rx_chunk(fab: &FabricHandle, sim: &mut Sim, arrival: Box<ChunkArrival>) {
        let dst = arrival.dst;
        let dur = {
            let f = fab.borrow();
            f.cfg.serialization_time(arrival.chunk_bytes)
                + f.cfg.per_chunk_overhead
                + if arrival.first_chunk {
                    f.cfg.per_message_overhead
                } else {
                    SimTime::ZERO
                }
        };
        let fab2 = fab.clone();
        // Charge the rx engine; deliver on completion of the final chunk.
        // (Again one Rc + one Box: inline in the waiter's EventFn.)
        let mut f = fab.borrow_mut();
        f.nics[dst].rx.charge(sim, dur, move |sim| {
            let arrival = *arrival;
            let dst = arrival.dst;
            if let Some((payload, _)) = arrival.finale {
                {
                    let mut f = fab2.borrow_mut();
                    f.nics[dst].rx_msgs.inc();
                    f.nics[dst].rx_bytes.add(arrival.size as u64);
                }
                Fabric::deliver(
                    &fab2,
                    sim,
                    Delivery {
                        src: arrival.src,
                        dst,
                        size: arrival.size,
                        msg_id: arrival.msg_id,
                        payload,
                        sent_at: arrival.sent_at,
                    },
                );
            }
        });
    }

    fn deliver(fab: &FabricHandle, sim: &mut Sim, delivery: Delivery) {
        let handler = fab.borrow().handlers[delivery.dst]
            .as_ref()
            .unwrap_or_else(|| panic!("node {} has no rx handler", delivery.dst))
            .clone();
        sim.schedule_now(move |sim| {
            (handler.borrow_mut())(sim, delivery);
        });
    }
}

/// Convenience: wrap a closure as an [`RxHandler`].
pub fn rx_handler(f: impl FnMut(&mut Sim, Delivery) + 'static) -> RxHandler {
    Rc::new(RefCell::new(f))
}
