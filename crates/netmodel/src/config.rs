//! Fabric configuration, with defaults calibrated to the paper's platform
//! (SDSC Expanse: 2×50 Gb/s HDR InfiniBand per node, hybrid fat tree).

use amt_simnet::SimTime;

/// Hardware parameters of the simulated fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-direction NIC injection bandwidth in Gbit/s.
    /// Expanse: 2 × 50 Gb/s HDR links per node.
    pub nic_bandwidth_gbps: f64,
    /// One-way wire/switch latency (constant; the fat tree is treated as
    /// non-blocking at ≤32 nodes).
    pub wire_latency: SimTime,
    /// Segmentation chunk size in bytes. Bounds head-of-line blocking of
    /// control messages behind bulk transfers.
    pub chunk_bytes: usize,
    /// Fixed NIC/driver cost charged once per message on each side
    /// (message-rate ceiling).
    pub per_message_overhead: SimTime,
    /// Fixed cost charged per chunk on each side (DMA descriptor handling).
    pub per_chunk_overhead: SimTime,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 2,
            nic_bandwidth_gbps: 100.0,
            wire_latency: SimTime::from_ns(800),
            chunk_bytes: 64 * 1024,
            per_message_overhead: SimTime::from_ns(250),
            per_chunk_overhead: SimTime::from_ns(40),
        }
    }
}

impl FabricConfig {
    /// Expanse-like fabric with `nodes` nodes.
    pub fn expanse(nodes: usize) -> Self {
        FabricConfig {
            nodes,
            ..Default::default()
        }
    }

    /// Bytes per nanosecond of one NIC direction.
    #[inline]
    pub fn bytes_per_ns(&self) -> f64 {
        // Gbit/s == bits/ns; divide by 8 for bytes/ns.
        self.nic_bandwidth_gbps / 8.0
    }

    /// Pure serialization time of `bytes` through one NIC direction.
    #[inline]
    pub fn serialization_time(&self, bytes: usize) -> SimTime {
        SimTime::from_ns_f64(bytes as f64 / self.bytes_per_ns())
    }

    /// Number of chunks a message of `bytes` occupies (at least 1).
    #[inline]
    pub fn chunks_of(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.chunk_bytes).max(1)
    }

    /// Lower-bound one-way delivery time for an isolated message of `bytes`
    /// (tx service + wire + rx service of the final chunk overlap-pipelined).
    pub fn ideal_one_way(&self, bytes: usize) -> SimTime {
        let chunks = self.chunks_of(bytes);
        let last_chunk = bytes - (chunks - 1) * self.chunk_bytes.min(bytes);
        // tx of whole message, then wire latency, then rx of the final chunk
        // (earlier chunks' rx overlaps with later chunks' tx).
        self.serialization_time(bytes)
            + self.per_message_overhead
            + self.per_chunk_overhead * chunks as u64
            + self.wire_latency
            + self.serialization_time(last_chunk)
            + self.per_message_overhead
            + self.per_chunk_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion() {
        let cfg = FabricConfig::default();
        assert!((cfg.bytes_per_ns() - 12.5).abs() < 1e-12);
        // 125 KB at 12.5 B/ns = 10 us.
        assert_eq!(cfg.serialization_time(125_000), SimTime::from_us(10));
    }

    #[test]
    fn chunk_count() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.chunks_of(0), 1);
        assert_eq!(cfg.chunks_of(1), 1);
        assert_eq!(cfg.chunks_of(64 * 1024), 1);
        assert_eq!(cfg.chunks_of(64 * 1024 + 1), 2);
        assert_eq!(cfg.chunks_of(8 * 1024 * 1024), 128);
    }

    #[test]
    fn ideal_one_way_scales_with_size() {
        let cfg = FabricConfig::default();
        let small = cfg.ideal_one_way(64);
        let big = cfg.ideal_one_way(8 * 1024 * 1024);
        assert!(
            small < SimTime::from_us(2),
            "small message too slow: {small}"
        );
        // 8 MiB at 12.5 B/ns is ~671 us one way.
        assert!(
            big > SimTime::from_us(650) && big < SimTime::from_us(700),
            "{big}"
        );
    }
}
