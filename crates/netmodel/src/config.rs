//! Fabric configuration, with defaults calibrated to the paper's platform
//! (SDSC Expanse: 2×50 Gb/s HDR InfiniBand per node, hybrid fat tree).

use amt_simnet::SimTime;

/// Switch-level topology of the fabric.
///
/// `Flat` is the seed model: every pair of nodes is one constant-latency
/// wire apart and only the NICs contend (Expanse's hybrid fat tree is close
/// to non-blocking at the paper's ≤32-node scale). `FatTree` adds a
/// two-level hierarchy for wide clusters: nodes are grouped into contiguous
/// pods, intra-pod traffic behaves exactly like `Flat`, and cross-pod
/// traffic is serialized through the source pod's shared up-link, crosses
/// the spine with its own latency, and is serialized through the
/// destination pod's shared down-link before the last intra-pod hop.
#[derive(Debug, Clone)]
pub enum Topology {
    Flat,
    FatTree(FatTreeConfig),
}

/// Parameters of the two-level fat-tree topology.
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// Number of pods; nodes are assigned contiguously
    /// (`pod = node / ceil(nodes / pods)`).
    pub pods: usize,
    /// Shared per-pod up-link / down-link bandwidth in Gbit/s (each
    /// direction is an independent serial resource).
    pub link_bandwidth_gbps: f64,
    /// One-way latency across the spine (up-link exit → down-link entry).
    /// Must be nonzero: it is the conservative lookahead between pods.
    pub spine_latency: SimTime,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            pods: 2,
            // A pod shares 4 node-widths of up-link (8:1 oversubscription
            // at 32-node pods) — wide runs see realistic congestion.
            link_bandwidth_gbps: 400.0,
            spine_latency: SimTime::from_ns(600),
        }
    }
}

/// One hop of a routed message (diagnostics / routing proptests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    SrcNic(usize),
    PodUp(usize),
    Spine,
    PodDown(usize),
    DstNic(usize),
}

/// Hardware parameters of the simulated fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-direction NIC injection bandwidth in Gbit/s.
    /// Expanse: 2 × 50 Gb/s HDR links per node.
    pub nic_bandwidth_gbps: f64,
    /// One-way wire/switch latency (constant; the fat tree is treated as
    /// non-blocking at ≤32 nodes).
    pub wire_latency: SimTime,
    /// Segmentation chunk size in bytes. Bounds head-of-line blocking of
    /// control messages behind bulk transfers.
    pub chunk_bytes: usize,
    /// Fixed NIC/driver cost charged once per message on each side
    /// (message-rate ceiling).
    pub per_message_overhead: SimTime,
    /// Fixed cost charged per chunk on each side (DMA descriptor handling).
    pub per_chunk_overhead: SimTime,
    /// Switch-level topology. `Flat` (the default) is byte-identical to the
    /// seed model.
    pub topology: Topology,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 2,
            nic_bandwidth_gbps: 100.0,
            wire_latency: SimTime::from_ns(800),
            chunk_bytes: 64 * 1024,
            per_message_overhead: SimTime::from_ns(250),
            per_chunk_overhead: SimTime::from_ns(40),
            topology: Topology::Flat,
        }
    }
}

impl FabricConfig {
    /// Expanse-like fabric with `nodes` nodes.
    pub fn expanse(nodes: usize) -> Self {
        FabricConfig {
            nodes,
            ..Default::default()
        }
    }

    /// Bytes per nanosecond of one NIC direction.
    #[inline]
    pub fn bytes_per_ns(&self) -> f64 {
        // Gbit/s == bits/ns; divide by 8 for bytes/ns.
        self.nic_bandwidth_gbps / 8.0
    }

    /// Pure serialization time of `bytes` through one NIC direction.
    #[inline]
    pub fn serialization_time(&self, bytes: usize) -> SimTime {
        SimTime::from_ns_f64(bytes as f64 / self.bytes_per_ns())
    }

    /// Serialization time of `bytes` through a shared pod link (fat tree).
    #[inline]
    pub fn link_time(&self, bytes: usize, gbps: f64) -> SimTime {
        SimTime::from_ns_f64(bytes as f64 / (gbps / 8.0))
    }

    /// Pod index of `node` under the fat-tree topology (0 under `Flat`).
    #[inline]
    pub fn pod_of(&self, node: usize) -> usize {
        match &self.topology {
            Topology::Flat => 0,
            Topology::FatTree(ft) => node / self.nodes.div_ceil(ft.pods),
        }
    }

    /// The deterministic route of a message, as a hop list. Intra-pod (and
    /// all `Flat`) traffic goes NIC → NIC; cross-pod traffic climbs the
    /// source pod's up-link, crosses the spine, and descends the
    /// destination pod's down-link.
    pub fn route(&self, src: usize, dst: usize) -> Vec<Hop> {
        let (sp, dp) = (self.pod_of(src), self.pod_of(dst));
        if sp == dp {
            vec![Hop::SrcNic(src), Hop::DstNic(dst)]
        } else {
            vec![
                Hop::SrcNic(src),
                Hop::PodUp(sp),
                Hop::Spine,
                Hop::PodDown(dp),
                Hop::DstNic(dst),
            ]
        }
    }

    /// Conservative lookahead between node partitions: the minimum latency
    /// any message experiences after the last event on its source partition
    /// (tx-done or up-link completion) before it can affect another
    /// partition. Pod-aligned partitions under `FatTree` are separated by
    /// at least the spine latency; under `Flat`, by the wire latency.
    pub fn lookahead(&self) -> SimTime {
        match &self.topology {
            Topology::Flat => self.wire_latency,
            Topology::FatTree(ft) => ft.spine_latency,
        }
    }

    /// Number of chunks a message of `bytes` occupies (at least 1).
    #[inline]
    pub fn chunks_of(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.chunk_bytes).max(1)
    }

    /// Lower-bound one-way delivery time for an isolated message of `bytes`
    /// (tx service + wire + rx service of the final chunk overlap-pipelined).
    pub fn ideal_one_way(&self, bytes: usize) -> SimTime {
        let chunks = self.chunks_of(bytes);
        let last_chunk = bytes - (chunks - 1) * self.chunk_bytes.min(bytes);
        // tx of whole message, then wire latency, then rx of the final chunk
        // (earlier chunks' rx overlaps with later chunks' tx).
        self.serialization_time(bytes)
            + self.per_message_overhead
            + self.per_chunk_overhead * chunks as u64
            + self.wire_latency
            + self.serialization_time(last_chunk)
            + self.per_message_overhead
            + self.per_chunk_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion() {
        let cfg = FabricConfig::default();
        assert!((cfg.bytes_per_ns() - 12.5).abs() < 1e-12);
        // 125 KB at 12.5 B/ns = 10 us.
        assert_eq!(cfg.serialization_time(125_000), SimTime::from_us(10));
    }

    #[test]
    fn chunk_count() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.chunks_of(0), 1);
        assert_eq!(cfg.chunks_of(1), 1);
        assert_eq!(cfg.chunks_of(64 * 1024), 1);
        assert_eq!(cfg.chunks_of(64 * 1024 + 1), 2);
        assert_eq!(cfg.chunks_of(8 * 1024 * 1024), 128);
    }

    #[test]
    fn ideal_one_way_scales_with_size() {
        let cfg = FabricConfig::default();
        let small = cfg.ideal_one_way(64);
        let big = cfg.ideal_one_way(8 * 1024 * 1024);
        assert!(
            small < SimTime::from_us(2),
            "small message too slow: {small}"
        );
        // 8 MiB at 12.5 B/ns is ~671 us one way.
        assert!(
            big > SimTime::from_us(650) && big < SimTime::from_us(700),
            "{big}"
        );
    }
}
