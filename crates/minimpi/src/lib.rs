//! # amt-minimpi
//!
//! An MPI-subset message-passing library over the simulated fabric — the
//! stand-in for Open MPI/UCX in the paper's MPI backend (§4.2).
//!
//! ## What is faithful
//!
//! * **Two-sided tag matching** with `ANY_SOURCE` wildcards, posted-receive
//!   and unexpected-message queues, and O(queue-length) scan costs.
//! * **Persistent requests** (`recv_init`/`start`), the mechanism PaRSEC's
//!   MPI backend uses for active messages (five per tag).
//! * **Eager vs rendezvous** protocols with a configurable threshold; eager
//!   pays copy costs on both sides, rendezvous pays an RTS/CTS round trip
//!   but moves data zero-copy.
//! * **No asynchronous progress**: the library only advances — drains the
//!   incoming hardware queue, matches messages, reacts to RTS/CTS — *inside*
//!   MPI calls (`testsome`, `test`, `irecv`, …). An arrived message sits in
//!   the per-rank incoming queue until somebody calls into the library.
//!   This is the property the paper's §4.3/§5.2 analysis hinges on.
//!
//! ## Time accounting
//!
//! Library calls execute their logic immediately (the real matching code
//! runs for real) and return the CPU time the call consumed as a [`amt_simnet::SimTime`]
//! cost. The *caller* charges that cost to whichever simulated core its
//! thread occupies; the call's effects should be acted on after the charge
//! completes. This mirrors how a DES models fast library code: state changes
//! at the call instant, the caller's thread is then occupied for the cost.
//!
//! ## Simplification
//!
//! Message-pair ordering: control and eager messages are single-chunk on the
//! fabric and therefore arrive in send order per (src, dst); rendezvous bulk
//! data is matched by request id, not by tag. Consequently matching order is
//! always well-defined without a reordering buffer — equivalent to running
//! MPI with `mpi_assert_allow_overtaking`, which is exactly how PaRSEC
//! configures it (§4.2.2).

mod costs;
pub mod matcher;
mod world;

pub use costs::MpiCosts;
pub use world::{Completion, Mpi, MpiWorld, ReqId, SrcSel, Status, Tag, ANY_TAG_UNSUPPORTED};

#[cfg(test)]
mod tests;
