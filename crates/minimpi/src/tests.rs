//! MiniMPI semantics tests: matching, wildcards, persistent requests,
//! eager/rendezvous protocols, progress-only-inside-calls.

use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::{Mpi, MpiCosts, MpiWorld, SrcSel};

fn setup(nodes: usize) -> (Sim, Vec<Mpi>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(nodes));
    let ranks = MpiWorld::create(&fabric, MpiCosts::default());
    (sim, ranks)
}

/// Poll `rank` until `req` completes, stepping the simulation.
///
/// MiniMPI has no asynchronous progress (by design — see crate docs), so a
/// rendezvous needs *both* sides to call into the library; `peers` are
/// progressed with empty `testsome` calls, as a real MPI application's other
/// ranks would be doing inside their own communication loops.
fn wait_peers(sim: &mut Sim, rank: &Mpi, req: crate::ReqId, peers: &[&Mpi]) -> crate::Status {
    loop {
        let (st, _cost) = rank.test(sim, req);
        if let Some(st) = st {
            return st;
        }
        for p in peers {
            let _ = p.testsome(sim, &[]);
        }
        assert!(sim.step(), "deadlock: simulation idle while waiting");
    }
}

fn wait(sim: &mut Sim, rank: &Mpi, req: crate::ReqId) -> crate::Status {
    wait_peers(sim, rank, req, &[])
}

#[test]
fn eager_send_recv_roundtrip() {
    let (mut sim, ranks) = setup(2);
    let data = Bytes::from(vec![7u8; 1024]);
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(0), 42);
    let (_sreq, cost) = ranks[0].isend(&mut sim, 1, 42, data.len(), Frames::from(data.clone()));
    assert!(cost > SimTime::ZERO);
    let st = wait(&mut sim, &ranks[1], rreq);
    assert_eq!(st.src, 0);
    assert_eq!(st.tag, 42);
    assert_eq!(st.size, 1024);
    assert_eq!(st.data.to_vec(), data.to_vec());
}

#[test]
fn rendezvous_send_recv_roundtrip() {
    let (mut sim, ranks) = setup(2);
    let size = 1 << 20; // 1 MiB, above the eager threshold
    let data = Bytes::from(vec![3u8; size]);
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(0), 9);
    let (sreq, _) = ranks[0].isend(&mut sim, 1, 9, size, Frames::from(data.clone()));
    let st = wait_peers(&mut sim, &ranks[1], rreq, &[&ranks[0]]);
    assert_eq!(st.size, size);
    assert_eq!(st.data.to_vec(), data.to_vec());
    // Sender side also completes.
    let st = wait(&mut sim, &ranks[0], sreq);
    assert_eq!(st.size, size);
}

#[test]
fn unexpected_messages_match_later_receive() {
    let (mut sim, ranks) = setup(2);
    ranks[0].send(
        &mut sim,
        1,
        5,
        256,
        Frames::from(Bytes::from(vec![1u8; 256])),
    );
    sim.run(); // message delivered, sits in hardware queue
    assert_eq!(ranks[1].incoming_depth(), 1);
    // Any MPI call drains it into the unexpected queue; a matching irecv
    // then completes immediately.
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 99); // wrong tag
    let (_, _) = ranks[1].test(&mut sim, rreq); // drives progress
    assert_eq!(ranks[1].unexpected_depth(), 1);
    let (rreq2, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 5);
    let st = wait(&mut sim, &ranks[1], rreq2);
    assert_eq!(st.size, 256);
    assert_eq!(ranks[1].unexpected_depth(), 0);
    ranks[1].release(rreq);
}

#[test]
fn any_source_matches_multiple_senders() {
    let (mut sim, ranks) = setup(4);
    for rank in ranks.iter().take(4).skip(1) {
        rank.send(&mut sim, 0, 7, 64, Frames::Empty);
    }
    let mut seen = Vec::new();
    for _ in 0..3 {
        let (rreq, _) = ranks[0].irecv(&mut sim, SrcSel::Any, 7);
        let st = wait(&mut sim, &ranks[0], rreq);
        seen.push(st.src);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3]);
}

#[test]
fn specific_source_does_not_steal() {
    let (mut sim, ranks) = setup(3);
    ranks[2].send(&mut sim, 0, 7, 64, Frames::Empty);
    sim.run();
    // Posted receive for rank 1 must not match rank 2's message.
    let (r1, _) = ranks[0].irecv(&mut sim, SrcSel::Rank(1), 7);
    let (none, _) = ranks[0].test(&mut sim, r1);
    assert!(none.is_none());
    assert_eq!(ranks[0].unexpected_depth(), 1);
    let (r2, _) = ranks[0].irecv(&mut sim, SrcSel::Rank(2), 7);
    let st = wait(&mut sim, &ranks[0], r2);
    assert_eq!(st.src, 2);
    ranks[0].release(r1);
}

#[test]
fn persistent_receive_restarts() {
    let (mut sim, ranks) = setup(2);
    let (preq, _) = ranks[1].recv_init(SrcSel::Any, 3);
    ranks[1].start(&mut sim, preq);
    for round in 0..5u8 {
        ranks[0].send(
            &mut sim,
            1,
            3,
            128,
            Frames::from(Bytes::from(vec![round; 128])),
        );
        let st = loop {
            let (done, _) = ranks[1].testsome(&mut sim, &[preq]);
            if !done.is_empty() {
                break done.into_iter().next().expect("non-empty").status;
            }
            assert!(sim.step(), "deadlock");
        };
        assert_eq!(st.data.to_vec(), vec![round; 128]);
        // Persistent: the request survives and re-arms.
        ranks[1].start(&mut sim, preq);
    }
    ranks[1].release(preq);
}

#[test]
fn testsome_reports_multiple_completions() {
    let (mut sim, ranks) = setup(2);
    let mut rreqs = Vec::new();
    for tag in 0..8u64 {
        let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, tag);
        rreqs.push(r);
    }
    for tag in 0..8u64 {
        ranks[0].send(&mut sim, 1, tag, 512, Frames::Empty);
    }
    sim.run();
    let (done, cost) = ranks[1].testsome(&mut sim, &rreqs);
    assert_eq!(done.len(), 8);
    assert!(cost > SimTime::ZERO);
    let mut tags: Vec<u64> = done.iter().map(|c| c.status.tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, (0..8).collect::<Vec<_>>());
}

#[test]
fn no_progress_without_calls() {
    let (mut sim, ranks) = setup(2);
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1);
    ranks[0].send(&mut sim, 1, 1, 64, Frames::Empty);
    sim.run();
    // Delivered to hardware, but the library hasn't looked yet.
    assert_eq!(ranks[1].incoming_depth(), 1);
    let (st, _) = ranks[1].test(&mut sim, rreq);
    assert!(st.is_some(), "progress happens inside the call");
    assert_eq!(ranks[1].incoming_depth(), 0);
}

#[test]
fn matching_cost_grows_with_queue_depth() {
    let (mut sim, ranks) = setup(2);
    // Fill the unexpected queue with 100 non-matching messages.
    for i in 0..100u64 {
        ranks[0].send(&mut sim, 1, 1000 + i, 32, Frames::Empty);
    }
    sim.run();
    let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1); // drains into unexpected
    let (_, _) = ranks[1].test(&mut sim, r);
    assert_eq!(ranks[1].unexpected_depth(), 100);
    // A non-matching scan of 100 entries must cost more than an empty scan.
    let (_r2, cost_deep) = ranks[1].irecv(&mut sim, SrcSel::Any, 2);
    let costs = MpiCosts::default();
    assert!(cost_deep >= costs.call_base + costs.recv_post_base + costs.match_per_item * 100);
    ranks[1].release(r);
}

#[test]
fn rendezvous_sender_completes_after_data_tx() {
    let (mut sim, ranks) = setup(2);
    let size = 4 << 20;
    let (sreq, _) = ranks[0].isend(&mut sim, 1, 77, size, Frames::Empty);
    // No receive posted yet: sender cannot complete.
    sim.run();
    let (st, _) = ranks[0].test(&mut sim, sreq);
    assert!(st.is_none(), "rendezvous must wait for the receiver");
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(0), 77);
    let st = wait_peers(&mut sim, &ranks[1], rreq, &[&ranks[0]]);
    assert_eq!(st.size, size);
    let st = wait(&mut sim, &ranks[0], sreq);
    assert_eq!(st.size, size);
}

#[test]
#[should_panic(expected = "stale request handle")]
fn stale_handle_detected() {
    let (mut sim, ranks) = setup(2);
    let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1);
    ranks[1].release(r);
    let _ = ranks[1].test(&mut sim, r);
}

#[test]
fn cost_only_transfers_carry_no_bytes() {
    let (mut sim, ranks) = setup(2);
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 8);
    ranks[0].isend(&mut sim, 1, 8, 2 << 20, Frames::Empty);
    let st = wait_peers(&mut sim, &ranks[1], rreq, &[&ranks[0]]);
    assert_eq!(st.size, 2 << 20);
    assert!(st.data.is_empty());
}

#[test]
fn iprobe_reports_without_consuming() {
    let (mut sim, ranks) = setup(2);
    ranks[0].send(
        &mut sim,
        1,
        9,
        300,
        Frames::from(Bytes::from(vec![5u8; 300])),
    );
    sim.run();
    // Probe sees the unexpected message but leaves it queued.
    let (st, cost) = ranks[1].iprobe(&mut sim, SrcSel::Any, 9);
    let st = st.expect("probe hit");
    assert_eq!((st.src, st.tag, st.size), (0, 9, 300));
    assert!(st.data.is_empty(), "probe must not consume the payload");
    assert!(cost > SimTime::ZERO);
    assert_eq!(ranks[1].unexpected_depth(), 1);
    // Probe for a different tag misses.
    let (miss, _) = ranks[1].iprobe(&mut sim, SrcSel::Any, 10);
    assert!(miss.is_none());
    // The probe-allocate-receive pattern the paper contrasts with LCI's
    // dynamic buffers (§5.2): a subsequent receive gets the data.
    let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(st.src), st.tag);
    let got = wait(&mut sim, &ranks[1], rreq);
    assert_eq!(got.data.to_vec(), vec![5u8; 300]);
    assert_eq!(ranks[1].unexpected_depth(), 0);
}
