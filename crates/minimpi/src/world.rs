//! MiniMPI state machines: requests, matching tables, eager and rendezvous
//! wire protocols.
//!
//! Matching is O(1)-average via the hash-bucketed tables in
//! [`crate::matcher`]; the *virtual* cost charged per match is still the
//! seed's linear-scan count (`match_per_item × entries the scan would have
//! examined`), so results are byte-identical to the original `VecDeque`
//! implementation (proven by `tests/proptests.rs` and the golden fig4
//! report).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use amt_netmodel::{rx_handler, Fabric, FabricHandle, NodeId, Payload};
use amt_simnet::{EventFn, Sim, SimTime};
use bytes::Frames;

use crate::costs::MpiCosts;
use crate::matcher::{PostTable, PostToken, UnexpTable};

/// MiniMPI does not support wildcard tags: as the paper notes (§4.2.1), all
/// active-message tags are explicitly registered, so `ANY_TAG` is never
/// needed by the PaRSEC backend.
pub const ANY_TAG_UNSUPPORTED: bool = true;

/// Message tag.
pub type Tag = u64;

type Waker = Rc<dyn Fn(&mut Sim)>;

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// `MPI_ANY_SOURCE`.
    Any,
    /// A specific rank.
    Rank(NodeId),
}

impl SrcSel {
    /// Whether a message from `src` satisfies this selector.
    #[inline]
    pub fn matches(self, src: NodeId) -> bool {
        match self {
            SrcSel::Any => true,
            SrcSel::Rank(r) => r == src,
        }
    }
}

/// Handle to a request. Generation-checked: using a stale handle panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqId {
    rank: NodeId,
    idx: usize,
    gen: u32,
}

/// Completion information for a finished operation.
#[derive(Debug, Clone)]
pub struct Status {
    pub src: NodeId,
    pub tag: Tag,
    pub size: usize,
    /// Received payload frames ([`Frames::Empty`] for sends and cost-only
    /// transfers). Frame boundaries are the sender's submission boundaries.
    pub data: Frames,
    /// For receive completions: when the peer injected the message
    /// ([`SimTime::ZERO`] for send completions and probes).
    pub sent_at: SimTime,
}

/// One entry of a `testsome` result.
#[derive(Debug, Clone)]
pub struct Completion {
    pub req: ReqId,
    pub status: Status,
}

enum RState {
    /// Persistent request between `start` calls.
    Inactive,
    /// Eager send completed at issue; rendezvous send waiting for CTS/DATA.
    SendInFlight { tag: Tag, size: usize, data: Frames },
    /// Rendezvous DATA transmitted; completion latched for the next poll.
    Complete(Status),
    /// Receive sitting in the posted table; the token cancels it in O(1).
    RecvPosted { tok: PostToken },
    /// Receive matched to an RTS; CTS sent, awaiting DATA.
    RecvAwaitData { src: NodeId, tag: Tag },
}

struct Request {
    gen: u32,
    state: RState,
    /// `Some(template)` for persistent (recv_init) requests.
    persistent: Option<(SrcSel, Tag)>,
}

enum Unexpected {
    Eager {
        src: NodeId,
        tag: Tag,
        size: usize,
        data: Frames,
        sent_at: SimTime,
    },
    Rts {
        src: NodeId,
        tag: Tag,
        size: usize,
        sender_req: usize,
    },
}

/// Wire protocol messages.
enum Wire {
    Eager {
        src: NodeId,
        tag: Tag,
        size: usize,
        data: RefCell<Frames>,
    },
    Rts {
        src: NodeId,
        tag: Tag,
        size: usize,
        sender_req: usize,
    },
    Cts {
        sender_req: usize,
        recver: NodeId,
        recver_req: usize,
    },
    Data {
        recver_req: usize,
        size: usize,
        data: RefCell<Frames>,
    },
}

struct RankState {
    requests: Vec<Request>,
    free: Vec<usize>,
    /// Posted receives, hash-bucketed by `(src, tag)` with a wildcard
    /// side-list, ordered by arrival sequence number.
    posted: PostTable,
    /// Unexpected-message table, dual-indexed by `(src, tag)` and `tag`.
    unexpected: UnexpTable<Unexpected>,
    /// Hardware queue of delivered-but-unprogressed wire messages, with
    /// their injection timestamps.
    incoming: VecDeque<(Box<Wire>, SimTime)>,
    /// Invoked when something poll-worthy happens (message arrival, local
    /// send completion) so a simulated polling thread can schedule a round
    /// without busy-waiting in virtual time.
    waker: Option<Waker>,
}

impl RankState {
    fn new() -> Self {
        RankState {
            requests: Vec::new(),
            free: Vec::new(),
            posted: PostTable::new(),
            unexpected: UnexpTable::new(),
            incoming: VecDeque::new(),
            waker: None,
        }
    }

    fn alloc(&mut self, state: RState, persistent: Option<(SrcSel, Tag)>) -> (usize, u32) {
        if let Some(idx) = self.free.pop() {
            let r = &mut self.requests[idx];
            r.gen = r.gen.wrapping_add(1);
            r.state = state;
            r.persistent = persistent;
            (idx, r.gen)
        } else {
            self.requests.push(Request {
                gen: 0,
                state,
                persistent,
            });
            (self.requests.len() - 1, 0)
        }
    }
}

/// The MPI "world": one communicator spanning every fabric node.
pub struct MpiWorld {
    fabric: FabricHandle,
    costs: MpiCosts,
    ranks: Vec<RankState>,
}

impl MpiWorld {
    /// Create a world over `fabric` and register its receive handlers on
    /// every node. Returns per-rank handles.
    pub fn create(fabric: &FabricHandle, costs: MpiCosts) -> Vec<Mpi> {
        let nodes = fabric.borrow().nodes();
        let world = Rc::new(RefCell::new(MpiWorld {
            fabric: fabric.clone(),
            costs,
            ranks: (0..nodes).map(|_| RankState::new()).collect(),
        }));
        for node in 0..nodes {
            // Weak: the fabric must not keep the world alive (the world
            // holds the fabric; a strong reference here would leak both).
            let w = Rc::downgrade(&world);
            fabric.borrow_mut().set_handler(
                node,
                rx_handler(move |sim, d| {
                    let Some(w) = w.upgrade() else { return };
                    // Hardware enqueue only; progress happens inside calls.
                    let sent_at = d.sent_at;
                    let wire = d.payload.downcast::<Wire>();
                    let waker = {
                        let mut wb = w.borrow_mut();
                        wb.ranks[node].incoming.push_back((wire, sent_at));
                        wb.ranks[node].waker.clone()
                    };
                    if let Some(waker) = waker {
                        waker(sim);
                    }
                }),
            );
        }
        (0..nodes)
            .map(|rank| Mpi {
                world: world.clone(),
                rank,
            })
            .collect()
    }
}

/// Per-rank MPI handle.
#[derive(Clone)]
pub struct Mpi {
    world: Rc<RefCell<MpiWorld>>,
    rank: NodeId,
}

impl Mpi {
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.world.borrow().ranks.len()
    }

    pub fn costs(&self) -> MpiCosts {
        self.world.borrow().costs.clone()
    }

    fn check(&self, req: ReqId) {
        assert_eq!(req.rank, self.rank, "request used on wrong rank");
        let w = self.world.borrow();
        assert_eq!(
            w.ranks[self.rank].requests[req.idx].gen, req.gen,
            "stale request handle"
        );
    }

    /// Non-blocking send. Eager payloads complete immediately (buffered);
    /// larger payloads run the rendezvous protocol. Returns the request and
    /// the CPU cost of the call.
    pub fn isend(
        &self,
        sim: &mut Sim,
        dst: NodeId,
        tag: Tag,
        size: usize,
        data: Frames,
    ) -> (ReqId, SimTime) {
        let mut w = self.world.borrow_mut();
        let costs = w.costs.clone();
        let fabric = w.fabric.clone();
        let mut cost = costs.call_base;
        if costs.is_eager(size) {
            cost += costs.send_eager_base + costs.copy_cost(size);
            let wire = Box::new(Wire::Eager {
                src: self.rank,
                tag,
                size,
                data: RefCell::new(data),
            });
            let (idx, gen) = w.ranks[self.rank].alloc(
                RState::Complete(Status {
                    src: self.rank,
                    tag,
                    size,
                    data: Frames::Empty,
                    sent_at: SimTime::ZERO,
                }),
                None,
            );
            drop(w);
            Fabric::send(
                &fabric,
                sim,
                self.rank,
                dst,
                size + costs.header_bytes,
                Payload::Any(wire),
                None,
            );
            (
                ReqId {
                    rank: self.rank,
                    idx,
                    gen,
                },
                cost,
            )
        } else {
            cost += costs.send_rndv_base;
            let (idx, gen) =
                w.ranks[self.rank].alloc(RState::SendInFlight { tag, size, data }, None);
            let wire = Box::new(Wire::Rts {
                src: self.rank,
                tag,
                size,
                sender_req: idx,
            });
            drop(w);
            Fabric::send(
                &fabric,
                sim,
                self.rank,
                dst,
                costs.header_bytes,
                Payload::Any(wire),
                None,
            );
            (
                ReqId {
                    rank: self.rank,
                    idx,
                    gen,
                },
                cost,
            )
        }
    }

    /// Blocking eager send, as PaRSEC uses for active messages (§4.2.1).
    /// Panics if the payload exceeds the eager threshold.
    pub fn send(&self, sim: &mut Sim, dst: NodeId, tag: Tag, size: usize, data: Frames) -> SimTime {
        assert!(
            self.world.borrow().costs.is_eager(size),
            "blocking send restricted to eager payloads ({size} bytes)"
        );
        let (req, cost) = self.isend(sim, dst, tag, size, data);
        // Eager isend is already complete; release the request.
        self.release(req);
        cost
    }

    /// Non-blocking receive. Matches the unexpected table first.
    pub fn irecv(&self, sim: &mut Sim, src: SrcSel, tag: Tag) -> (ReqId, SimTime) {
        let mut w = self.world.borrow_mut();
        let costs = w.costs.clone();
        let mut cost = costs.call_base + costs.recv_post_base;
        let rs = &mut w.ranks[self.rank];
        let out = rs.unexpected.match_take(src, tag);
        cost += costs.match_per_item * out.scanned as u64;
        if let Some(u) = out.found {
            match u {
                Unexpected::Eager {
                    src: usrc,
                    tag,
                    size,
                    data,
                    sent_at,
                } => {
                    cost += costs.copy_cost(size);
                    let (idx, gen) = rs.alloc(
                        RState::Complete(Status {
                            src: usrc,
                            tag,
                            size,
                            data,
                            sent_at,
                        }),
                        None,
                    );
                    (
                        ReqId {
                            rank: self.rank,
                            idx,
                            gen,
                        },
                        cost,
                    )
                }
                Unexpected::Rts {
                    src: usrc,
                    tag,
                    size,
                    sender_req,
                } => {
                    let _ = size;
                    let (idx, gen) = rs.alloc(RState::RecvAwaitData { src: usrc, tag }, None);
                    let fabric = w.fabric.clone();
                    let wire = Box::new(Wire::Cts {
                        sender_req,
                        recver: self.rank,
                        recver_req: idx,
                    });
                    let hdr = costs.header_bytes;
                    drop(w);
                    Fabric::send(&fabric, sim, self.rank, usrc, hdr, Payload::Any(wire), None);
                    (
                        ReqId {
                            rank: self.rank,
                            idx,
                            gen,
                        },
                        cost,
                    )
                }
            }
        } else {
            let (idx, gen) = rs.alloc(
                RState::RecvPosted {
                    tok: PostToken::DANGLING,
                },
                None,
            );
            let tok = rs.posted.post(idx, src, tag);
            rs.requests[idx].state = RState::RecvPosted { tok };
            (
                ReqId {
                    rank: self.rank,
                    idx,
                    gen,
                },
                cost,
            )
        }
    }

    /// Create an inactive persistent receive (`MPI_Recv_init`).
    pub fn recv_init(&self, src: SrcSel, tag: Tag) -> (ReqId, SimTime) {
        let mut w = self.world.borrow_mut();
        let cost = w.costs.call_base;
        let (idx, gen) = w.ranks[self.rank].alloc(RState::Inactive, Some((src, tag)));
        (
            ReqId {
                rank: self.rank,
                idx,
                gen,
            },
            cost,
        )
    }

    /// Activate a persistent request (`MPI_Start`). Matching against the
    /// unexpected table happens exactly as for `irecv`.
    pub fn start(&self, sim: &mut Sim, req: ReqId) -> SimTime {
        self.check(req);
        let (src, tag) = {
            let w = self.world.borrow();
            let r = &w.ranks[self.rank].requests[req.idx];
            assert!(
                matches!(r.state, RState::Inactive),
                "start on a non-inactive request"
            );
            r.persistent.expect("start on non-persistent request")
        };
        let mut w = self.world.borrow_mut();
        let costs = w.costs.clone();
        let mut cost = costs.call_base + costs.recv_post_base;
        let rs = &mut w.ranks[self.rank];
        let out = rs.unexpected.match_take(src, tag);
        cost += costs.match_per_item * out.scanned as u64;
        match out.found {
            Some(u) => match u {
                Unexpected::Eager {
                    src: usrc,
                    tag,
                    size,
                    data,
                    sent_at,
                } => {
                    cost += costs.copy_cost(size);
                    rs.requests[req.idx].state = RState::Complete(Status {
                        src: usrc,
                        tag,
                        size,
                        data,
                        sent_at,
                    });
                }
                Unexpected::Rts {
                    src: usrc,
                    tag,
                    size,
                    sender_req,
                } => {
                    let _ = size;
                    rs.requests[req.idx].state = RState::RecvAwaitData { src: usrc, tag };
                    let fabric = w.fabric.clone();
                    let wire = Box::new(Wire::Cts {
                        sender_req,
                        recver: self.rank,
                        recver_req: req.idx,
                    });
                    let hdr = costs.header_bytes;
                    drop(w);
                    Fabric::send(&fabric, sim, self.rank, usrc, hdr, Payload::Any(wire), None);
                }
            },
            None => {
                let tok = rs.posted.post(req.idx, src, tag);
                rs.requests[req.idx].state = RState::RecvPosted { tok };
            }
        }
        cost
    }

    /// Drain the incoming hardware queue: match eager messages and RTSs,
    /// react to CTSs (send DATA) and DATA (complete receives). Returns the
    /// CPU cost. This is the *only* place the library makes progress.
    fn drain_incoming(&self, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            let (wire, sent_at) = {
                let mut w = self.world.borrow_mut();
                match w.ranks[self.rank].incoming.pop_front() {
                    Some(m) => m,
                    None => break,
                }
            };
            cost += self.process_wire(sim, &wire, sent_at);
        }
        cost
    }

    fn process_wire(&self, sim: &mut Sim, wire: &Wire, sent_at: SimTime) -> SimTime {
        let mut w = self.world.borrow_mut();
        let costs = w.costs.clone();
        let mut cost = costs.progress_per_msg;
        match wire {
            Wire::Eager {
                src,
                tag,
                size,
                data,
            } => {
                let rs = &mut w.ranks[self.rank];
                let out = rs.posted.match_arrival(*src, *tag);
                cost += costs.match_per_item * out.scanned as u64;
                let data = data.borrow_mut().take();
                match out.found {
                    Some(ridx) => {
                        cost += costs.copy_cost(*size);
                        rs.requests[ridx].state = RState::Complete(Status {
                            src: *src,
                            tag: *tag,
                            size: *size,
                            data,
                            sent_at,
                        });
                    }
                    None => {
                        rs.unexpected.push(
                            *src,
                            *tag,
                            Unexpected::Eager {
                                src: *src,
                                tag: *tag,
                                size: *size,
                                data,
                                sent_at,
                            },
                        );
                    }
                }
            }
            Wire::Rts {
                src,
                tag,
                size,
                sender_req,
            } => {
                let rs = &mut w.ranks[self.rank];
                let out = rs.posted.match_arrival(*src, *tag);
                cost += costs.match_per_item * out.scanned as u64;
                match out.found {
                    Some(ridx) => {
                        rs.requests[ridx].state = RState::RecvAwaitData {
                            src: *src,
                            tag: *tag,
                        };
                        let fabric = w.fabric.clone();
                        let wire = Box::new(Wire::Cts {
                            sender_req: *sender_req,
                            recver: self.rank,
                            recver_req: ridx,
                        });
                        let hdr = costs.header_bytes;
                        drop(w);
                        Fabric::send(&fabric, sim, self.rank, *src, hdr, Payload::Any(wire), None);
                    }
                    None => {
                        rs.unexpected.push(
                            *src,
                            *tag,
                            Unexpected::Rts {
                                src: *src,
                                tag: *tag,
                                size: *size,
                                sender_req: *sender_req,
                            },
                        );
                    }
                }
            }
            Wire::Cts {
                sender_req,
                recver,
                recver_req,
            } => {
                // We are the sender: ship DATA, zero-copy (RDMA write).
                let (size, data) = {
                    let r = &mut w.ranks[self.rank].requests[*sender_req];
                    match &mut r.state {
                        RState::SendInFlight { size, data, .. } => (*size, data.take()),
                        other => panic!("CTS for request in state {other:?}"),
                    }
                };
                let fabric = w.fabric.clone();
                let hdr = w.costs.header_bytes;
                let wire = Box::new(Wire::Data {
                    recver_req: *recver_req,
                    size,
                    data: RefCell::new(data),
                });
                let world = self.world.clone();
                let rank = self.rank;
                let sreq = *sender_req;
                drop(w);
                // Local completion when the last chunk leaves our NIC.
                // (One Rc + two word-sized captures: stays inline in the
                // fabric's `EventFn` tx-done slot, no allocation.)
                Fabric::send(
                    &fabric,
                    sim,
                    rank,
                    *recver,
                    size + hdr,
                    Payload::Any(wire),
                    Some(EventFn::new(move |sim| {
                        let waker = {
                            let mut w = world.borrow_mut();
                            let r = &mut w.ranks[rank].requests[sreq];
                            if let RState::SendInFlight { tag, size, .. } = r.state {
                                r.state = RState::Complete(Status {
                                    src: rank,
                                    tag,
                                    size,
                                    data: Frames::Empty,
                                    sent_at: SimTime::ZERO,
                                });
                            } else {
                                panic!("DATA tx-done for request in unexpected state");
                            }
                            w.ranks[rank].waker.clone()
                        };
                        if let Some(waker) = waker {
                            waker(sim);
                        }
                    })),
                );
            }
            Wire::Data {
                recver_req,
                size,
                data,
            } => {
                let r = &mut w.ranks[self.rank].requests[*recver_req];
                match r.state {
                    RState::RecvAwaitData { src, tag, .. } => {
                        r.state = RState::Complete(Status {
                            src,
                            tag,
                            size: *size,
                            data: data.borrow_mut().take(),
                            sent_at,
                        });
                    }
                    ref other => panic!("DATA for request in state {other:?}"),
                }
            }
        }
        cost
    }

    /// Test a single request for completion, making library progress.
    pub fn test(&self, sim: &mut Sim, req: ReqId) -> (Option<Status>, SimTime) {
        self.check(req);
        let mut cost = self.world.borrow().costs.call_base;
        cost += self.drain_incoming(sim);
        let mut w = self.world.borrow_mut();
        let r = &mut w.ranks[self.rank].requests[req.idx];
        if matches!(r.state, RState::Complete(_)) {
            let state = std::mem::replace(&mut r.state, RState::Inactive);
            let RState::Complete(status) = state else {
                unreachable!()
            };
            let persistent = r.persistent.is_some();
            drop(w);
            if !persistent {
                self.release(req);
            }
            (Some(status), cost)
        } else {
            (None, cost)
        }
    }

    /// `MPI_Testsome` over the caller's request array: makes progress, then
    /// reports every completed request. Completed persistent requests go
    /// inactive (re-arm with [`Mpi::start`]); completed non-persistent
    /// requests are freed.
    pub fn testsome(&self, sim: &mut Sim, reqs: &[ReqId]) -> (Vec<Completion>, SimTime) {
        let costs = self.world.borrow().costs.clone();
        let mut cost = costs.call_base + costs.testsome_per_req * reqs.len() as u64;
        cost += self.drain_incoming(sim);
        let mut done = Vec::new();
        for &req in reqs {
            self.check(req);
            let mut w = self.world.borrow_mut();
            let r = &mut w.ranks[self.rank].requests[req.idx];
            if matches!(r.state, RState::Complete(_)) {
                let state = std::mem::replace(&mut r.state, RState::Inactive);
                let RState::Complete(status) = state else {
                    unreachable!()
                };
                let persistent = r.persistent.is_some();
                drop(w);
                if !persistent {
                    self.release(req);
                }
                done.push(Completion { req, status });
            }
        }
        (done, cost)
    }

    /// `MPI_Iprobe`: make progress, then report (without consuming) the
    /// oldest unexpected message matching `(src, tag)`. The paper's §5.2
    /// contrasts LCI's dynamic receive buffers with exactly this
    /// probe-allocate-receive pattern.
    pub fn iprobe(&self, sim: &mut Sim, src: SrcSel, tag: Tag) -> (Option<Status>, SimTime) {
        let mut cost = self.world.borrow().costs.call_base;
        cost += self.drain_incoming(sim);
        let mut w = self.world.borrow_mut();
        let costs = w.costs.clone();
        let rs = &mut w.ranks[self.rank];
        let (found, scanned) = rs.unexpected.probe(src, tag);
        cost += costs.match_per_item * scanned as u64;
        if let Some(u) = found {
            let (usrc, utag, size) = match u {
                Unexpected::Eager { src, tag, size, .. }
                | Unexpected::Rts { src, tag, size, .. } => (*src, *tag, *size),
            };
            return (
                Some(Status {
                    src: usrc,
                    tag: utag,
                    size,
                    data: Frames::Empty,
                    sent_at: SimTime::ZERO,
                }),
                cost,
            );
        }
        (None, cost)
    }

    /// Cancel-and-free a posted receive or inactive persistent request.
    /// Cancellation is O(1): the posted entry is tombstoned through its
    /// generation-tagged table token instead of filtering the whole queue.
    pub fn release(&self, req: ReqId) {
        self.check(req);
        let mut w = self.world.borrow_mut();
        let rs = &mut w.ranks[self.rank];
        if let RState::RecvPosted { tok } = rs.requests[req.idx].state {
            rs.posted.cancel(tok);
        }
        rs.requests[req.idx].state = RState::Inactive;
        rs.requests[req.idx].persistent = None;
        rs.requests[req.idx].gen = rs.requests[req.idx].gen.wrapping_add(1);
        rs.free.push(req.idx);
    }

    /// Register a waker invoked whenever this rank has something new to
    /// poll: a wire message arrived or a local send completed. Used by
    /// simulated polling threads to avoid busy-waiting in virtual time.
    pub fn set_waker(&self, waker: impl Fn(&mut Sim) + 'static) {
        self.world.borrow_mut().ranks[self.rank].waker = Some(Rc::new(waker));
    }

    /// Depth of the unexpected-message table (diagnostics).
    pub fn unexpected_depth(&self) -> usize {
        self.world.borrow().ranks[self.rank].unexpected.len()
    }

    /// Depth of the incoming hardware queue (diagnostics).
    pub fn incoming_depth(&self) -> usize {
        self.world.borrow().ranks[self.rank].incoming.len()
    }
}

impl std::fmt::Debug for RState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RState::Inactive => write!(f, "Inactive"),
            RState::SendInFlight { .. } => write!(f, "SendInFlight"),
            RState::Complete(_) => write!(f, "Complete"),
            RState::RecvPosted { .. } => write!(f, "RecvPosted"),
            RState::RecvAwaitData { .. } => write!(f, "RecvAwaitData"),
        }
    }
}
