//! Software-overhead cost model for MiniMPI calls.
//!
//! Values are calibrated to published Open MPI/UCX overheads on HDR
//! InfiniBand-class hardware: sub-microsecond call overheads, tens of
//! nanoseconds per matching-queue element, memcpy at ~12 GB/s.

use amt_simnet::SimTime;

/// Per-call CPU cost parameters of the MPI-subset library.
#[derive(Debug, Clone)]
pub struct MpiCosts {
    /// Base cost of entering any MPI call.
    pub call_base: SimTime,
    /// Additional cost to issue an eager send (descriptor + header build).
    pub send_eager_base: SimTime,
    /// Additional cost to issue a rendezvous send (RTS build + registration
    /// cache lookup).
    pub send_rndv_base: SimTime,
    /// Cost of posting/starting a receive.
    pub recv_post_base: SimTime,
    /// Per-element cost of scanning a matching queue (posted or unexpected).
    pub match_per_item: SimTime,
    /// Base cost of handling one incoming wire message during progress.
    pub progress_per_msg: SimTime,
    /// Per-request cost of a `testsome` scan over the caller's request array.
    pub testsome_per_req: SimTime,
    /// Copy cost per byte (eager sends copy into library buffers; eager
    /// receives copy out), in nanoseconds per byte (~12 GB/s memcpy).
    pub copy_ns_per_byte: f64,
    /// Messages at or below this size use the eager protocol.
    pub eager_threshold: usize,
    /// Wire header bytes added to every message.
    pub header_bytes: usize,
}

impl Default for MpiCosts {
    fn default() -> Self {
        MpiCosts {
            call_base: SimTime::from_ns(200),
            send_eager_base: SimTime::from_ns(1500),
            send_rndv_base: SimTime::from_ns(1700),
            recv_post_base: SimTime::from_ns(800),
            match_per_item: SimTime::from_ns(60),
            progress_per_msg: SimTime::from_ns(600),
            testsome_per_req: SimTime::from_ns(60),
            copy_ns_per_byte: 0.085,
            eager_threshold: 16 * 1024,
            header_bytes: 64,
        }
    }
}

impl MpiCosts {
    /// Cost of copying `bytes` through the CPU.
    #[inline]
    pub fn copy_cost(&self, bytes: usize) -> SimTime {
        SimTime::from_ns_f64(self.copy_ns_per_byte * bytes as f64)
    }

    /// Whether a payload of `bytes` uses the eager protocol.
    #[inline]
    pub fn is_eager(&self, bytes: usize) -> bool {
        bytes <= self.eager_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales() {
        let c = MpiCosts::default();
        assert_eq!(c.copy_cost(0), SimTime::ZERO);
        let one_mb = c.copy_cost(1_000_000);
        assert!(one_mb > SimTime::from_us(50) && one_mb < SimTime::from_us(150));
    }

    #[test]
    fn eager_threshold_boundary() {
        let c = MpiCosts::default();
        assert!(c.is_eager(16 * 1024));
        assert!(!c.is_eager(16 * 1024 + 1));
    }
}
