//! O(1)-average tag matching with exact cost parity to the linear scan.
//!
//! The seed implementation kept posted receives and unexpected messages in
//! plain `VecDeque`s and charged [`MpiCosts::match_per_item`] for every
//! entry a linear scan examined before the first match (or for the whole
//! queue on a miss). That linear *host* work became the simulator's
//! bottleneck at deep queues, but the per-item *virtual* cost is a modelled
//! property we must preserve bit-for-bit.
//!
//! This module replaces the scans with hash-bucketed match tables:
//!
//! * Entries live in a slab; each bucket is a `VecDeque` of slab slots in
//!   arrival order, keyed by `(src, tag)` with a wildcard side-list per
//!   `tag` ([`PostTable`]), or doubly indexed by `(src, tag)` *and* `tag`
//!   ([`UnexpTable`], so both specific and `ANY_SOURCE` receives match in
//!   O(1)).
//! * Every entry carries a global **arrival sequence number**. The linear
//!   scan's "first match in queue order" is exactly "minimum sequence
//!   number among the candidate bucket fronts" — one or two deque-front
//!   peeks, never a scan.
//! * The number of entries the reference scan *would* have examined is the
//!   matched entry's rank among all live entries, answered in O(log n) by
//!   [`SeqRank`], a deterministic treap over live sequence numbers keyed by
//!   `splitmix64(seq)` priorities. Callers multiply that by
//!   `match_per_item`, reproducing the seed's virtual time exactly.
//! * Removal never shifts buckets: cancelled entries are tombstoned and
//!   collected lazily when they surface at a bucket front, which is what
//!   makes request cancellation O(1) (see [`PostTable::cancel`]).
//!
//! The seed matcher is retained verbatim as [`RefPostTable`] /
//! [`RefUnexpTable`] (the same pattern as `amt_simnet::reference::RefSim`)
//! and proven order- and cost-equivalent by a randomized proptest in
//! `tests/proptests.rs`.
//!
//! [`MpiCosts::match_per_item`]: crate::MpiCosts

use std::collections::{HashMap, VecDeque};

use amt_netmodel::NodeId;

use crate::world::{SrcSel, Tag};

/// Result of a match attempt: the payload of the matched entry (if any) and
/// the number of queue entries the reference linear scan would have
/// examined — the quantity the caller charges virtual time for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOutcome<T> {
    /// Matched payload, `None` on a miss.
    pub found: Option<T>,
    /// Entries the seed's linear scan would have examined: arrival-order
    /// rank of the match (1-based), or the whole live queue on a miss.
    pub scanned: usize,
}

const NIL: u32 = u32::MAX;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Clone, Copy)]
struct TreapNode {
    left: u32,
    right: u32,
    size: u32,
    prio: u64,
    seq: u64,
}

/// Order statistics over the set of *live* arrival sequence numbers: a
/// deterministic treap (priorities are `splitmix64` of the key, so the
/// shape — and therefore host behaviour — is identical on every run and
/// independent of hasher state). Memory is proportional to live entries,
/// not to the sequence-number horizon.
pub struct SeqRank {
    nodes: Vec<TreapNode>,
    free: Vec<u32>,
    root: u32,
}

impl Default for SeqRank {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqRank {
    /// An empty set.
    pub fn new() -> Self {
        SeqRank {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    fn size_of(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    fn pull(&mut self, n: u32) {
        let (l, r) = {
            let nd = &self.nodes[n as usize];
            (nd.left, nd.right)
        };
        self.nodes[n as usize].size = 1 + self.size_of(l) + self.size_of(r);
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let m = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Splits into (`seq < key`, `seq >= key`).
    fn split(&mut self, n: u32, key: u64) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.nodes[n as usize].seq < key {
            let (l, r) = self.split(self.nodes[n as usize].right, key);
            self.nodes[n as usize].right = l;
            self.pull(n);
            (n, r)
        } else {
            let (l, r) = self.split(self.nodes[n as usize].left, key);
            self.nodes[n as usize].left = r;
            self.pull(n);
            (l, n)
        }
    }

    /// Inserts a (unique) sequence number.
    pub fn insert(&mut self, seq: u64) {
        let node = TreapNode {
            left: NIL,
            right: NIL,
            size: 1,
            prio: splitmix64(seq),
            seq,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        let (l, r) = self.split(self.root, seq);
        let lm = self.merge(l, idx);
        self.root = self.merge(lm, r);
    }

    /// Removes a present sequence number.
    pub fn remove(&mut self, seq: u64) {
        let (l, rest) = self.split(self.root, seq);
        let (mid, r) = self.split(rest, seq + 1);
        debug_assert!(mid != NIL && self.size_of(mid) == 1, "seq not present");
        self.free.push(mid);
        self.root = self.merge(l, r);
    }

    /// Number of live entries with sequence number strictly below `seq`.
    pub fn rank(&self, seq: u64) -> usize {
        let mut n = self.root;
        let mut acc = 0usize;
        while n != NIL {
            let nd = &self.nodes[n as usize];
            if seq <= nd.seq {
                n = nd.left;
            } else {
                acc += self.size_of(nd.left) as usize + 1;
                n = nd.right;
            }
        }
        acc
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.size_of(self.root) as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }
}

/// Generation-tagged handle to a posted receive, for O(1) cancellation.
/// Stale tokens (already matched or cancelled) are detected and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostToken {
    slot: u32,
    gen: u32,
}

impl PostToken {
    /// Placeholder token that never matches a live entry.
    pub const DANGLING: PostToken = PostToken {
        slot: u32::MAX,
        gen: u32::MAX,
    };
}

struct PostEntry {
    gen: u32,
    live: bool,
    seq: u64,
    req: usize,
    /// Which index holds this entry: `wildcard[tag]` or `specific[(src, tag)]`.
    wild: bool,
}

/// Hash-bucketed posted-receive table.
///
/// Arrivals carry a concrete `(src, tag)`, while posted receives may use
/// `ANY_SOURCE`; each entry therefore lives in exactly one bucket —
/// `specific[(src, tag)]` or the `wildcard[tag]` side-list — and a match
/// considers both bucket fronts, taking the lower sequence number.
#[derive(Default)]
pub struct PostTable {
    entries: Vec<PostEntry>,
    free: Vec<u32>,
    specific: HashMap<(NodeId, Tag), VecDeque<u32>>,
    wildcard: HashMap<Tag, VecDeque<u32>>,
    order: SeqRank,
    next_seq: u64,
    comparisons: u64,
    matches: u64,
}

/// Pops tombstoned slots off a bucket front, freeing them, and returns the
/// first live slot (left in place).
fn post_front_live(
    entries: &[PostEntry],
    free: &mut Vec<u32>,
    q: &mut VecDeque<u32>,
    comparisons: &mut u64,
) -> Option<u32> {
    while let Some(&slot) = q.front() {
        *comparisons += 1;
        if entries[slot as usize].live {
            return Some(slot);
        }
        q.pop_front();
        free.push(slot);
    }
    None
}

impl PostTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, seq: u64, req: usize, wild: bool) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            e.gen = e.gen.wrapping_add(1);
            e.live = true;
            e.seq = seq;
            e.req = req;
            e.wild = wild;
            (slot, e.gen)
        } else {
            self.entries.push(PostEntry {
                gen: 0,
                live: true,
                seq,
                req,
                wild,
            });
            ((self.entries.len() - 1) as u32, 0)
        }
    }

    /// Posts a receive for request `req`; the token cancels it in O(1).
    pub fn post(&mut self, req: usize, src: SrcSel, tag: Tag) -> PostToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        let wild = matches!(src, SrcSel::Any);
        let (slot, gen) = self.alloc(seq, req, wild);
        match src {
            SrcSel::Any => self.wildcard.entry(tag).or_default().push_back(slot),
            SrcSel::Rank(r) => self.specific.entry((r, tag)).or_default().push_back(slot),
        }
        self.order.insert(seq);
        PostToken { slot, gen }
    }

    /// Matches an arrival against the oldest compatible posted receive,
    /// consuming it. `scanned` reports the reference scan's examined count.
    pub fn match_arrival(&mut self, src: NodeId, tag: Tag) -> MatchOutcome<usize> {
        self.matches += 1;
        self.comparisons += 2; // two bucket lookups
        let spec = match self.specific.get_mut(&(src, tag)) {
            Some(q) => post_front_live(&self.entries, &mut self.free, q, &mut self.comparisons)
                .map(|slot| (self.entries[slot as usize].seq, slot)),
            None => None,
        };
        let wild = match self.wildcard.get_mut(&tag) {
            Some(q) => post_front_live(&self.entries, &mut self.free, q, &mut self.comparisons)
                .map(|slot| (self.entries[slot as usize].seq, slot)),
            None => None,
        };
        let best = match (spec, wild) {
            (Some(s), Some(w)) => Some(if s.0 < w.0 { s } else { w }),
            (s, w) => s.or(w),
        };
        match best {
            Some((seq, slot)) => {
                let wild = self.entries[slot as usize].wild;
                let q = if wild {
                    self.wildcard.get_mut(&tag).expect("bucket exists")
                } else {
                    self.specific.get_mut(&(src, tag)).expect("bucket exists")
                };
                q.pop_front();
                self.free.push(slot);
                let e = &mut self.entries[slot as usize];
                e.live = false;
                let req = e.req;
                let scanned = self.order.rank(seq) + 1;
                self.order.remove(seq);
                MatchOutcome {
                    found: Some(req),
                    scanned,
                }
            }
            None => MatchOutcome {
                found: None,
                scanned: self.order.len(),
            },
        }
    }

    /// Cancels a posted receive in O(1) (amortized: the slot is tombstoned
    /// and collected when it reaches its bucket front). Returns whether the
    /// token was live.
    pub fn cancel(&mut self, tok: PostToken) -> bool {
        let Some(e) = self.entries.get_mut(tok.slot as usize) else {
            return false;
        };
        if e.gen != tok.gen || !e.live {
            return false;
        }
        e.live = false;
        let seq = e.seq;
        self.order.remove(seq);
        true
    }

    /// Number of live posted receives.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no receives are posted.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total bucket-front examinations performed (the hash matcher's unit
    /// of matching work — compare with [`RefPostTable::comparisons`]).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of match attempts performed.
    pub fn match_calls(&self) -> u64 {
        self.matches
    }
}

struct UnexpEntry<T> {
    seq: u64,
    live: bool,
    /// Index references still outstanding (the entry sits in two buckets).
    refs: u8,
    item: Option<T>,
}

/// Hash-bucketed unexpected-message table.
///
/// Arrivals carry a concrete `(src, tag)` but receives may probe with
/// `ANY_SOURCE`, so every entry is indexed twice: under `(src, tag)` and
/// under `tag` alone. A slot is reclaimed once both bucket references have
/// been popped.
#[derive(Default)]
pub struct UnexpTable<T> {
    entries: Vec<UnexpEntry<T>>,
    free: Vec<u32>,
    by_src_tag: HashMap<(NodeId, Tag), VecDeque<u32>>,
    by_tag: HashMap<Tag, VecDeque<u32>>,
    order: SeqRank,
    next_seq: u64,
    comparisons: u64,
    matches: u64,
}

/// Pops dead slots off a bucket front (dropping one reference each, freeing
/// at zero) and returns the first live slot, left in place.
fn unexp_front_live<T>(
    entries: &mut [UnexpEntry<T>],
    free: &mut Vec<u32>,
    q: &mut VecDeque<u32>,
    comparisons: &mut u64,
) -> Option<u32> {
    while let Some(&slot) = q.front() {
        *comparisons += 1;
        let e = &mut entries[slot as usize];
        if e.live {
            return Some(slot);
        }
        q.pop_front();
        e.refs -= 1;
        if e.refs == 0 {
            free.push(slot);
        }
    }
    None
}

impl<T> UnexpTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        UnexpTable {
            entries: Vec::new(),
            free: Vec::new(),
            by_src_tag: HashMap::new(),
            by_tag: HashMap::new(),
            order: SeqRank::new(),
            next_seq: 0,
            comparisons: 0,
            matches: 0,
        }
    }

    /// Appends an arrival (arrival order = insertion order).
    pub fn push(&mut self, src: NodeId, tag: Tag, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            e.seq = seq;
            e.live = true;
            e.refs = 2;
            e.item = Some(item);
            slot
        } else {
            self.entries.push(UnexpEntry {
                seq,
                live: true,
                refs: 2,
                item: Some(item),
            });
            (self.entries.len() - 1) as u32
        };
        self.by_src_tag
            .entry((src, tag))
            .or_default()
            .push_back(slot);
        self.by_tag.entry(tag).or_default().push_back(slot);
        self.order.insert(seq);
    }

    fn front_for(&mut self, src: SrcSel, tag: Tag) -> Option<u32> {
        self.comparisons += 1; // one bucket lookup
        let q = match src {
            SrcSel::Rank(r) => self.by_src_tag.get_mut(&(r, tag)),
            SrcSel::Any => self.by_tag.get_mut(&tag),
        }?;
        unexp_front_live(&mut self.entries, &mut self.free, q, &mut self.comparisons)
    }

    /// Takes the oldest entry matching the selector, reporting the
    /// reference scan's examined count.
    pub fn match_take(&mut self, src: SrcSel, tag: Tag) -> MatchOutcome<T> {
        self.matches += 1;
        match self.front_for(src, tag) {
            Some(slot) => {
                let q = match src {
                    SrcSel::Rank(r) => self.by_src_tag.get_mut(&(r, tag)).expect("bucket exists"),
                    SrcSel::Any => self.by_tag.get_mut(&tag).expect("bucket exists"),
                };
                q.pop_front();
                let e = &mut self.entries[slot as usize];
                e.live = false;
                e.refs -= 1;
                if e.refs == 0 {
                    self.free.push(slot);
                }
                let seq = e.seq;
                let item = e.item.take().expect("live entry has item");
                let scanned = self.order.rank(seq) + 1;
                self.order.remove(seq);
                MatchOutcome {
                    found: Some(item),
                    scanned,
                }
            }
            None => MatchOutcome {
                found: None,
                scanned: self.order.len(),
            },
        }
    }

    /// Peeks at the oldest entry matching the selector without consuming
    /// it. Returns the entry and the reference scan's examined count.
    pub fn probe(&mut self, src: SrcSel, tag: Tag) -> (Option<&T>, usize) {
        self.matches += 1;
        match self.front_for(src, tag) {
            Some(slot) => {
                let scanned = self.order.rank(self.entries[slot as usize].seq) + 1;
                (
                    Some(
                        self.entries[slot as usize]
                            .item
                            .as_ref()
                            .expect("live entry has item"),
                    ),
                    scanned,
                )
            }
            None => (None, self.order.len()),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total bucket-front examinations performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of match/probe attempts performed.
    pub fn match_calls(&self) -> u64 {
        self.matches
    }
}

/// The seed's posted-receive matcher, verbatim: a `VecDeque` scanned
/// linearly in post order. Kept as the reference for equivalence tests and
/// the `BENCH_comm.json` matcher-scaling columns.
#[derive(Default)]
pub struct RefPostTable {
    q: VecDeque<(u64, usize, SrcSel, Tag)>,
    next_uid: u64,
    comparisons: u64,
    matches: u64,
}

/// Token for [`RefPostTable::cancel`] (cancellation is O(n) here — that is
/// the point of the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefPostToken {
    uid: u64,
}

impl RefPostTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a receive (appends, like the seed's `posted.push_back`).
    pub fn post(&mut self, req: usize, src: SrcSel, tag: Tag) -> RefPostToken {
        let uid = self.next_uid;
        self.next_uid += 1;
        self.q.push_back((uid, req, src, tag));
        RefPostToken { uid }
    }

    /// The seed's linear scan over posted receives.
    pub fn match_arrival(&mut self, src: NodeId, tag: Tag) -> MatchOutcome<usize> {
        self.matches += 1;
        let mut found = None;
        let mut scanned = 0usize;
        for (pos, &(_, req, psrc, ptag)) in self.q.iter().enumerate() {
            scanned += 1;
            self.comparisons += 1;
            if ptag == tag && psrc.matches(src) {
                found = Some((pos, req));
                break;
            }
        }
        match found {
            Some((pos, req)) => {
                self.q.remove(pos);
                MatchOutcome {
                    found: Some(req),
                    scanned,
                }
            }
            None => MatchOutcome {
                found: None,
                scanned,
            },
        }
    }

    /// The seed's cancellation: `retain` over the whole queue.
    pub fn cancel(&mut self, tok: RefPostToken) -> bool {
        let before = self.q.len();
        self.comparisons += before as u64;
        self.q.retain(|&(uid, _, _, _)| uid != tok.uid);
        self.q.len() != before
    }

    /// Number of posted receives.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no receives are posted.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Entries examined by linear scans so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of match attempts performed.
    pub fn match_calls(&self) -> u64 {
        self.matches
    }
}

/// The seed's unexpected-message queue, verbatim.
#[derive(Default)]
pub struct RefUnexpTable<T> {
    q: VecDeque<(NodeId, Tag, T)>,
    comparisons: u64,
    matches: u64,
}

impl<T> RefUnexpTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        RefUnexpTable {
            q: VecDeque::new(),
            comparisons: 0,
            matches: 0,
        }
    }

    /// Appends an arrival.
    pub fn push(&mut self, src: NodeId, tag: Tag, item: T) {
        self.q.push_back((src, tag, item));
    }

    /// The seed's linear scan-and-remove.
    pub fn match_take(&mut self, src: SrcSel, tag: Tag) -> MatchOutcome<T> {
        self.matches += 1;
        let mut found = None;
        let mut scanned = 0usize;
        for (pos, (usrc, utag, _)) in self.q.iter().enumerate() {
            scanned += 1;
            self.comparisons += 1;
            if *utag == tag && src.matches(*usrc) {
                found = Some(pos);
                break;
            }
        }
        match found {
            Some(pos) => {
                let (_, _, item) = self.q.remove(pos).expect("scanned position");
                MatchOutcome {
                    found: Some(item),
                    scanned,
                }
            }
            None => MatchOutcome {
                found: None,
                scanned,
            },
        }
    }

    /// The seed's linear probe (no removal).
    pub fn probe(&mut self, src: SrcSel, tag: Tag) -> (Option<&T>, usize) {
        self.matches += 1;
        let mut scanned = 0usize;
        for (usrc, utag, item) in self.q.iter() {
            scanned += 1;
            self.comparisons += 1;
            if *utag == tag && src.matches(*usrc) {
                return (Some(item), scanned);
            }
        }
        (None, scanned)
    }

    /// Number of queued arrivals.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Entries examined by linear scans so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of match/probe attempts performed.
    pub fn match_calls(&self) -> u64 {
        self.matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqrank_tracks_order_statistics() {
        let mut s = SeqRank::new();
        for seq in [5u64, 1, 9, 3, 7] {
            s.insert(seq);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.rank(1), 0);
        assert_eq!(s.rank(5), 2);
        assert_eq!(s.rank(10), 5);
        s.remove(3);
        assert_eq!(s.rank(5), 1);
        assert_eq!(s.len(), 4);
        s.remove(1);
        s.remove(9);
        s.remove(5);
        s.remove(7);
        assert!(s.is_empty());
    }

    #[test]
    fn posted_wildcard_orders_by_arrival_seq() {
        let mut t = PostTable::new();
        let mut r = RefPostTable::new();
        // Interleave wildcard and specific posts on one tag.
        t.post(0, SrcSel::Any, 7);
        r.post(0, SrcSel::Any, 7);
        t.post(1, SrcSel::Rank(2), 7);
        r.post(1, SrcSel::Rank(2), 7);
        t.post(2, SrcSel::Rank(3), 7);
        r.post(2, SrcSel::Rank(3), 7);
        t.post(3, SrcSel::Any, 7);
        r.post(3, SrcSel::Any, 7);
        // Arrival from rank 3: the wildcard posted *earlier* must win.
        let (a, b) = (t.match_arrival(3, 7), r.match_arrival(3, 7));
        assert_eq!(a, b);
        assert_eq!(a.found, Some(0));
        assert_eq!(a.scanned, 1);
        // Next arrival from rank 3: now the specific receive is oldest.
        let (a, b) = (t.match_arrival(3, 7), r.match_arrival(3, 7));
        assert_eq!(a, b);
        assert_eq!(a.found, Some(2));
        assert_eq!(a.scanned, 2, "skipped the rank-2 receive");
        // Arrival nothing matches: full live queue scanned.
        let (a, b) = (t.match_arrival(9, 8), r.match_arrival(9, 8));
        assert_eq!(a, b);
        assert_eq!(
            a,
            MatchOutcome {
                found: None,
                scanned: 2
            }
        );
    }

    #[test]
    fn cancel_is_exact_and_token_checked() {
        let mut t = PostTable::new();
        let tok0 = t.post(0, SrcSel::Rank(1), 4);
        let tok1 = t.post(1, SrcSel::Any, 4);
        assert!(t.cancel(tok0));
        assert!(!t.cancel(tok0), "double cancel detected");
        assert_eq!(t.len(), 1);
        // The arrival skips the tombstone and matches the wildcard.
        let m = t.match_arrival(1, 4);
        assert_eq!(m.found, Some(1));
        assert_eq!(m.scanned, 1, "cancelled entry not counted");
        assert!(!t.cancel(tok1), "already matched");
        assert!(t.is_empty());
    }

    #[test]
    fn unexpected_dual_index_agrees_with_reference() {
        let mut t = UnexpTable::new();
        let mut r = RefUnexpTable::new();
        for (src, tag, item) in [(1, 10, 100), (2, 10, 200), (1, 11, 300), (3, 10, 400)] {
            t.push(src, tag, item);
            r.push(src, tag, item);
        }
        let (pa, sa) = t.probe(SrcSel::Any, 10);
        let (pb, sb) = r.probe(SrcSel::Any, 10);
        assert_eq!((pa.copied(), sa), (pb.copied(), sb));
        assert_eq!((pa.copied(), sa), (Some(100), 1));

        let (a, b) = (
            t.match_take(SrcSel::Rank(2), 10),
            r.match_take(SrcSel::Rank(2), 10),
        );
        assert_eq!(a, b);
        assert_eq!((a.found, a.scanned), (Some(200), 2));

        let (a, b) = (t.match_take(SrcSel::Any, 10), r.match_take(SrcSel::Any, 10));
        assert_eq!(a, b);
        assert_eq!((a.found, a.scanned), (Some(100), 1));

        // Taking via the tag index leaves a tombstone in the (src, tag)
        // index; a later specific take must skip it silently.
        let (a, b) = (
            t.match_take(SrcSel::Rank(1), 11),
            r.match_take(SrcSel::Rank(1), 11),
        );
        assert_eq!(a, b);
        assert_eq!((a.found, a.scanned), (Some(300), 1));

        let (a, b) = (t.match_take(SrcSel::Any, 10), r.match_take(SrcSel::Any, 10));
        assert_eq!(a, b);
        assert_eq!((a.found, a.scanned), (Some(400), 1));
        assert!(t.is_empty() && r.is_empty());
    }

    #[test]
    fn hash_comparisons_stay_flat_as_queue_grows() {
        // The acceptance criterion in miniature: load N receives on
        // distinct (src, tag) pairs, then match each; hash comparisons per
        // match stay O(1) while the reference scan's grow with N.
        let run = |n: u64| -> (f64, f64) {
            let mut t = PostTable::new();
            let mut r = RefPostTable::new();
            for i in 0..n {
                t.post(i as usize, SrcSel::Rank(i as usize), i);
                r.post(i as usize, SrcSel::Rank(i as usize), i);
            }
            for i in 0..n {
                // Match in reverse post order: worst case for the scan.
                let src = (n - 1 - i) as usize;
                let a = t.match_arrival(src, n - 1 - i);
                let b = r.match_arrival(src, n - 1 - i);
                assert_eq!(a, b);
            }
            (
                t.comparisons() as f64 / n as f64,
                r.comparisons() as f64 / n as f64,
            )
        };
        let (h64, r64) = run(64);
        let (h1024, r1024) = run(1024);
        assert!(
            h1024 <= h64 * 1.5,
            "hash matcher not flat: {h64} -> {h1024}"
        );
        assert!(r1024 > r64 * 8.0, "reference should grow linearly");
    }
}
