//! Randomized property tests for MiniMPI matching semantics, driven by the
//! in-tree deterministic generator (the workspace builds offline, so no
//! external `proptest`).

use amt_minimpi::{Mpi, MpiCosts, MpiWorld, SrcSel};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{DetRng, Sim};
use bytes::{Bytes, Frames};

const CASES: u64 = 32;

fn setup(nodes: usize) -> (Sim, Vec<Mpi>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(nodes));
    let ranks = MpiWorld::create(&fabric, MpiCosts::default());
    (sim, ranks)
}

/// Posting receives before or after the sends arrive must pair the
/// same (src, tag) multisets — matching is order-insensitive at the
/// level of what gets received.
#[test]
fn posted_and_unexpected_matching_agree() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x3a3a_0000 + case);
        let n = rng.gen_usize(1..20);
        let msgs: Vec<(u64, usize)> = (0..n)
            .map(|_| (rng.gen_range(0..4), rng.gen_usize(0..3)))
            .collect();
        let post_first = rng.gen_bool(0.5);

        let (mut sim, ranks) = setup(4);
        let mut reqs = Vec::new();
        let post = |sim: &mut Sim, reqs: &mut Vec<_>| {
            for &(tag, _src) in &msgs {
                let (r, _) = ranks[3].irecv(sim, SrcSel::Any, tag);
                reqs.push(r);
            }
        };
        if post_first {
            post(&mut sim, &mut reqs);
        }
        for (i, &(tag, src)) in msgs.iter().enumerate() {
            ranks[src].send(
                &mut sim,
                3,
                tag,
                8,
                Frames::from(Bytes::from(vec![i as u8; 8])),
            );
        }
        sim.run();
        if !post_first {
            post(&mut sim, &mut reqs);
        }
        // Drive completion.
        let mut done = Vec::new();
        loop {
            let (c, _) = ranks[3].testsome(&mut sim, &reqs);
            for comp in c {
                done.push((comp.status.tag, comp.status.src));
                reqs.retain(|r| *r != comp.req);
            }
            if reqs.is_empty() {
                break;
            }
            if !sim.step() {
                break;
            }
        }
        assert_eq!(
            done.len(),
            msgs.len(),
            "every message must match (case {case})"
        );
        let mut got: Vec<(u64, usize)> = done;
        let mut want: Vec<(u64, usize)> = msgs.iter().map(|&(t, s)| (t, s)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// Payload integrity for arbitrary sizes across the eager/rendezvous
/// boundary.
#[test]
fn payloads_survive_any_size() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x9b9b_0000 + case);
        let size = rng.gen_usize(1..200_000);

        let (mut sim, ranks) = setup(2);
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(0), 1);
        ranks[0].isend(
            &mut sim,
            1,
            1,
            size,
            Frames::from(Bytes::from(data.clone())),
        );
        let status = loop {
            let (st, _) = ranks[1].test(&mut sim, rreq);
            if let Some(st) = st {
                break st;
            }
            let _ = ranks[0].testsome(&mut sim, &[]);
            if !sim.step() {
                panic!("deadlock (case {case})");
            }
        };
        assert_eq!(status.size, size, "case {case}");
        assert_eq!(status.data.to_vec(), data, "case {case}");
    }
}

/// The hash-bucketed matchers and the seed's linear-scan reference matchers
/// must agree *exactly* — same matched entry, same reference-equivalent
/// `scanned` count (the quantity virtual time is charged for), same cancel
/// outcomes — under arbitrary interleavings of posts, arrivals, cancels
/// (including stale double-cancels) and probes, with wildcard receives
/// mixed in.
#[test]
fn hash_and_reference_matchers_are_order_equivalent() {
    use amt_minimpi::matcher::{PostTable, RefPostTable, RefUnexpTable, UnexpTable};

    for case in 0..CASES * 4 {
        let mut rng = DetRng::seed_from_u64(0x9bad_5eed + case);
        let mut hp = PostTable::new();
        let mut rp = RefPostTable::new();
        let mut hu: UnexpTable<u32> = UnexpTable::new();
        let mut ru: RefUnexpTable<u32> = RefUnexpTable::new();
        let mut toks = Vec::new();
        let mut req = 0usize;
        let mut item = 0u32;
        for op in 0..rng.gen_usize(50..400) {
            let src_sel = |rng: &mut DetRng| {
                if rng.gen_bool(0.3) {
                    SrcSel::Any
                } else {
                    SrcSel::Rank(rng.gen_usize(0..4))
                }
            };
            match rng.gen_usize(0..6) {
                0 | 1 => {
                    let (src, tag) = (src_sel(&mut rng), rng.gen_range(0..5));
                    toks.push((hp.post(req, src, tag), rp.post(req, src, tag)));
                    req += 1;
                }
                2 => {
                    let (src, tag) = (rng.gen_usize(0..4), rng.gen_range(0..5));
                    assert_eq!(
                        hp.match_arrival(src, tag),
                        rp.match_arrival(src, tag),
                        "posted-match diverged (case {case}, op {op})"
                    );
                }
                3 => {
                    if !toks.is_empty() {
                        // Possibly stale: the post may already have matched
                        // or been cancelled; both tables must agree anyway.
                        let (ht, rt) = toks[rng.gen_usize(0..toks.len())];
                        assert_eq!(
                            hp.cancel(ht),
                            rp.cancel(rt),
                            "cancel diverged (case {case}, op {op})"
                        );
                    }
                }
                4 => {
                    let (src, tag) = (rng.gen_usize(0..4), rng.gen_range(0..5));
                    hu.push(src, tag, item);
                    ru.push(src, tag, item);
                    item += 1;
                }
                _ => {
                    let (src, tag) = (src_sel(&mut rng), rng.gen_range(0..5));
                    if rng.gen_bool(0.5) {
                        assert_eq!(
                            hu.match_take(src, tag),
                            ru.match_take(src, tag),
                            "unexpected-match diverged (case {case}, op {op})"
                        );
                    } else {
                        let (a, sa) = hu.probe(src, tag);
                        let a = a.copied();
                        let (b, sb) = ru.probe(src, tag);
                        assert_eq!(
                            (a, sa),
                            (b.copied(), sb),
                            "probe diverged (case {case}, op {op})"
                        );
                    }
                }
            }
            assert_eq!(hp.len(), rp.len(), "post-table sizes (case {case})");
            assert_eq!(hu.len(), ru.len(), "unexp-table sizes (case {case})");
        }
    }
}
