//! Property tests for MiniMPI matching semantics.

use amt_minimpi::{Mpi, MpiCosts, MpiWorld, SrcSel};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::Sim;
use bytes::Bytes;
use proptest::prelude::*;

fn setup(nodes: usize) -> (Sim, Vec<Mpi>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(nodes));
    let ranks = MpiWorld::create(&fabric, MpiCosts::default());
    (sim, ranks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Posting receives before or after the sends arrive must pair the
    /// same (src, tag) multisets — matching is order-insensitive at the
    /// level of what gets received.
    #[test]
    fn posted_and_unexpected_matching_agree(
        msgs in prop::collection::vec((0u64..4, 0usize..3), 1..20),
        post_first in any::<bool>(),
    ) {
        let (mut sim, ranks) = setup(4);
        let mut reqs = Vec::new();
        let post = |sim: &mut Sim, reqs: &mut Vec<_>| {
            for &(tag, _src) in &msgs {
                let (r, _) = ranks[3].irecv(sim, SrcSel::Any, tag);
                reqs.push(r);
            }
        };
        if post_first {
            post(&mut sim, &mut reqs);
        }
        for (i, &(tag, src)) in msgs.iter().enumerate() {
            ranks[src].send(&mut sim, 3, tag, 8, Some(Bytes::from(vec![i as u8; 8])));
        }
        sim.run();
        if !post_first {
            post(&mut sim, &mut reqs);
        }
        // Drive completion.
        let mut done = Vec::new();
        loop {
            let (c, _) = ranks[3].testsome(&mut sim, &reqs);
            for comp in c {
                done.push((comp.status.tag, comp.status.src));
                reqs.retain(|r| *r != comp.req);
            }
            if reqs.is_empty() {
                break;
            }
            if !sim.step() {
                break;
            }
        }
        prop_assert_eq!(done.len(), msgs.len(), "every message must match");
        let mut got: Vec<(u64, usize)> = done;
        let mut want: Vec<(u64, usize)> = msgs.iter().map(|&(t, s)| (t, s)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Payload integrity for arbitrary sizes across the eager/rendezvous
    /// boundary.
    #[test]
    fn payloads_survive_any_size(size in 1usize..200_000) {
        let (mut sim, ranks) = setup(2);
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let (rreq, _) = ranks[1].irecv(&mut sim, SrcSel::Rank(0), 1);
        ranks[0].isend(&mut sim, 1, 1, size, Some(Bytes::from(data.clone())));
        let status = loop {
            let (st, _) = ranks[1].test(&mut sim, rreq);
            if let Some(st) = st {
                break st;
            }
            let _ = ranks[0].testsome(&mut sim, &[]);
            if !sim.step() {
                panic!("deadlock");
            }
        };
        prop_assert_eq!(status.size, size);
        prop_assert_eq!(status.data.as_deref(), Some(&data[..]));
    }
}
