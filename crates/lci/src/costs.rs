//! Software-overhead cost model for LCI calls.
//!
//! LCI's per-operation costs are lower than MiniMPI's because the library
//! does strictly less work per message: no wildcard tag matching, no
//! request-array scanning, handler dispatch instead of posted-receive
//! management. The hardware costs (fabric serialization, wire latency) are
//! identical for both libraries — only the software path differs, which is
//! the paper's architectural argument.

use amt_simnet::SimTime;

/// Per-call CPU cost and resource-limit parameters of LCI.
#[derive(Debug, Clone)]
pub struct LciCosts {
    /// Base cost of entering any LCI call.
    pub call_base: SimTime,
    /// Additional cost of an immediate send (inline from user buffer).
    pub sendi_base: SimTime,
    /// Additional cost of a buffered send (packet alloc + header).
    pub sendb_base: SimTime,
    /// Additional cost of a direct send (RTS build).
    pub sendd_base: SimTime,
    /// Cost of posting a direct receive.
    pub recvd_base: SimTime,
    /// Base cost of handling one incoming wire message inside `progress`.
    pub progress_per_msg: SimTime,
    /// Fixed dispatch cost of invoking a completion handler.
    pub handler_base: SimTime,
    /// Copy cost per byte for buffered sends/receives (ns/byte).
    pub copy_ns_per_byte: f64,
    /// Maximum immediate-message payload (a cache line or two).
    pub imm_max: usize,
    /// Maximum buffered-message payload (§5.3.2: ~12 KiB).
    pub buf_max: usize,
    /// Transmit packet pool size (buffered sends).
    pub tx_packets: usize,
    /// Receive packet pool size (dynamic allocation at the target).
    pub rx_packets: usize,
    /// Maximum concurrently posted direct receives (hardware WQEs).
    pub max_posted_recvd: usize,
    /// Maximum outstanding direct sends.
    pub max_outstanding_sendd: usize,
    /// Wire header bytes per message.
    pub header_bytes: usize,
}

impl Default for LciCosts {
    fn default() -> Self {
        LciCosts {
            call_base: SimTime::from_ns(40),
            sendi_base: SimTime::from_ns(60),
            sendb_base: SimTime::from_ns(110),
            sendd_base: SimTime::from_ns(180),
            recvd_base: SimTime::from_ns(90),
            progress_per_msg: SimTime::from_ns(70),
            handler_base: SimTime::from_ns(40),
            copy_ns_per_byte: 0.085,
            imm_max: 64,
            buf_max: 12 * 1024,
            tx_packets: 1024,
            rx_packets: 1024,
            max_posted_recvd: 512,
            max_outstanding_sendd: 512,
            header_bytes: 32,
        }
    }
}

impl LciCosts {
    /// Cost of copying `bytes` through the CPU.
    #[inline]
    pub fn copy_cost(&self, bytes: usize) -> SimTime {
        SimTime::from_ns_f64(self.copy_ns_per_byte * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_cheaper_than_mpi_class_overheads() {
        let c = LciCosts::default();
        // The whole point: sub-200ns op issue for the eager paths.
        assert!(c.call_base + c.sendi_base < SimTime::from_ns(200));
        assert!(c.call_base + c.sendb_base < SimTime::from_ns(200));
        assert!(c.imm_max <= 128);
        assert!(c.buf_max >= 8 * 1024);
    }
}
