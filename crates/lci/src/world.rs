//! LCI state machines: the three protocols, completion machinery,
//! packet-pool back-pressure and explicit progress.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use amt_netmodel::{rx_handler, Fabric, FabricHandle, NodeId, Payload};
use amt_simnet::{EventFn, Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::costs::LciCosts;

/// LCI error codes. The only recoverable one: resources exhausted, progress
/// and resubmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LciError {
    Retry,
}

/// An arriving immediate/buffered message, handed to the endpoint's active
/// message handler inside `progress`. The receive buffer was dynamically
/// allocated from the endpoint packet pool; the consumer must return it with
/// [`Lci::buffer_free`] once done (immediate messages carry no pool buffer).
#[derive(Debug)]
pub struct AmMsg {
    pub src: NodeId,
    pub tag: u64,
    pub size: usize,
    /// Payload frames, delivered zero-copy in submission order (an
    /// aggregated send arrives as one frame per aggregated record batch).
    pub data: Frames,
    /// True if this message consumed a receive packet that must be freed.
    pub owns_packet: bool,
    /// Virtual time at which the sender injected the message (wire-latency
    /// accounting).
    pub sent_at: SimTime,
}

/// A one-sided put delivered to the endpoint's put handler (the §7
/// future-work extension: RDMA write with immediate data, no rendezvous).
#[derive(Debug)]
pub struct PutMsg {
    pub src: NodeId,
    pub rtag: u64,
    pub size: usize,
    pub data: Option<Bytes>,
    /// Immediate data carried with the write (callback descriptor).
    pub cb_data: Bytes,
    /// Virtual time at which the writer injected the data.
    pub sent_at: SimTime,
}

/// A completion record delivered through a handler, completion queue, or
/// synchronizer.
#[derive(Debug, Clone)]
pub struct CompEntry {
    /// Peer rank (destination for send completions, source for receives).
    pub peer: NodeId,
    /// Rendezvous tag of the operation.
    pub rtag: u64,
    pub size: usize,
    /// User context value threaded through the operation.
    pub ctx: u64,
    /// Received payload, for direct-receive completions carrying real data.
    pub data: Option<Bytes>,
    /// For receive completions: when the peer injected the data
    /// ([`SimTime::ZERO`] for local send completions).
    pub sent_at: SimTime,
}

/// Completion-queue handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqId {
    rank: NodeId,
    idx: usize,
}

/// Synchronizer handle (one-shot; re-armed by `sync_test` consuming it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncId {
    rank: NodeId,
    idx: usize,
}

/// Where to deliver a completion.
/// A one-shot completion handler run inside `progress`.
pub type CompHandler = Box<dyn FnOnce(&mut Sim, CompEntry) -> SimTime>;

pub enum OnComplete {
    /// Run inside `progress` on the progressing thread; the returned cost is
    /// charged to that thread.
    Handler(CompHandler),
    /// Push onto a completion queue (polled by any thread).
    Queue(CqId),
    /// Signal a synchronizer.
    Sync(SyncId),
    /// Drop the completion.
    None,
}

struct SendD {
    dst: NodeId,
    rtag: u64,
    size: usize,
    data: Option<Bytes>,
    ctx: u64,
    on_local: Option<OnComplete>,
}

struct RecvD {
    src: NodeId,
    rtag: u64,
    ctx: u64,
    on_complete: Option<OnComplete>,
}

struct RtsInfo {
    src: NodeId,
    sendd_idx: usize,
}

enum LWire {
    Imm {
        src: NodeId,
        tag: u64,
        size: usize,
        data: RefCell<Frames>,
    },
    Buf {
        src: NodeId,
        tag: u64,
        size: usize,
        data: RefCell<Frames>,
    },
    Rts {
        src: NodeId,
        rtag: u64,
        size: usize,
        sendd_idx: usize,
    },
    Rtr {
        sendd_idx: usize,
        recvd_idx: usize,
        recver: NodeId,
    },
    Data {
        recvd_idx: usize,
        src: NodeId,
        rtag: u64,
        size: usize,
        data: RefCell<Option<Bytes>>,
    },
    /// One-sided put: RDMA write with immediate data into a pre-registered
    /// segment (§7 future work). No matching at the target.
    PutD {
        src: NodeId,
        rtag: u64,
        size: usize,
        data: RefCell<Option<Bytes>>,
        cb_data: Bytes,
    },
}

type AmHandler = Rc<dyn Fn(&mut Sim, AmMsg) -> SimTime>;
type PutHandler = Rc<dyn Fn(&mut Sim, PutMsg) -> SimTime>;
type Waker = Rc<dyn Fn(&mut Sim)>;

struct EpState {
    am_handler: Option<AmHandler>,
    put_handler: Option<PutHandler>,
    incoming: VecDeque<(Box<LWire>, SimTime)>,
    /// Hardware send completions awaiting surfacing by `progress`.
    local_done: VecDeque<usize>,
    tx_packets_avail: usize,
    rx_packets_avail: usize,
    sendd: Vec<Option<SendD>>,
    sendd_free: Vec<usize>,
    recvd: Vec<Option<RecvD>>,
    recvd_free: Vec<usize>,
    posted_count: usize,
    posted: HashMap<(NodeId, u64), VecDeque<usize>>,
    pending_rts: HashMap<(NodeId, u64), VecDeque<RtsInfo>>,
    cqs: Vec<VecDeque<CompEntry>>,
    syncs: Vec<Option<CompEntry>>,
    waker: Option<Waker>,
    retries: u64,
}

impl EpState {
    fn new(costs: &LciCosts) -> Self {
        EpState {
            am_handler: None,
            put_handler: None,
            incoming: VecDeque::new(),
            local_done: VecDeque::new(),
            tx_packets_avail: costs.tx_packets,
            rx_packets_avail: costs.rx_packets,
            sendd: Vec::new(),
            sendd_free: Vec::new(),
            recvd: Vec::new(),
            recvd_free: Vec::new(),
            posted_count: 0,
            posted: HashMap::new(),
            pending_rts: HashMap::new(),
            cqs: Vec::new(),
            syncs: Vec::new(),
            waker: None,
            retries: 0,
        }
    }

    fn alloc_sendd(&mut self, s: SendD) -> usize {
        match self.sendd_free.pop() {
            Some(i) => {
                self.sendd[i] = Some(s);
                i
            }
            None => {
                self.sendd.push(Some(s));
                self.sendd.len() - 1
            }
        }
    }

    fn alloc_recvd(&mut self, r: RecvD) -> usize {
        match self.recvd_free.pop() {
            Some(i) => {
                self.recvd[i] = Some(r);
                i
            }
            None => {
                self.recvd.push(Some(r));
                self.recvd.len() - 1
            }
        }
    }

    fn outstanding_sendd(&self) -> usize {
        self.sendd.len() - self.sendd_free.len()
    }
}

/// The LCI "world": one device spanning every fabric node, one endpoint per
/// node.
pub struct LciWorld {
    fabric: FabricHandle,
    costs: LciCosts,
    eps: Vec<EpState>,
}

impl LciWorld {
    /// Create a world over `fabric`, registering receive handlers on every
    /// node. Returns per-rank endpoints.
    pub fn create(fabric: &FabricHandle, costs: LciCosts) -> Vec<Lci> {
        let nodes = fabric.borrow().nodes();
        let eps = (0..nodes).map(|_| EpState::new(&costs)).collect();
        let world = Rc::new(RefCell::new(LciWorld {
            fabric: fabric.clone(),
            costs,
            eps,
        }));
        for node in 0..nodes {
            // Weak: the fabric must not keep the world alive (the world
            // holds the fabric; a strong reference here would leak both).
            let w = Rc::downgrade(&world);
            fabric.borrow_mut().set_handler(
                node,
                rx_handler(move |sim, d| {
                    let Some(w) = w.upgrade() else { return };
                    let sent_at = d.sent_at;
                    let wire = d.payload.downcast::<LWire>();
                    let waker = {
                        let mut wb = w.borrow_mut();
                        wb.eps[node].incoming.push_back((wire, sent_at));
                        wb.eps[node].waker.clone()
                    };
                    if let Some(waker) = waker {
                        waker(sim);
                    }
                }),
            );
        }
        (0..nodes)
            .map(|rank| Lci {
                world: world.clone(),
                rank,
            })
            .collect()
    }
}

/// Per-rank LCI endpoint handle.
#[derive(Clone)]
pub struct Lci {
    world: Rc<RefCell<LciWorld>>,
    rank: NodeId,
}

impl Lci {
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.world.borrow().eps.len()
    }

    pub fn costs(&self) -> LciCosts {
        self.world.borrow().costs.clone()
    }

    /// Register the active-message handler invoked (inside `progress`) for
    /// every arriving immediate/buffered message.
    pub fn set_am_handler(&self, h: impl Fn(&mut Sim, AmMsg) -> SimTime + 'static) {
        self.world.borrow_mut().eps[self.rank].am_handler = Some(Rc::new(h));
    }

    /// Register the handler invoked (inside `progress`) for every arriving
    /// one-sided put (§7 direct-put extension).
    pub fn set_put_handler(&self, h: impl Fn(&mut Sim, PutMsg) -> SimTime + 'static) {
        self.world.borrow_mut().eps[self.rank].put_handler = Some(Rc::new(h));
    }

    /// Register a waker fired when new work becomes available for
    /// `progress` (arrival, hardware completion, freed resources).
    pub fn set_waker(&self, waker: impl Fn(&mut Sim) + 'static) {
        self.world.borrow_mut().eps[self.rank].waker = Some(Rc::new(waker));
    }

    fn wake(&self, sim: &mut Sim) {
        let waker = self.world.borrow().eps[self.rank].waker.clone();
        if let Some(w) = waker {
            w(sim);
        }
    }

    /// Number of `Retry` failures observed on this endpoint (diagnostics).
    pub fn retries(&self) -> u64 {
        self.world.borrow().eps[self.rank].retries
    }

    /// Immediate send: payload up to a cache line, inline, fire-and-forget.
    pub fn sendi(
        &self,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> Result<SimTime, LciError> {
        let (costs, fabric) = {
            let w = self.world.borrow();
            (w.costs.clone(), w.fabric.clone())
        };
        assert!(size <= costs.imm_max, "sendi payload too large: {size}");
        let wire = Box::new(LWire::Imm {
            src: self.rank,
            tag,
            size,
            data: RefCell::new(data),
        });
        Fabric::send(
            &fabric,
            sim,
            self.rank,
            dst,
            size + costs.header_bytes,
            Payload::Any(wire),
            None,
        );
        Ok(costs.call_base + costs.sendi_base)
    }

    /// Buffered send: payload up to [`LciCosts::buf_max`], copied into a
    /// packet from the bounded transmit pool. Completes locally at copy
    /// time. Fails with `Retry` when the pool is empty.
    pub fn sendb(
        &self,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> Result<SimTime, LciError> {
        let (costs, fabric) = {
            let mut w = self.world.borrow_mut();
            let costs = w.costs.clone();
            assert!(size <= costs.buf_max, "sendb payload too large: {size}");
            let ep = &mut w.eps[self.rank];
            if ep.tx_packets_avail == 0 {
                ep.retries += 1;
                return Err(LciError::Retry);
            }
            ep.tx_packets_avail -= 1;
            (costs, w.fabric.clone())
        };
        let wire = Box::new(LWire::Buf {
            src: self.rank,
            tag,
            size,
            data: RefCell::new(data),
        });
        let world = self.world.clone();
        let rank = self.rank;
        Fabric::send(
            &fabric,
            sim,
            self.rank,
            dst,
            size + costs.header_bytes,
            Payload::Any(wire),
            // Packet returns to the pool once the NIC is done with it.
            // (world, rank) is two words: the callback stores inline, no alloc.
            Some(EventFn::new(move |sim| {
                let waker = {
                    let mut w = world.borrow_mut();
                    w.eps[rank].tx_packets_avail += 1;
                    w.eps[rank].waker.clone()
                };
                if let Some(w) = waker {
                    w(sim);
                }
            })),
        );
        Ok(costs.call_base + costs.sendb_base + costs.copy_cost(size))
    }

    /// Direct send: any length, zero-copy RDMA behind an RTS/RTR
    /// rendezvous. `on_local` fires (inside the sender's `progress`) when
    /// the data has left the NIC. Fails with `Retry` when too many direct
    /// sends are outstanding.
    #[allow(clippy::too_many_arguments)]
    pub fn sendd(
        &self,
        sim: &mut Sim,
        dst: NodeId,
        rtag: u64,
        size: usize,
        data: Option<Bytes>,
        ctx: u64,
        on_local: OnComplete,
    ) -> Result<SimTime, LciError> {
        let (costs, fabric, idx) = {
            let mut w = self.world.borrow_mut();
            let costs = w.costs.clone();
            let max = costs.max_outstanding_sendd;
            let ep = &mut w.eps[self.rank];
            if ep.outstanding_sendd() >= max {
                ep.retries += 1;
                return Err(LciError::Retry);
            }
            let idx = ep.alloc_sendd(SendD {
                dst,
                rtag,
                size,
                data,
                ctx,
                on_local: Some(on_local),
            });
            (costs, w.fabric.clone(), idx)
        };
        let wire = Box::new(LWire::Rts {
            src: self.rank,
            rtag,
            size,
            sendd_idx: idx,
        });
        Fabric::send(
            &fabric,
            sim,
            self.rank,
            dst,
            costs.header_bytes,
            Payload::Any(wire),
            None,
        );
        Ok(costs.call_base + costs.sendd_base)
    }

    /// One-sided put (§7 future work): a single RDMA write with immediate
    /// data into the target's pre-registered segment; the target's put
    /// handler fires inside its `progress`, with no matching or rendezvous.
    /// `on_local` fires (inside the sender's `progress`) once the data has
    /// left the NIC. Fails with `Retry` when too many writes are
    /// outstanding.
    #[allow(clippy::too_many_arguments)]
    pub fn putd(
        &self,
        sim: &mut Sim,
        dst: NodeId,
        rtag: u64,
        size: usize,
        data: Option<Bytes>,
        cb_data: Bytes,
        ctx: u64,
        on_local: OnComplete,
    ) -> Result<SimTime, LciError> {
        let (costs, fabric, idx) = {
            let mut w = self.world.borrow_mut();
            let costs = w.costs.clone();
            let max = costs.max_outstanding_sendd;
            let ep = &mut w.eps[self.rank];
            if ep.outstanding_sendd() >= max {
                ep.retries += 1;
                return Err(LciError::Retry);
            }
            let idx = ep.alloc_sendd(SendD {
                dst,
                rtag,
                size,
                data: None,
                ctx,
                on_local: Some(on_local),
            });
            (costs, w.fabric.clone(), idx)
        };
        let wire = Box::new(LWire::PutD {
            src: self.rank,
            rtag,
            size,
            data: RefCell::new(data),
            cb_data,
        });
        let world = self.world.clone();
        let rank = self.rank;
        Fabric::send(
            &fabric,
            sim,
            self.rank,
            dst,
            size + costs.header_bytes + 32,
            Payload::Any(wire),
            // (world, rank, idx) is three words: stored inline, no alloc.
            Some(EventFn::new(move |sim| {
                let waker = {
                    let mut w = world.borrow_mut();
                    w.eps[rank].local_done.push_back(idx);
                    w.eps[rank].waker.clone()
                };
                if let Some(w) = waker {
                    w(sim);
                }
            })),
        );
        Ok(costs.call_base + costs.sendd_base)
    }

    /// Post a direct receive matching `(src, rtag)`. Fails with `Retry`
    /// when posted-receive resources are exhausted — the case §5.3.3
    /// delegates from the progress thread to the communication thread.
    pub fn recvd(
        &self,
        sim: &mut Sim,
        src: NodeId,
        rtag: u64,
        ctx: u64,
        on_complete: OnComplete,
    ) -> Result<SimTime, LciError> {
        let matched = {
            let mut w = self.world.borrow_mut();
            let costs = w.costs.clone();
            let ep = &mut w.eps[self.rank];
            if ep.posted_count >= costs.max_posted_recvd {
                ep.retries += 1;
                return Err(LciError::Retry);
            }
            ep.posted_count += 1;
            let idx = ep.alloc_recvd(RecvD {
                src,
                rtag,
                ctx,
                on_complete: Some(on_complete),
            });
            // An RTS may already be waiting.
            let rts = match ep.pending_rts.get_mut(&(src, rtag)) {
                Some(q) => {
                    let info = q.pop_front();
                    if q.is_empty() {
                        ep.pending_rts.remove(&(src, rtag));
                    }
                    info
                }
                None => None,
            };
            match rts {
                Some(info) => Some((info, idx, w.fabric.clone(), costs)),
                None => {
                    ep.posted.entry((src, rtag)).or_default().push_back(idx);
                    None
                }
            }
        };
        let cost = {
            let w = self.world.borrow();
            w.costs.call_base + w.costs.recvd_base
        };
        if let Some((info, recvd_idx, fabric, costs)) = matched {
            let wire = Box::new(LWire::Rtr {
                sendd_idx: info.sendd_idx,
                recvd_idx,
                recver: self.rank,
            });
            Fabric::send(
                &fabric,
                sim,
                self.rank,
                info.src,
                costs.header_bytes,
                Payload::Any(wire),
                None,
            );
        }
        Ok(cost)
    }

    /// Return a dynamically allocated receive buffer to the packet pool.
    pub fn buffer_free(&self, sim: &mut Sim) {
        let stalled = {
            let mut w = self.world.borrow_mut();
            let cap = w.costs.rx_packets;
            let ep = &mut w.eps[self.rank];
            assert!(
                ep.rx_packets_avail < cap,
                "buffer_free without matching allocation"
            );
            ep.rx_packets_avail += 1;
            !ep.incoming.is_empty()
        };
        if stalled {
            self.wake(sim);
        }
    }

    /// Create a completion queue.
    pub fn cq_new(&self) -> CqId {
        let mut w = self.world.borrow_mut();
        let ep = &mut w.eps[self.rank];
        ep.cqs.push(VecDeque::new());
        CqId {
            rank: self.rank,
            idx: ep.cqs.len() - 1,
        }
    }

    /// Pop one entry from a completion queue.
    pub fn cq_poll(&self, cq: CqId) -> Option<CompEntry> {
        assert_eq!(cq.rank, self.rank, "CQ used on wrong rank");
        self.world.borrow_mut().eps[self.rank].cqs[cq.idx].pop_front()
    }

    /// Create a synchronizer.
    pub fn sync_new(&self) -> SyncId {
        let mut w = self.world.borrow_mut();
        let ep = &mut w.eps[self.rank];
        ep.syncs.push(None);
        SyncId {
            rank: self.rank,
            idx: ep.syncs.len() - 1,
        }
    }

    /// Test-and-consume a synchronizer.
    pub fn sync_test(&self, sync: SyncId) -> Option<CompEntry> {
        assert_eq!(sync.rank, self.rank, "synchronizer used on wrong rank");
        self.world.borrow_mut().eps[self.rank].syncs[sync.idx].take()
    }

    fn deliver(&self, sim: &mut Sim, on: OnComplete, entry: CompEntry) -> SimTime {
        let costs = self.world.borrow().costs.clone();
        match on {
            OnComplete::Handler(h) => costs.handler_base + h(sim, entry),
            OnComplete::Queue(cq) => {
                assert_eq!(cq.rank, self.rank);
                self.world.borrow_mut().eps[self.rank].cqs[cq.idx].push_back(entry);
                costs.handler_base
            }
            OnComplete::Sync(s) => {
                assert_eq!(s.rank, self.rank);
                let prev = self.world.borrow_mut().eps[self.rank].syncs[s.idx].replace(entry);
                assert!(prev.is_none(), "synchronizer signalled twice");
                costs.handler_base
            }
            OnComplete::None => SimTime::ZERO,
        }
    }

    /// Explicit progress (§5.3.1): drain hardware completions and incoming
    /// messages, dispatch active-message handlers, answer rendezvous RTSs,
    /// start RDMA transfers on RTR, and complete direct receives. Returns
    /// the CPU cost of everything done, including handler execution — charge
    /// it to the progressing thread's core.
    pub fn progress(&self, sim: &mut Sim) -> SimTime {
        let mut cost = self.world.borrow().costs.call_base;
        loop {
            // 1. Surface hardware send completions.
            let local = self.world.borrow_mut().eps[self.rank]
                .local_done
                .pop_front();
            if let Some(sendd_idx) = local {
                let (entry, on_local, costs) = {
                    let mut w = self.world.borrow_mut();
                    let costs = w.costs.clone();
                    let ep = &mut w.eps[self.rank];
                    let mut s = ep.sendd[sendd_idx].take().expect("sendd slot empty");
                    ep.sendd_free.push(sendd_idx);
                    (
                        CompEntry {
                            peer: s.dst,
                            rtag: s.rtag,
                            size: s.size,
                            ctx: s.ctx,
                            data: None,
                            sent_at: SimTime::ZERO,
                        },
                        s.on_local.take().expect("sendd completion consumed twice"),
                        costs,
                    )
                };
                cost += costs.progress_per_msg + self.deliver(sim, on_local, entry);
                continue;
            }

            // 2. Process one incoming wire message.
            let (wire, sent_at) = {
                let mut w = self.world.borrow_mut();
                let ep = &mut w.eps[self.rank];
                match ep.incoming.front() {
                    None => break,
                    Some((front, _)) => {
                        // Buffered messages need a receive packet; stall the
                        // (FIFO) hardware queue when the pool is dry.
                        if matches!(**front, LWire::Buf { .. }) && ep.rx_packets_avail == 0 {
                            break;
                        }
                        if matches!(**front, LWire::Buf { .. }) {
                            ep.rx_packets_avail -= 1;
                        }
                        ep.incoming.pop_front().expect("front checked")
                    }
                }
            };
            cost += self.process_wire(sim, &wire, sent_at);
        }
        cost
    }

    fn process_wire(&self, sim: &mut Sim, wire: &LWire, sent_at: SimTime) -> SimTime {
        let costs = self.world.borrow().costs.clone();
        let mut cost = costs.progress_per_msg;
        match wire {
            LWire::Imm {
                src,
                tag,
                size,
                data,
            } => {
                let h = self.world.borrow().eps[self.rank]
                    .am_handler
                    .clone()
                    .expect("no AM handler registered");
                cost += costs.handler_base
                    + h(
                        sim,
                        AmMsg {
                            src: *src,
                            tag: *tag,
                            size: *size,
                            data: data.borrow_mut().take(),
                            owns_packet: false,
                            sent_at,
                        },
                    );
            }
            LWire::Buf {
                src,
                tag,
                size,
                data,
            } => {
                let h = self.world.borrow().eps[self.rank]
                    .am_handler
                    .clone()
                    .expect("no AM handler registered");
                cost += costs.handler_base
                    + costs.copy_cost(*size)
                    + h(
                        sim,
                        AmMsg {
                            src: *src,
                            tag: *tag,
                            size: *size,
                            data: data.borrow_mut().take(),
                            owns_packet: true,
                            sent_at,
                        },
                    );
            }
            LWire::Rts {
                src,
                rtag,
                size,
                sendd_idx,
            } => {
                let matched = {
                    let mut w = self.world.borrow_mut();
                    let ep = &mut w.eps[self.rank];
                    match ep.posted.get_mut(&(*src, *rtag)) {
                        Some(q) => {
                            let idx = q.pop_front();
                            if q.is_empty() {
                                ep.posted.remove(&(*src, *rtag));
                            }
                            idx
                        }
                        None => None,
                    }
                };
                match matched {
                    Some(recvd_idx) => {
                        let fabric = self.world.borrow().fabric.clone();
                        let wire = Box::new(LWire::Rtr {
                            sendd_idx: *sendd_idx,
                            recvd_idx,
                            recver: self.rank,
                        });
                        Fabric::send(
                            &fabric,
                            sim,
                            self.rank,
                            *src,
                            costs.header_bytes,
                            Payload::Any(wire),
                            None,
                        );
                    }
                    None => {
                        self.world.borrow_mut().eps[self.rank]
                            .pending_rts
                            .entry((*src, *rtag))
                            .or_default()
                            .push_back(RtsInfo {
                                src: *src,
                                sendd_idx: *sendd_idx,
                            });
                        let _ = size;
                    }
                }
            }
            LWire::Rtr {
                sendd_idx,
                recvd_idx,
                recver,
            } => {
                // We are the sender: fire the RDMA write.
                let (size, data, rtag) = {
                    let mut w = self.world.borrow_mut();
                    let s = w.eps[self.rank].sendd[*sendd_idx]
                        .as_mut()
                        .expect("RTR for free sendd slot");
                    (s.size, s.data.take(), s.rtag)
                };
                let fabric = self.world.borrow().fabric.clone();
                let wire = Box::new(LWire::Data {
                    recvd_idx: *recvd_idx,
                    src: self.rank,
                    rtag,
                    size,
                    data: RefCell::new(data),
                });
                let world = self.world.clone();
                let rank = self.rank;
                let sidx = *sendd_idx;
                Fabric::send(
                    &fabric,
                    sim,
                    self.rank,
                    *recver,
                    size + costs.header_bytes,
                    Payload::Any(wire),
                    // (world, rank, sidx) is three words: stored inline.
                    Some(EventFn::new(move |sim| {
                        let waker = {
                            let mut w = world.borrow_mut();
                            w.eps[rank].local_done.push_back(sidx);
                            w.eps[rank].waker.clone()
                        };
                        if let Some(w) = waker {
                            w(sim);
                        }
                    })),
                );
            }
            LWire::PutD {
                src,
                rtag,
                size,
                data,
                cb_data,
            } => {
                let h = self.world.borrow().eps[self.rank]
                    .put_handler
                    .clone()
                    .expect("no put handler registered");
                cost += costs.handler_base
                    + h(
                        sim,
                        PutMsg {
                            src: *src,
                            rtag: *rtag,
                            size: *size,
                            data: data.borrow_mut().take(),
                            cb_data: cb_data.clone(),
                            sent_at,
                        },
                    );
            }
            LWire::Data {
                recvd_idx,
                src,
                rtag,
                size,
                data,
            } => {
                let (entry, on_complete) = {
                    let mut w = self.world.borrow_mut();
                    let ep = &mut w.eps[self.rank];
                    let mut r = ep.recvd[*recvd_idx]
                        .take()
                        .expect("DATA for free recvd slot");
                    debug_assert_eq!(r.src, *src);
                    debug_assert_eq!(r.rtag, *rtag);
                    ep.recvd_free.push(*recvd_idx);
                    ep.posted_count -= 1;
                    (
                        CompEntry {
                            peer: *src,
                            rtag: *rtag,
                            size: *size,
                            ctx: r.ctx,
                            data: data.borrow_mut().take(),
                            sent_at,
                        },
                        r.on_complete
                            .take()
                            .expect("recvd completion consumed twice"),
                    )
                };
                cost += self.deliver(sim, on_complete, entry);
            }
        }
        cost
    }

    /// Anything waiting for `progress`? (diagnostics / poll gating)
    pub fn has_work(&self) -> bool {
        let w = self.world.borrow();
        let ep = &w.eps[self.rank];
        !ep.incoming.is_empty() || !ep.local_done.is_empty()
    }

    /// Depth of the incoming hardware queue (diagnostics).
    pub fn incoming_depth(&self) -> usize {
        self.world.borrow().eps[self.rank].incoming.len()
    }
}
