//! # amt-lci
//!
//! A Rust reimplementation of **LCI**, the Lightweight Communication
//! Interface ([Snir, Dang, Mor, Yan; LCI v1.7]), over the simulated fabric —
//! the communication library the paper integrates into PaRSEC (§5).
//!
//! ## The LCI model (paper §5.1)
//!
//! * Three send protocols:
//!   - **Immediate** (`sendi`): messages up to a cache line, sent inline
//!     from the user buffer, fire-and-forget.
//!   - **Buffered** (`sendb`): up to a few pages, copied into a
//!     pre-registered packet from a bounded pool; local completion at copy.
//!   - **Direct** (`sendd`/`recvd`): any length, RDMA with an RTS/RTR
//!     rendezvous, zero-copy; matched by `(source, rendezvous-tag)`.
//! * Every call is **non-blocking** and may fail with [`LciError::Retry`]
//!   when resources (packets, posted-receive slots, outstanding RDMA ops)
//!   are exhausted — back-pressure the consuming runtime must handle by
//!   progressing and resubmitting (§5.3.3 relies on exactly this for
//!   receives posted from the progress thread).
//! * **Explicit progress**: [`Lci::progress`] drains hardware completion
//!   queues, matches rendezvous messages, executes user completion handlers
//!   and refills receive resources. Nothing advances outside `progress`
//!   (and the zero-cost hardware enqueue the fabric performs on delivery).
//!   This is what lets the PaRSEC LCI backend dedicate a *progress thread*
//!   separate from the communication thread.
//! * Completion can be signalled through a **handler** (run inside
//!   `progress`), a **completion queue** polled by any thread, or a
//!   **synchronizer** tested/waited individually — all three are provided.
//! * Receive buffers for immediate/buffered messages are **dynamically
//!   allocated at the target** from a packet pool; there is no tag matching
//!   for them, just a handler dispatch — one of the key latency advantages
//!   over the MPI persistent-receive scheme.
//!
//! ## Time accounting
//!
//! As with `amt-minimpi`, calls execute their logic immediately and return
//! the CPU cost the caller must charge to its simulated core. Handler costs
//! incurred inside `progress` are included in the cost `progress` returns,
//! so a dedicated progress-thread core naturally accumulates that load.

mod costs;
mod world;

pub use costs::LciCosts;
pub use world::{AmMsg, CompEntry, CqId, Lci, LciError, LciWorld, OnComplete, PutMsg, SyncId};

#[cfg(test)]
mod tests;
