//! LCI semantics tests: three protocols, completion machinery, explicit
//! progress, back-pressure.

use std::cell::RefCell;
use std::rc::Rc;

use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::{Lci, LciCosts, LciError, LciWorld, OnComplete};

fn setup_with(nodes: usize, costs: LciCosts) -> (Sim, Vec<Lci>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(nodes));
    let eps = LciWorld::create(&fabric, costs);
    (sim, eps)
}

fn setup(nodes: usize) -> (Sim, Vec<Lci>) {
    setup_with(nodes, LciCosts::default())
}

/// Run the simulation, interleaving `progress` calls on every endpoint
/// whenever they have work — a stand-in for each node's progress thread.
fn run_progressed(sim: &mut Sim, eps: &[Lci]) {
    loop {
        let mut any = false;
        for ep in eps {
            if ep.has_work() {
                ep.progress(sim);
                any = true;
            }
        }
        if !sim.step() && !any {
            break;
        }
    }
}

#[test]
fn immediate_message_reaches_handler() {
    let (mut sim, eps) = setup(2);
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    eps[1].set_am_handler(move |_sim, m| {
        g.borrow_mut().push((m.src, m.tag, m.size, m.data.clone()));
        assert!(!m.owns_packet);
        SimTime::ZERO
    });
    let data = Bytes::from_static(b"hello");
    eps[0]
        .sendi(&mut sim, 1, 7, data.len(), Frames::from(data.clone()))
        .expect("sendi");
    run_progressed(&mut sim, &eps);
    assert_eq!(got.borrow().len(), 1);
    assert_eq!(got.borrow()[0], (0, 7, 5, Frames::from(data)));
}

#[test]
fn buffered_message_owns_packet() {
    let (mut sim, eps) = setup(2);
    let got = Rc::new(RefCell::new(0usize));
    let g = got.clone();
    let ep1 = eps[1].clone();
    eps[1].set_am_handler(move |sim, m| {
        assert!(m.owns_packet);
        *g.borrow_mut() += m.size;
        ep1.buffer_free(sim);
        SimTime::from_ns(10)
    });
    eps[0]
        .sendb(&mut sim, 1, 3, 4096, Frames::Empty)
        .expect("sendb");
    run_progressed(&mut sim, &eps);
    assert_eq!(*got.borrow(), 4096);
}

#[test]
fn direct_rendezvous_delivers_data_and_completions() {
    let (mut sim, eps) = setup(2);
    eps[0].set_am_handler(|_, _| SimTime::ZERO);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let local_done = Rc::new(RefCell::new(None));
    let remote_done = Rc::new(RefCell::new(None));
    let size = 1 << 20;
    let data = Bytes::from(vec![9u8; size]);

    let rd = remote_done.clone();
    eps[1]
        .recvd(
            &mut sim,
            0,
            42,
            777,
            OnComplete::Handler(Box::new(move |_sim, e| {
                *rd.borrow_mut() = Some(e);
                SimTime::ZERO
            })),
        )
        .expect("recvd");

    let ld = local_done.clone();
    eps[0]
        .sendd(
            &mut sim,
            1,
            42,
            size,
            Some(data.clone()),
            555,
            OnComplete::Handler(Box::new(move |_sim, e| {
                *ld.borrow_mut() = Some(e);
                SimTime::ZERO
            })),
        )
        .expect("sendd");

    run_progressed(&mut sim, &eps);

    let l = local_done.borrow();
    let r = remote_done.borrow();
    let l = l.as_ref().expect("local completion");
    let r = r.as_ref().expect("remote completion");
    assert_eq!(l.ctx, 555);
    assert_eq!(l.peer, 1);
    assert_eq!(l.size, size);
    assert_eq!(r.ctx, 777);
    assert_eq!(r.peer, 0);
    assert_eq!(r.data.as_deref(), Some(&data[..]));
}

#[test]
fn rts_before_recvd_matches_later() {
    let (mut sim, eps) = setup(2);
    eps[0].set_am_handler(|_, _| SimTime::ZERO);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let done = Rc::new(RefCell::new(false));
    eps[0]
        .sendd(&mut sim, 1, 5, 256 << 10, None, 0, OnComplete::None)
        .expect("sendd");
    // Let the RTS arrive and be progressed before the receive is posted.
    run_progressed(&mut sim, &eps);
    let d = done.clone();
    eps[1]
        .recvd(
            &mut sim,
            0,
            5,
            0,
            OnComplete::Handler(Box::new(move |_s, e| {
                assert_eq!(e.size, 256 << 10);
                *d.borrow_mut() = true;
                SimTime::ZERO
            })),
        )
        .expect("recvd");
    run_progressed(&mut sim, &eps);
    assert!(*done.borrow());
}

#[test]
fn completion_queue_and_synchronizer() {
    let (mut sim, eps) = setup(2);
    eps[0].set_am_handler(|_, _| SimTime::ZERO);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let cq = eps[1].cq_new();
    let sync = eps[0].sync_new();
    eps[1]
        .recvd(&mut sim, 0, 1, 11, OnComplete::Queue(cq))
        .expect("recvd");
    eps[0]
        .sendd(&mut sim, 1, 1, 128 << 10, None, 22, OnComplete::Sync(sync))
        .expect("sendd");
    run_progressed(&mut sim, &eps);
    let e = eps[1].cq_poll(cq).expect("cq entry");
    assert_eq!(e.ctx, 11);
    assert!(eps[1].cq_poll(cq).is_none());
    let s = eps[0].sync_test(sync).expect("sync signalled");
    assert_eq!(s.ctx, 22);
    assert!(eps[0].sync_test(sync).is_none(), "sync consumed");
}

#[test]
fn sendb_retries_when_tx_pool_exhausted() {
    let costs = LciCosts {
        tx_packets: 2,
        ..Default::default()
    };
    let (mut sim, eps) = setup_with(2, costs);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    assert!(eps[0].sendb(&mut sim, 1, 0, 1024, Frames::Empty).is_ok());
    assert!(eps[0].sendb(&mut sim, 1, 0, 1024, Frames::Empty).is_ok());
    // Pool exhausted until the NIC finishes with a packet.
    assert_eq!(
        eps[0].sendb(&mut sim, 1, 0, 1024, Frames::Empty),
        Err(LciError::Retry)
    );
    assert_eq!(eps[0].retries(), 1);
    sim.run(); // transmit completes, packets return
    assert!(eps[0].sendb(&mut sim, 1, 0, 1024, Frames::Empty).is_ok());
}

#[test]
fn recvd_retries_when_posted_resources_exhausted() {
    let costs = LciCosts {
        max_posted_recvd: 3,
        ..Default::default()
    };
    let (mut sim, eps) = setup_with(2, costs);
    for i in 0..3 {
        assert!(eps[1].recvd(&mut sim, 0, i, 0, OnComplete::None).is_ok());
    }
    assert_eq!(
        eps[1].recvd(&mut sim, 0, 99, 0, OnComplete::None),
        Err(LciError::Retry)
    );
}

#[test]
fn rx_packet_exhaustion_stalls_buffered_delivery() {
    let costs = LciCosts {
        rx_packets: 1,
        ..Default::default()
    };
    let (mut sim, eps) = setup_with(2, costs);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let s = seen.clone();
    // Handler does NOT free the buffer immediately.
    eps[1].set_am_handler(move |_sim, m| {
        s.borrow_mut().push(m.tag);
        SimTime::ZERO
    });
    eps[0]
        .sendb(&mut sim, 1, 1, 512, Frames::Empty)
        .expect("sendb");
    eps[0]
        .sendb(&mut sim, 1, 2, 512, Frames::Empty)
        .expect("sendb");
    sim.run();
    eps[1].progress(&mut sim);
    // Only the first message could be delivered: no packets left.
    assert_eq!(*seen.borrow(), vec![1]);
    assert!(eps[1].has_work(), "second message still queued");
    // Freeing the buffer lets the next progress call deliver the rest.
    eps[1].buffer_free(&mut sim);
    eps[1].progress(&mut sim);
    assert_eq!(*seen.borrow(), vec![1, 2]);
}

#[test]
fn progress_cost_includes_handler_cost() {
    let (mut sim, eps) = setup(2);
    eps[1].set_am_handler(|_sim, _m| SimTime::from_us(5));
    eps[0]
        .sendi(&mut sim, 1, 0, 8, Frames::Empty)
        .expect("sendi");
    sim.run();
    let cost = eps[1].progress(&mut sim);
    assert!(
        cost >= SimTime::from_us(5),
        "handler cost not accounted: {cost}"
    );
}

#[test]
fn multiple_streams_same_rtag_fifo_match() {
    // Two sendd with the same (src, rtag): matches must pair FIFO.
    let (mut sim, eps) = setup(2);
    eps[0].set_am_handler(|_, _| SimTime::ZERO);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let order = Rc::new(RefCell::new(Vec::new()));
    for ctx in [100u64, 200] {
        let o = order.clone();
        eps[1]
            .recvd(
                &mut sim,
                0,
                9,
                ctx,
                OnComplete::Handler(Box::new(move |_s, e| {
                    o.borrow_mut().push((e.ctx, e.size));
                    SimTime::ZERO
                })),
            )
            .expect("recvd");
    }
    eps[0]
        .sendd(&mut sim, 1, 9, 1000, None, 0, OnComplete::None)
        .expect("sendd");
    eps[0]
        .sendd(&mut sim, 1, 9, 2000, None, 1, OnComplete::None)
        .expect("sendd");
    run_progressed(&mut sim, &eps);
    assert_eq!(*order.borrow(), vec![(100, 1000), (200, 2000)]);
}

#[test]
fn waker_fires_on_arrival() {
    let (mut sim, eps) = setup(2);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let woke = Rc::new(RefCell::new(0));
    let w = woke.clone();
    eps[1].set_waker(move |_sim| *w.borrow_mut() += 1);
    eps[0]
        .sendi(&mut sim, 1, 0, 8, Frames::Empty)
        .expect("sendi");
    sim.run();
    assert!(*woke.borrow() >= 1, "waker should fire on arrival");
}

#[test]
fn direct_put_delivers_without_rendezvous() {
    let (mut sim, eps) = setup(2);
    eps[0].set_am_handler(|_, _| SimTime::ZERO);
    eps[1].set_am_handler(|_, _| SimTime::ZERO);
    let got = Rc::new(RefCell::new(None));
    let g = got.clone();
    eps[1].set_put_handler(move |_sim, m| {
        *g.borrow_mut() = Some((m.src, m.rtag, m.size, m.data, m.cb_data));
        SimTime::ZERO
    });
    let local = Rc::new(RefCell::new(false));
    let l = local.clone();
    let data = Bytes::from(vec![3u8; 100_000]);
    eps[0]
        .putd(
            &mut sim,
            1,
            77,
            data.len(),
            Some(data.clone()),
            Bytes::from_static(b"imm"),
            9,
            crate::OnComplete::Handler(Box::new(move |_s, e| {
                assert_eq!(e.ctx, 9);
                *l.borrow_mut() = true;
                SimTime::ZERO
            })),
        )
        .expect("putd");
    run_progressed(&mut sim, &eps);
    assert!(*local.borrow(), "local completion");
    let r = got.borrow();
    let (src, rtag, size, d, imm) = r.as_ref().expect("put delivered");
    assert_eq!((*src, *rtag, *size), (0, 77, 100_000));
    assert_eq!(d.as_deref(), Some(&data[..]));
    assert_eq!(&imm[..], b"imm");
}

#[test]
fn direct_put_respects_outstanding_cap() {
    let costs = LciCosts {
        max_outstanding_sendd: 2,
        ..Default::default()
    };
    let (mut sim, eps) = setup_with(2, costs);
    eps[1].set_put_handler(|_, _| SimTime::ZERO);
    for _ in 0..2 {
        assert!(eps[0]
            .putd(
                &mut sim,
                1,
                0,
                1024,
                None,
                Bytes::new(),
                0,
                crate::OnComplete::None
            )
            .is_ok());
    }
    assert_eq!(
        eps[0].putd(
            &mut sim,
            1,
            0,
            1024,
            None,
            Bytes::new(),
            0,
            crate::OnComplete::None
        ),
        Err(LciError::Retry)
    );
}
