//! Property tests for LCI resource conservation and protocol integrity.

use amt_lci::{Lci, LciCosts, LciWorld, OnComplete};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use bytes::Bytes;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn setup(costs: LciCosts) -> (Sim, Vec<Lci>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(2));
    let eps = LciWorld::create(&fabric, costs);
    (sim, eps)
}

fn drive(sim: &mut Sim, eps: &[Lci]) {
    loop {
        let mut any = false;
        for ep in eps {
            if ep.has_work() {
                ep.progress(sim);
                any = true;
            }
        }
        if !sim.step() && !any {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every direct send pairs with its matching receive and delivers its
    /// payload intact, under arbitrary (src-tag, size) mixes and arbitrary
    /// post order.
    #[test]
    fn direct_rendezvous_pairs_and_delivers(
        ops in prop::collection::vec((0u64..5, 1usize..100_000), 1..20),
        recv_first in any::<bool>(),
    ) {
        let (mut sim, eps) = setup(LciCosts::default());
        eps[0].set_am_handler(|_, _| SimTime::ZERO);
        eps[1].set_am_handler(|_, _| SimTime::ZERO);
        let got: Rc<RefCell<Vec<(u64, usize, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));

        let mut posted = 0u64;
        let mut post_recvs = |sim: &mut Sim| {
            for (i, &(rtag, _size)) in ops.iter().enumerate() {
                let g = got.clone();
                eps[1]
                    .recvd(
                        sim,
                        0,
                        rtag,
                        i as u64,
                        OnComplete::Handler(Box::new(move |_s, e| {
                            g.borrow_mut().push((e.rtag, e.size, e.data.expect("payload")));
                            SimTime::ZERO
                        })),
                    )
                    .expect("recvd");
                posted += 1;
            }
        };
        if recv_first {
            post_recvs(&mut sim);
        }
        for &(rtag, size) in &ops {
            let data = Bytes::from(vec![(rtag as u8).wrapping_add(size as u8); size]);
            eps[0]
                .sendd(&mut sim, 1, rtag, size, Some(data), 0, OnComplete::None)
                .expect("sendd");
        }
        if !recv_first {
            drive(&mut sim, &eps);
            post_recvs(&mut sim);
        }
        drive(&mut sim, &eps);

        let got = got.borrow();
        prop_assert_eq!(got.len(), ops.len());
        // Every send pairs with a receive of the same rtag and size.
        // (Completion *order* may differ: small DATA messages ride the
        // control lane and can overtake multi-chunk bulk transfers.)
        for rtag in 0..5u64 {
            let mut sent: Vec<usize> =
                ops.iter().filter(|(t, _)| *t == rtag).map(|(_, s)| *s).collect();
            let mut recvd: Vec<usize> =
                got.iter().filter(|(t, _, _)| *t == rtag).map(|(_, s, _)| *s).collect();
            sent.sort_unstable();
            recvd.sort_unstable();
            prop_assert_eq!(sent, recvd, "rtag {} pairing", rtag);
        }
        for (_, size, data) in got.iter() {
            prop_assert_eq!(data.len(), *size);
        }
    }

    /// Packet pools conserve: after quiescence the endpoint accepts as
    /// many buffered sends as its pool capacity again.
    #[test]
    fn tx_packet_pool_conserves(pool in 1usize..6, batches in 1usize..5) {
        let costs = LciCosts { tx_packets: pool, ..Default::default() };
        let (mut sim, eps) = setup(costs);
        let ep1 = eps[1].clone();
        eps[1].set_am_handler(move |sim, m| {
            if m.owns_packet {
                ep1.buffer_free(sim);
            }
            SimTime::ZERO
        });
        eps[0].set_am_handler(|_, _| SimTime::ZERO);
        for _ in 0..batches {
            let mut sent = 0;
            // Fill the pool.
            while eps[0].sendb(&mut sim, 1, 0, 512, None).is_ok() {
                sent += 1;
                prop_assert!(sent <= pool, "pool over-granted");
            }
            prop_assert_eq!(sent, pool);
            drive(&mut sim, &eps);
        }
        // After draining, the full pool is available again.
        let mut sent = 0;
        while eps[0].sendb(&mut sim, 1, 0, 512, None).is_ok() {
            sent += 1;
        }
        prop_assert_eq!(sent, pool);
    }
}
