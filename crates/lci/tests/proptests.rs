//! Randomized property tests for LCI resource conservation and protocol
//! integrity, driven by the in-tree deterministic generator (the workspace
//! builds offline, so no external `proptest`).

use amt_lci::{Lci, LciCosts, LciWorld, OnComplete};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{DetRng, Sim, SimTime};
use bytes::{Bytes, Frames};
use std::cell::RefCell;
use std::rc::Rc;

const CASES: u64 = 32;

fn setup(costs: LciCosts) -> (Sim, Vec<Lci>) {
    let sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(2));
    let eps = LciWorld::create(&fabric, costs);
    (sim, eps)
}

fn drive(sim: &mut Sim, eps: &[Lci]) {
    loop {
        let mut any = false;
        for ep in eps {
            if ep.has_work() {
                ep.progress(sim);
                any = true;
            }
        }
        if !sim.step() && !any {
            break;
        }
    }
}

/// Every direct send pairs with its matching receive and delivers its
/// payload intact, under arbitrary (src-tag, size) mixes and arbitrary
/// post order.
#[test]
fn direct_rendezvous_pairs_and_delivers() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x1c1_0000 + case);
        let n = rng.gen_usize(1..20);
        let ops: Vec<(u64, usize)> = (0..n)
            .map(|_| (rng.gen_range(0..5), rng.gen_usize(1..100_000)))
            .collect();
        let recv_first = rng.gen_bool(0.5);

        let (mut sim, eps) = setup(LciCosts::default());
        eps[0].set_am_handler(|_, _| SimTime::ZERO);
        eps[1].set_am_handler(|_, _| SimTime::ZERO);
        let got: Rc<RefCell<Vec<(u64, usize, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));

        let post_recvs = |sim: &mut Sim| {
            for (i, &(rtag, _size)) in ops.iter().enumerate() {
                let g = got.clone();
                eps[1]
                    .recvd(
                        sim,
                        0,
                        rtag,
                        i as u64,
                        OnComplete::Handler(Box::new(move |_s, e| {
                            g.borrow_mut()
                                .push((e.rtag, e.size, e.data.expect("payload")));
                            SimTime::ZERO
                        })),
                    )
                    .expect("recvd");
            }
        };
        if recv_first {
            post_recvs(&mut sim);
        }
        for &(rtag, size) in &ops {
            let data = Bytes::from(vec![(rtag as u8).wrapping_add(size as u8); size]);
            eps[0]
                .sendd(&mut sim, 1, rtag, size, Some(data), 0, OnComplete::None)
                .expect("sendd");
        }
        if !recv_first {
            drive(&mut sim, &eps);
            post_recvs(&mut sim);
        }
        drive(&mut sim, &eps);

        let got = got.borrow();
        assert_eq!(got.len(), ops.len(), "case {case}");
        // Every send pairs with a receive of the same rtag and size.
        // (Completion *order* may differ: small DATA messages ride the
        // control lane and can overtake multi-chunk bulk transfers.)
        for rtag in 0..5u64 {
            let mut sent: Vec<usize> = ops
                .iter()
                .filter(|(t, _)| *t == rtag)
                .map(|(_, s)| *s)
                .collect();
            let mut recvd: Vec<usize> = got
                .iter()
                .filter(|(t, _, _)| *t == rtag)
                .map(|(_, s, _)| *s)
                .collect();
            sent.sort_unstable();
            recvd.sort_unstable();
            assert_eq!(sent, recvd, "rtag {rtag} pairing (case {case})");
        }
        for (_, size, data) in got.iter() {
            assert_eq!(data.len(), *size, "case {case}");
        }
    }
}

/// Packet pools conserve: after quiescence the endpoint accepts as
/// many buffered sends as its pool capacity again.
#[test]
fn tx_packet_pool_conserves() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x2e2e_0000 + case);
        let pool = rng.gen_usize(1..6);
        let batches = rng.gen_usize(1..5);

        let costs = LciCosts {
            tx_packets: pool,
            ..Default::default()
        };
        let (mut sim, eps) = setup(costs);
        let ep1 = eps[1].clone();
        eps[1].set_am_handler(move |sim, m| {
            if m.owns_packet {
                ep1.buffer_free(sim);
            }
            SimTime::ZERO
        });
        eps[0].set_am_handler(|_, _| SimTime::ZERO);
        for _ in 0..batches {
            let mut sent = 0;
            // Fill the pool.
            while eps[0].sendb(&mut sim, 1, 0, 512, Frames::Empty).is_ok() {
                sent += 1;
                assert!(sent <= pool, "pool over-granted (case {case})");
            }
            assert_eq!(sent, pool, "case {case}");
            drive(&mut sim, &eps);
        }
        // After draining, the full pool is available again.
        let mut sent = 0;
        while eps[0].sendb(&mut sim, 1, 0, 512, Frames::Empty).is_ok() {
            sent += 1;
        }
        assert_eq!(sent, pool, "case {case}");
    }
}
