//! In-process shared-memory transport for the **real substrate**
//! (`amt_core::Cluster::execute_real`): multi-"node" runs on the
//! work-stealing thread pool exchange the same wire artifacts as the
//! simulated backends — framed active messages ([`Frames`]), one-sided
//! puts with callback descriptors, pooled receive buffers
//! ([`SharedBufPool`]) — across real OS threads.
//!
//! Each node owns a mutex-guarded FIFO mailbox and a thread-safe buffer
//! pool; senders push, the destination's progress jobs drain. Lifecycle
//! counters are lock-free atomics snapshotted into an [`EngineStats`] at
//! the end of a run so real-mode `RunReport`s carry the same engine
//! counter vocabulary as virtual ones.
//!
//! With metrics enabled ([`ShmWorld::new_observed`]) each message also
//! carries its wall-clock send instant, and the world records per-stage
//! lifecycle histograms into a per-node [`MetricsRegistry`] under the
//! *same names and buckets* as the simulated backends (`am.queue_ns`,
//! `am.inject_ns`, `am.wire_ns`, `am.deliver_ns`, `am.callback_ns`, and
//! the `put.*` equivalents). Senders push/pop in one step here, so the
//! queue and inject stages are structurally zero and the deliver stage is
//! folded into the wire stage (pop == delivery); recording the zeros
//! keeps the histogram *counts* comparable across substrates.
//!
//! This transport deliberately has no flow control or aggregation: those
//! are properties of the *simulated* engines under study. What it
//! preserves is the protocol shape (ACTIVATE / GET DATA / put) and the
//! datapath mechanics (frame boundaries, buffer recycling) so the layers
//! above run unchanged.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use amt_netmodel::NodeId;
use amt_simnet::MetricsRegistry;
use bytes::{Bytes, Frames, SharedBufPool};

use crate::stats::EngineStats;

/// One message in a node's mailbox.
#[derive(Debug)]
pub enum ShmMsg {
    /// An active message: tag dispatch at the receiver.
    Am {
        /// Sending node.
        src: NodeId,
        /// AM tag (e.g. ACTIVATE or GET DATA).
        tag: u64,
        /// Payload frames, submission boundaries preserved.
        frames: Frames,
        /// Wall-clock send instant (ns since pool start; 0 unobserved).
        sent_at_ns: u64,
    },
    /// A one-sided put landing at this node.
    Put {
        /// Sending node.
        src: NodeId,
        /// Remote tag namespace of the transfer.
        r_tag: u64,
        /// The payload, if the graph carries real data (`None` in
        /// cost-only graphs — the declared size still counts below).
        data: Option<Bytes>,
        /// Declared transfer size in bytes (counted whether or not a
        /// payload travels).
        size: usize,
        /// Callback descriptor echoed to the target's completion handler.
        cb: Bytes,
        /// Wall-clock send instant (ns since pool start; 0 unobserved).
        sent_at_ns: u64,
    },
}

/// Per-node atomic lifecycle counters (see [`ShmNode::engine_stats`]).
#[derive(Debug, Default)]
struct ShmCounters {
    am_sent: AtomicU64,
    am_received: AtomicU64,
    puts_started: AtomicU64,
    put_bytes_in: AtomicU64,
    puts_remote_done: AtomicU64,
}

/// One node endpoint: mailbox + receive-buffer pool + counters.
#[derive(Debug)]
pub struct ShmNode {
    inbox: Mutex<VecDeque<ShmMsg>>,
    pool: SharedBufPool,
    counters: ShmCounters,
    /// Per-stage lifecycle histograms (empty when metrics are off).
    metrics: Mutex<MetricsRegistry>,
}

impl ShmNode {
    fn new(pool_bufs: usize, metrics: bool) -> ShmNode {
        ShmNode {
            inbox: Mutex::new(VecDeque::new()),
            pool: SharedBufPool::new(pool_bufs),
            counters: ShmCounters::default(),
            metrics: Mutex::new(MetricsRegistry::new(metrics)),
        }
    }

    /// This node's thread-safe buffer pool (encode records into it;
    /// recycle drained frames back).
    pub fn pool(&self) -> &SharedBufPool {
        &self.pool
    }

    /// Pop the oldest undelivered message, if any.
    pub fn pop(&self) -> Option<ShmMsg> {
        self.inbox.lock().expect("shm inbox").pop_front()
    }

    /// Snapshot this node's counters in the engine-stats vocabulary used
    /// by virtual-mode reports (`am_submitted` mirrors `am_sent`: the shm
    /// transport never aggregates).
    pub fn engine_stats(&self) -> EngineStats {
        let mut s = EngineStats::default();
        s.am_sent.add(self.counters.am_sent.load(Relaxed));
        s.am_submitted.add(self.counters.am_sent.load(Relaxed));
        s.am_received.add(self.counters.am_received.load(Relaxed));
        s.puts_started.add(self.counters.puts_started.load(Relaxed));
        s.put_bytes_in.add(self.counters.put_bytes_in.load(Relaxed));
        s.puts_remote_done
            .add(self.counters.puts_remote_done.load(Relaxed));
        s
    }

    /// `(pool hits, pool misses)` of this node's receive-buffer pool.
    pub fn pool_reuse(&self) -> (u64, u64) {
        self.pool.reuse_stats()
    }

    /// Clone of this node's lifecycle-stage registry (empty when the
    /// world was built without metrics).
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.lock().expect("shm metrics").clone()
    }
}

/// The world: one [`ShmNode`] per simulated node, shareable across the
/// pool's worker threads.
#[derive(Clone, Debug)]
pub struct ShmWorld {
    nodes: Arc<Vec<ShmNode>>,
    /// AM-tag → message-class label for the per-class wire counters
    /// (`msg.<label>.msgs_on_wire`); unlabeled tags fall back to `"am"`.
    labels: Arc<Mutex<HashMap<u64, &'static str>>>,
}

impl ShmWorld {
    /// Create `nodes` endpoints, each pooling at most `pool_bufs` free
    /// receive buffers. Metrics are off (zero recording cost).
    pub fn new(nodes: usize, pool_bufs: usize) -> ShmWorld {
        ShmWorld::new_observed(nodes, pool_bufs, false)
    }

    /// [`ShmWorld::new`] with per-stage lifecycle metrics recording
    /// toggled by `metrics`.
    pub fn new_observed(nodes: usize, pool_bufs: usize, metrics: bool) -> ShmWorld {
        ShmWorld {
            nodes: Arc::new(
                (0..nodes)
                    .map(|_| ShmNode::new(pool_bufs, metrics))
                    .collect(),
            ),
            labels: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Name the message class of AM tag `tag` for the per-class wire
    /// counters (mirrors `CommEngine::label_tag` on the virtual path).
    pub fn label_tag(&self, tag: u64, label: &'static str) {
        self.labels.lock().expect("shm labels").insert(tag, label);
    }

    fn tag_label(&self, tag: u64) -> &'static str {
        self.labels
            .lock()
            .expect("shm labels")
            .get(&tag)
            .copied()
            .unwrap_or("am")
    }

    /// Record a lifecycle-stage duration into `node`'s registry (no-op
    /// when metrics are off). Handlers above the transport use this for
    /// the `*.callback_ns` stages the transport cannot see.
    pub fn record_stage(&self, node: NodeId, name: &str, ns: u64) {
        self.nodes[node]
            .metrics
            .lock()
            .expect("shm metrics")
            .record(name, ns);
    }

    /// Every node's stage registry merged into one (cross-node report).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut all = MetricsRegistry::new(true);
        for n in self.nodes.iter() {
            all.merge(&n.metrics.lock().expect("shm metrics"));
        }
        all
    }

    /// Number of node endpoints.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the world has no nodes (it never does in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node endpoint `n`.
    pub fn node(&self, n: NodeId) -> &ShmNode {
        &self.nodes[n]
    }

    /// Send an active message from `src` to `dst` at wall-clock instant
    /// `now_ns` (ns since pool start). The caller is responsible for
    /// scheduling a progress job at `dst` afterwards.
    pub fn send_am(&self, src: NodeId, dst: NodeId, tag: u64, frames: Frames, now_ns: u64) {
        self.nodes[src].counters.am_sent.fetch_add(1, Relaxed);
        {
            let mut m = self.nodes[src].metrics.lock().expect("shm metrics");
            if m.enabled() {
                // Push == send on this transport: no command queue, no
                // injection delay. Zero-valued samples keep stage counts
                // aligned with the virtual backends.
                m.record("am.queue_ns", 0);
                m.record("am.inject_ns", 0);
                let label = self.tag_label(tag);
                m.count(&format!("msg.{label}.msgs_on_wire"), 1);
                m.record(
                    &format!("msg.{label}.records_per_msg"),
                    frames.frame_count() as u64,
                );
            }
        }
        self.nodes[dst]
            .inbox
            .lock()
            .expect("shm inbox")
            .push_back(ShmMsg::Am {
                src,
                tag,
                frames,
                sent_at_ns: now_ns,
            });
    }

    /// Issue a one-sided put of `size` declared bytes (payload optional)
    /// from `src` landing at `dst` at wall-clock instant `now_ns`, with
    /// callback descriptor `cb`.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        src: NodeId,
        dst: NodeId,
        r_tag: u64,
        data: Option<Bytes>,
        size: usize,
        cb: Bytes,
        now_ns: u64,
    ) {
        self.nodes[src].counters.puts_started.fetch_add(1, Relaxed);
        {
            let mut m = self.nodes[src].metrics.lock().expect("shm metrics");
            if m.enabled() {
                m.record("put.queue_ns", 0);
                m.record("put.inject_ns", 0);
                m.count("msg.data.msgs_on_wire", 1);
            }
        }
        self.nodes[dst]
            .inbox
            .lock()
            .expect("shm inbox")
            .push_back(ShmMsg::Put {
                src,
                r_tag,
                data,
                size,
                cb,
                sent_at_ns: now_ns,
            });
    }

    /// Record delivery bookkeeping for a drained message (the caller
    /// invokes this once per popped [`ShmMsg`], after handling it).
    /// `now_ns` is the pop instant and `sent_at_ns` the message's send
    /// stamp; their difference is the wire stage (mailbox dwell time).
    pub fn delivered(
        &self,
        at: NodeId,
        msg_was_put: bool,
        size: usize,
        now_ns: u64,
        sent_at_ns: u64,
    ) {
        let c = &self.nodes[at].counters;
        if msg_was_put {
            c.put_bytes_in.fetch_add(size as u64, Relaxed);
            c.puts_remote_done.fetch_add(1, Relaxed);
        } else {
            c.am_received.fetch_add(1, Relaxed);
        }
        let mut m = self.nodes[at].metrics.lock().expect("shm metrics");
        if m.enabled() {
            let prefix = if msg_was_put { "put" } else { "am" };
            let wire = now_ns.saturating_sub(sent_at_ns);
            m.record(&format!("{prefix}.wire_ns"), wire);
            // Pop == delivery: handlers run straight off the mailbox.
            m.record(&format!("{prefix}.deliver_ns"), 0);
        }
    }
}

#[cfg(test)]
mod shm_tests {
    use super::*;

    #[test]
    fn messages_flow_and_counters_track() {
        let w = ShmWorld::new(3, 8);
        assert_eq!(w.len(), 3);
        let mut f = Frames::new();
        f.push(Bytes::from_static(b"rec0"));
        f.push(Bytes::from_static(b"rec1"));
        w.send_am(0, 2, 1, f, 10);
        w.put(
            1,
            2,
            1,
            Some(Bytes::from(vec![7u8; 64])),
            64,
            {
                let mut b = w.node(1).pool().take(16);
                use bytes::BufMut;
                b.put_u64_le(42);
                b.put_u64_le(9);
                b.freeze()
            },
            20,
        );

        let m1 = w.node(2).pop().expect("am first (FIFO)");
        match &m1 {
            ShmMsg::Am {
                src,
                tag,
                frames,
                sent_at_ns,
            } => {
                assert_eq!((*src, *tag), (0, 1));
                assert_eq!(frames.frame_count(), 2);
                assert_eq!(*sent_at_ns, 10);
            }
            other => panic!("expected Am, got {other:?}"),
        }
        w.delivered(2, false, 0, 15, 10);
        let m2 = w.node(2).pop().expect("put second");
        match m2 {
            ShmMsg::Put { size, data, cb, .. } => {
                assert_eq!(size, 64);
                assert_eq!(data.expect("payload").len(), 64);
                assert_eq!(cb.len(), 16);
            }
            other => panic!("expected Put, got {other:?}"),
        }
        w.delivered(2, true, 64, 30, 20);
        assert!(w.node(2).pop().is_none());

        let s0 = w.node(0).engine_stats();
        let s2 = w.node(2).engine_stats();
        assert_eq!(s0.am_sent.get(), 1);
        assert_eq!(s2.am_received.get(), 1);
        assert_eq!(s2.put_bytes_in.get(), 64);
        assert_eq!(s2.puts_remote_done.get(), 1);
        assert_eq!(w.node(1).engine_stats().puts_started.get(), 1);
    }

    #[test]
    fn observed_world_records_lifecycle_stages() {
        let w = ShmWorld::new_observed(2, 8, true);
        let mut f = Frames::new();
        f.push(Bytes::from_static(b"rec"));
        w.send_am(0, 1, 1, f, 100);
        let Some(ShmMsg::Am {
            frames, sent_at_ns, ..
        }) = w.node(1).pop()
        else {
            panic!("message lost")
        };
        w.node(1).pool().recycle_frames(frames);
        w.delivered(1, false, 0, 350, sent_at_ns);
        w.record_stage(1, "am.callback_ns", 40);
        let m = w.merged_metrics();
        assert_eq!(m.hist("am.queue_ns").unwrap().count(), 1);
        assert_eq!(m.hist("am.inject_ns").unwrap().count(), 1);
        assert_eq!(m.hist("am.wire_ns").unwrap().count(), 1);
        assert_eq!(m.hist("am.wire_ns").unwrap().sum() as u64, 250);
        assert_eq!(m.hist("am.deliver_ns").unwrap().count(), 1);
        assert_eq!(m.hist("am.callback_ns").unwrap().count(), 1);

        // A world built without metrics records nothing anywhere.
        let w2 = ShmWorld::new(2, 8);
        w2.send_am(0, 1, 1, Frames::new(), 5);
        w2.record_stage(1, "am.callback_ns", 40);
        assert!(w2.merged_metrics().is_empty());
    }

    #[test]
    fn pool_recycles_across_send_receive() {
        let w = ShmWorld::new(2, 8);
        // Simulate steady-state record traffic: encode from the pool,
        // ship, decode, recycle at the receiver's pool.
        for round in 0..10 {
            let mut b = w.node(0).pool().take(32);
            use bytes::BufMut;
            b.put_u64_le(round);
            w.send_am(0, 1, 1, Frames::One(b.freeze()), 0);
            let Some(ShmMsg::Am { frames, .. }) = w.node(1).pop() else {
                panic!("message lost");
            };
            w.delivered(1, false, 0, 0, 0);
            w.node(1).pool().recycle_frames(frames);
        }
        let (hits, misses) = w.node(1).pool_reuse();
        assert_eq!(hits + misses, 0, "node 1 never takes; it only recycles");
        assert!(w.node(1).pool().free_len() > 0, "frames were reclaimed");
    }
}
