//! Tree-shaped collectives over the communication engine.
//!
//! The scaling wall at high node counts is message *rate*: flat fan-out
//! (one unicast per peer) puts O(N) messages on a single root's wire. This
//! module provides the deterministic k-ary tree topology used by the
//! multicast activation path and a small `barrier` / `bcast` / `reduce`
//! layer built on it:
//!
//! * [`kary_parent`] / [`kary_children`] — the tree shape itself, computed
//!   from dense node ids with *relative-rank rooting*: node `r`'s position
//!   in the tree rooted at `root` is `(r + n - root) % n`, so every root
//!   gets the same balanced shape and no rank is special.
//! * [`TreeReduce`] — a thread-safe reduction state machine (used by the
//!   real path's quiescence detection): every node contributes a value,
//!   partial sums climb the tree, the root ends up with the total.
//! * [`TreeBcast`] — the descending counterpart: who do I forward to, who
//!   do I hear from.
//! * [`EngineCollectives`] — barrier/bcast/reduce over a set of simulated
//!   [`CommEngine`]s, carried as ordinary active messages on a registered
//!   tag (so they flow through whatever backend — and batching layer — the
//!   engines are configured with).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use amt_simnet::{Sim, SimTime};
use bytes::Bytes;

use crate::engine::{AmEvent, CommEngine};

/// Parent of `rank` in the k-ary tree over `n` nodes rooted at `root`.
/// `None` for the root itself. Panics on a degenerate tree (`k < 2`,
/// `n == 0`, or out-of-range ranks).
pub fn kary_parent(rank: usize, root: usize, n: usize, k: usize) -> Option<usize> {
    assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
    assert!(n > 0 && rank < n && root < n);
    let rel = (rank + n - root) % n;
    if rel == 0 {
        return None;
    }
    let parent_rel = (rel - 1) / k;
    Some((parent_rel + root) % n)
}

/// Children of `rank` in the k-ary tree over `n` nodes rooted at `root`,
/// in ascending relative-rank order (deterministic).
pub fn kary_children(rank: usize, root: usize, n: usize, k: usize) -> Vec<usize> {
    assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
    assert!(n > 0 && rank < n && root < n);
    let rel = (rank + n - root) % n;
    let first = rel * k + 1;
    (first..first + k)
        .take_while(|&c| c < n)
        .map(|c| (c + root) % n)
        .collect()
}

/// A k-ary broadcast tree over `n` dense node ids: the topology questions
/// the descending (bcast) direction needs.
#[derive(Debug, Clone, Copy)]
pub struct TreeBcast {
    pub root: usize,
    pub n: usize,
    pub k: usize,
}

impl TreeBcast {
    pub fn new(n: usize, root: usize, k: usize) -> Self {
        assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
        assert!(n > 0 && root < n);
        TreeBcast { root, n, k }
    }

    /// Who `node` forwards a descending message to.
    pub fn children(&self, node: usize) -> Vec<usize> {
        kary_children(node, self.root, self.n, self.k)
    }

    /// Who `node` hears a descending message from (`None` at the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        kary_parent(node, self.root, self.n, self.k)
    }
}

/// What a [`TreeReduce`] participant must do after contributing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceStep {
    /// This node's subtree is complete: send `partial` to `parent`.
    Send { parent: usize, partial: u64 },
    /// The root's subtree is complete: the reduction is done.
    Done(u64),
    /// Contributions still outstanding in this node's subtree.
    Wait,
}

/// Thread-safe single-shot sum reduction over the k-ary tree. Every node
/// calls [`TreeReduce::contribute`] exactly once with its own value; each
/// message a node receives from a child feeds [`TreeReduce::arrive`]. The
/// caller moves `Send` steps between nodes (as messages on its transport);
/// when the root's subtree completes, [`TreeReduce::result`] holds the
/// total.
pub struct TreeReduce {
    root: usize,
    n: usize,
    k: usize,
    /// Outstanding inputs per node: one per child, plus the node's own
    /// contribution.
    pending: Vec<AtomicU32>,
    /// Partial sum per node.
    acc: Vec<AtomicU64>,
    result: AtomicU64,
    done: AtomicBool,
}

impl TreeReduce {
    pub fn new(n: usize, root: usize, k: usize) -> Self {
        assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
        assert!(n > 0 && root < n);
        let pending = (0..n)
            .map(|r| AtomicU32::new(kary_children(r, root, n, k).len() as u32 + 1))
            .collect();
        TreeReduce {
            root,
            n,
            k,
            pending,
            acc: (0..n).map(|_| AtomicU64::new(0)).collect(),
            result: AtomicU64::new(0),
            done: AtomicBool::new(false),
        }
    }

    /// This node's own contribution.
    pub fn contribute(&self, node: usize, value: u64) -> ReduceStep {
        self.add(node, value)
    }

    /// A child's partial sum arriving at `node`.
    pub fn arrive(&self, node: usize, partial: u64) -> ReduceStep {
        self.add(node, partial)
    }

    fn add(&self, node: usize, value: u64) -> ReduceStep {
        assert!(node < self.n);
        self.acc[node].fetch_add(value, Ordering::SeqCst);
        // The RMW chain on `pending` release-sequences the accumulator
        // adds: the last decrementer observes every prior fetch_add.
        let prev = self.pending[node].fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "node {node} over-contributed to reduction");
        if prev != 1 {
            return ReduceStep::Wait;
        }
        let partial = self.acc[node].load(Ordering::SeqCst);
        if node == self.root {
            self.result.store(partial, Ordering::SeqCst);
            self.done.store(true, Ordering::SeqCst);
            ReduceStep::Done(partial)
        } else {
            let parent =
                kary_parent(node, self.root, self.n, self.k).expect("non-root node has a parent");
            ReduceStep::Send { parent, partial }
        }
    }

    /// The reduced total, once the root's subtree has completed.
    pub fn result(&self) -> Option<u64> {
        self.done
            .load(Ordering::SeqCst)
            .then(|| self.result.load(Ordering::SeqCst))
    }
}

// ---------------------------------------------------------------------
// Collectives over simulated engines
// ---------------------------------------------------------------------

/// Wire kinds on the collective tag (first byte of each record frame).
const COLL_BCAST: u8 = 0;
const COLL_REDUCE_UP: u8 = 1;

/// Completion hook of a reduce: runs once at the root with the total.
pub type ReduceDoneFn = Box<dyn FnOnce(&mut Sim, u64)>;
/// Delivery hook of a bcast: runs at every node with the payload.
pub type BcastDeliverFn = Rc<dyn Fn(&mut Sim, usize, &Bytes)>;

struct CollState {
    /// In-flight reduction, if any (one collective at a time).
    reduce: Option<Rc<TreeReduce>>,
    on_reduce_done: Option<ReduceDoneFn>,
    /// Delivery hook of the in-flight broadcast, if any.
    on_bcast: Option<BcastDeliverFn>,
    bcast_tree: Option<TreeBcast>,
}

/// Barrier / bcast / reduce over a world of simulated [`CommEngine`]s. The
/// collective traffic rides a caller-registered AM tag through the normal
/// engine datapath (funnel, aggregation, batching, backend), so the
/// simulated cost of a collective is exactly what the configured backend
/// charges for its messages.
pub struct EngineCollectives {
    engines: Vec<Rc<CommEngine>>,
    tag: u64,
    k: usize,
    state: Rc<RefCell<CollState>>,
}

impl EngineCollectives {
    /// Register the collective layer on every engine under `tag` (must be
    /// unused). `k` is the tree arity.
    pub fn attach(sim: &mut Sim, engines: &[Rc<CommEngine>], tag: u64, k: usize) -> Rc<Self> {
        assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
        let coll = Rc::new(EngineCollectives {
            engines: engines.to_vec(),
            tag,
            k,
            state: Rc::new(RefCell::new(CollState {
                reduce: None,
                on_reduce_done: None,
                on_bcast: None,
                bcast_tree: None,
            })),
        });
        for (node, engine) in engines.iter().enumerate() {
            let c = coll.clone();
            engine.register_am(
                sim,
                tag,
                Rc::new(move |sim, _eng, ev| c.on_am(sim, node, ev)),
            );
        }
        coll
    }

    fn on_am(&self, sim: &mut Sim, node: usize, ev: AmEvent) -> SimTime {
        // Each collective record is one frame; batching may pack several
        // frames into one delivered message.
        let frames: Vec<Bytes> = ev.data.iter().cloned().collect();
        for frame in frames {
            match frame[0] {
                COLL_BCAST => {
                    let payload = frame.slice(1..frame.len());
                    let (cb, tree) = {
                        let st = self.state.borrow();
                        (
                            st.on_bcast
                                .clone()
                                .expect("bcast record with no bcast in flight"),
                            st.bcast_tree.expect("bcast record with no bcast in flight"),
                        )
                    };
                    cb(sim, node, &payload);
                    for child in tree.children(node) {
                        self.send_record(sim, node, child, COLL_BCAST, &payload);
                    }
                }
                COLL_REDUCE_UP => {
                    let mut le = [0u8; 8];
                    le.copy_from_slice(&frame[1..9]);
                    let partial = u64::from_le_bytes(le);
                    let reduce = self
                        .state
                        .borrow()
                        .reduce
                        .clone()
                        .expect("reduce record with no reduction in flight");
                    self.step(sim, node, reduce.arrive(node, partial));
                }
                kind => panic!("unknown collective record kind {kind}"),
            }
        }
        SimTime::ZERO
    }

    fn send_record(&self, sim: &mut Sim, from: usize, to: usize, kind: u8, payload: &[u8]) {
        let mut buf = Vec::with_capacity(1 + payload.len());
        buf.push(kind);
        buf.extend_from_slice(payload);
        let size = buf.len();
        self.engines[from].send_am(sim, to, self.tag, size, Some(Bytes::from(buf)));
    }

    fn step(&self, sim: &mut Sim, node: usize, step: ReduceStep) {
        match step {
            ReduceStep::Wait => {}
            ReduceStep::Send { parent, partial } => {
                self.send_record(sim, node, parent, COLL_REDUCE_UP, &partial.to_le_bytes());
            }
            ReduceStep::Done(total) => {
                let mut st = self.state.borrow_mut();
                st.reduce = None;
                let cb = st.on_reduce_done.take().expect("reduction done twice");
                drop(st);
                cb(sim, total);
            }
        }
    }

    /// Sum-reduce `contributions[node]` from every node to `root`;
    /// `on_done` runs (in virtual time, at the root) with the total.
    pub fn reduce(
        &self,
        sim: &mut Sim,
        root: usize,
        contributions: &[u64],
        on_done: impl FnOnce(&mut Sim, u64) + 'static,
    ) {
        let n = self.engines.len();
        assert_eq!(contributions.len(), n);
        let reduce = Rc::new(TreeReduce::new(n, root, self.k));
        {
            let mut st = self.state.borrow_mut();
            assert!(st.reduce.is_none(), "collective already in flight");
            st.reduce = Some(reduce.clone());
            st.on_reduce_done = Some(Box::new(on_done));
        }
        // Leaves complete immediately and climb; inner nodes wait for
        // their children's records.
        for (node, &value) in contributions.iter().enumerate() {
            self.step(sim, node, reduce.contribute(node, value));
        }
    }

    /// Barrier: a reduction of ones; completes at `root` once every node
    /// has entered.
    pub fn barrier(&self, sim: &mut Sim, root: usize, on_done: impl FnOnce(&mut Sim) + 'static) {
        let ones = vec![1u64; self.engines.len()];
        let n = self.engines.len() as u64;
        self.reduce(sim, root, &ones, move |sim, total| {
            assert_eq!(total, n, "barrier lost a participant");
            on_done(sim);
        });
    }

    /// Broadcast `payload` from `root` down the tree; `deliver` runs at
    /// every node (root included) with the payload — bitwise identical at
    /// each hop, forwarded zero-copy.
    pub fn bcast(&self, sim: &mut Sim, root: usize, payload: Bytes, deliver: BcastDeliverFn) {
        let tree = TreeBcast::new(self.engines.len(), root, self.k);
        {
            let mut st = self.state.borrow_mut();
            st.on_bcast = Some(deliver.clone());
            st.bcast_tree = Some(tree);
        }
        deliver(sim, root, &payload);
        for child in tree.children(root) {
            self.send_record(sim, root, child, COLL_BCAST, &payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reachable(root: usize, n: usize, k: usize) -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            assert!(!seen[r], "cycle through {r}");
            seen[r] = true;
            stack.extend(kary_children(r, root, n, k));
        }
        seen
    }

    #[test]
    fn kary_tree_spans_and_parents_match() {
        for &(n, root, k) in &[(1, 0, 2), (2, 1, 2), (7, 3, 2), (16, 0, 4), (33, 17, 3)] {
            assert!(reachable(root, n, k).iter().all(|&s| s));
            for r in 0..n {
                match kary_parent(r, root, n, k) {
                    None => assert_eq!(r, root),
                    Some(p) => assert!(kary_children(p, root, n, k).contains(&r)),
                }
            }
        }
    }

    #[test]
    fn kary_tree_conformance_at_scale() {
        // Cluster-scale rank counts (the scale bench runs up to 1024
        // simulated nodes): the tree must still span, stay acyclic, keep
        // parent/child agreement, and respect the arity bound everywhere.
        for &(n, root, k) in &[(128, 0, 2), (128, 77, 4), (1024, 0, 4), (1024, 511, 3)] {
            assert!(reachable(root, n, k).iter().all(|&s| s), "n={n} k={k}");
            for r in 0..n {
                let children = kary_children(r, root, n, k);
                assert!(children.len() <= k, "rank {r} exceeds arity {k}");
                for &c in &children {
                    assert_eq!(kary_parent(c, root, n, k), Some(r), "n={n} k={k} c={c}");
                }
                match kary_parent(r, root, n, k) {
                    None => assert_eq!(r, root),
                    Some(p) => {
                        assert!(p < n);
                        assert!(kary_children(p, root, n, k).contains(&r), "n={n} r={r}");
                    }
                }
            }
        }
    }

    /// Drive a [`TreeReduce`] to fixpoint with every rank contributing
    /// `rank + 1`, returning the root's result.
    fn drive_reduce(n: usize, root: usize, k: usize) -> Option<u64> {
        let red = TreeReduce::new(n, root, k);
        let mut inbox: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut steps: Vec<ReduceStep> = (0..n).map(|r| red.contribute(r, r as u64 + 1)).collect();
        loop {
            let mut progressed = false;
            for s in std::mem::take(&mut steps) {
                if let ReduceStep::Send { parent, partial } = s {
                    inbox[parent].push(partial);
                    progressed = true;
                }
            }
            for (node, mail) in inbox.iter_mut().enumerate() {
                for partial in std::mem::take(mail) {
                    steps.push(red.arrive(node, partial));
                }
            }
            if !progressed && steps.is_empty() {
                break;
            }
        }
        red.result()
    }

    #[test]
    fn tree_reduce_sums_at_scale() {
        // 128- and 1024-rank reductions (non-zero roots included) complete
        // and produce the exact integer sum.
        for &(n, root, k) in &[(128, 0, 2), (128, 99, 4), (1024, 0, 8), (1024, 1023, 3)] {
            assert_eq!(
                drive_reduce(n, root, k),
                Some((1..=n as u64).sum()),
                "n={n} root={root} k={k}"
            );
        }
    }

    #[test]
    fn tree_reduce_sums_in_any_order() {
        let n = 9;
        let red = TreeReduce::new(n, 2, 3);
        let mut inbox: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut steps: Vec<ReduceStep> = (0..n).map(|r| red.contribute(r, r as u64 + 1)).collect();
        // Drive Send steps to fixpoint.
        loop {
            let mut progressed = false;
            for s in std::mem::take(&mut steps) {
                if let ReduceStep::Send { parent, partial } = s {
                    inbox[parent].push(partial);
                    progressed = true;
                }
            }
            for (node, mail) in inbox.iter_mut().enumerate() {
                for partial in std::mem::take(mail) {
                    steps.push(red.arrive(node, partial));
                }
            }
            if !progressed && steps.is_empty() {
                break;
            }
        }
        assert_eq!(red.result(), Some((1..=n as u64).sum()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_unary_tree() {
        kary_children(0, 0, 4, 1);
    }
}
