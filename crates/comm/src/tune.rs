//! Self-tuning comm-engine controller: per-destination AIMD adaptation of
//! the engine's tuning knobs, driven by the lifecycle metrics layer.
//!
//! The LCI v2 line of work argues the knobs that dominate real deployments
//! — the eager/rendezvous threshold, the aggregation window, the fetch
//! depth — must track the workload, not a static config. This module is
//! that feedback loop:
//!
//! * **Eager-put threshold** (per destination): rendezvous puts that would
//!   have fit under the eager ceiling are *near misses* — each one paid an
//!   RTS/RTR round trip a buffered send would have avoided. A near-miss
//!   epoch raises the destination's threshold additively; packet-pool
//!   back-pressure (send retries, deferred puts) cuts it multiplicatively.
//! * **Batching window** (per destination): batching trades per-record
//!   latency for wire message rate, so a hot link (many AM records per
//!   epoch) only grows its rate-limit window while the AM wire-stage mean
//!   shows *sustained* degradation ([`CongestionMeter`]) — a rate-bound
//!   control plane. Links that went quiet shed theirs so sporadic
//!   critical-path sends pay no hold-back.
//! * **GET window / transfer depth** (per node): the consumer-side fetch
//!   window widens while the put wire-stage latency (from the
//!   `MetricsRegistry` lifecycle histograms) holds, and halves when the
//!   epoch-over-epoch mean degrades — classic AIMD on a congestion signal.
//!
//! Decisions are keyed to `(node, epoch)` where `epoch = now / epoch_ns`
//! in **virtual time**: every signal is node-local and per-node event
//! order is byte-reproducible at any `--jobs` or `--islands` count, so an
//! adaptive run is exactly as deterministic as a static one. Epochs are
//! evaluated lazily on the submission paths — the controller schedules no
//! events of its own, so quiescence detection and the island lookahead
//! rounds see an unchanged simulation. The same [`WindowState`] controller
//! runs wall-clock-sampled on the real substrate (`real.rs` samples it
//! from the shared-memory GET gate).

use std::collections::HashMap;

use amt_netmodel::NodeId;

/// Controller parameters. Defaults keep the controller **off**; bounds and
/// steps apply to both the virtual-time and wall-clock instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneConfig {
    /// Master switch. Off ⇒ every knob stays at its static configuration
    /// and the engine's behaviour is byte-identical to a build without the
    /// controller.
    pub enabled: bool,
    /// Adaptation cadence: decisions fire on the first submission after
    /// each `epoch_ns` boundary (virtual ns in the simulator, wall-clock
    /// ns on the real substrate).
    pub epoch_ns: u64,
    /// Eager-put threshold bounds and additive step, bytes. `eager_max`
    /// must stay under the LCI buffered-send ceiling minus the handshake
    /// header (`LciCosts::buf_max` is asserted by `sendb`).
    pub eager_min: usize,
    pub eager_max: usize,
    pub eager_step: usize,
    /// Batching-window bounds and additive step, virtual ns.
    pub window_min_ns: u64,
    pub window_max_ns: u64,
    pub window_step_ns: u64,
    /// AM records per epoch that make a link *hot* (raise its window);
    /// links at or below a quarter of this cut theirs.
    pub window_hot_records: u64,
    /// GET-window bounds and additive step, flows.
    pub get_window_min: u64,
    pub get_window_max: u64,
    pub get_window_step: u64,
    /// MPI concurrent-transfer depth bounds and additive step, slots.
    pub xfer_min: u64,
    pub xfer_max: u64,
    pub xfer_step: u64,
    /// Relative wire-latency degradation (in 1/8ths) that counts as one
    /// epoch of growth: `4` means a mean more than 50% above the previous
    /// epoch's. Two consecutive growth epochs ([`CongestionMeter`]) make a
    /// congestion event; single-epoch spikes are workload-phase noise.
    pub congestion_eighths: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            enabled: false,
            epoch_ns: 200_000,
            eager_min: 1024,
            // LciCosts::buf_max is 12 KiB and the put handshake adds a
            // ~32-byte header: stay safely inside the sendb assert.
            eager_max: 12 * 1024 - 256,
            eager_step: 2048,
            window_min_ns: 0,
            window_max_ns: 1_000_000,
            window_step_ns: 100_000,
            window_hot_records: 8,
            get_window_min: 4,
            get_window_max: 4096,
            get_window_step: 32,
            xfer_min: 4,
            xfer_max: 256,
            xfer_step: 8,
            congestion_eighths: 4,
        }
    }
}

impl TuneConfig {
    /// An enabled controller with the default cadence and bounds.
    pub fn enabled() -> Self {
        TuneConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// AIMD bounds of the consumer-side GET window.
    pub fn get_window_bounds(&self) -> WindowBounds {
        WindowBounds {
            min: self.get_window_min,
            max: self.get_window_max,
            step: self.get_window_step,
            congestion_eighths: self.congestion_eighths,
        }
    }

    /// AIMD bounds of the MPI concurrent-transfer depth.
    pub fn xfer_bounds(&self) -> WindowBounds {
        WindowBounds {
            min: self.xfer_min,
            max: self.xfer_max,
            step: self.xfer_step,
            congestion_eighths: self.congestion_eighths,
        }
    }
}

/// Clamp range, additive step and congestion tolerance of one
/// [`WindowState`] controller.
#[derive(Debug, Clone, Copy)]
pub struct WindowBounds {
    pub min: u64,
    pub max: u64,
    pub step: u64,
    pub congestion_eighths: u64,
}

/// One additive-increase / multiplicative-decrease step: `cut` halves the
/// value (it wins over `raise`), `raise` adds `step`; the result is clamped
/// to `[min, max]`. Pure integer arithmetic — both substrates share it.
pub fn aimd_step(value: u64, raise: bool, cut: bool, step: u64, min: u64, max: u64) -> u64 {
    let v = if cut {
        value / 2
    } else if raise {
        value.saturating_add(step)
    } else {
        value
    };
    v.clamp(min, max)
}

/// Sustained-growth detector over a stream of per-epoch latency means.
/// One epoch of growth is indistinguishable from workload-phase noise
/// (e.g. a TLR factorization moving to larger tiles); two consecutive
/// epochs each growing beyond the tolerance is treated as congestion.
/// Detection re-arms itself, so a sustained plateau after a multiplicative
/// cut does not trigger again until the mean *resumes* growing.
#[derive(Debug, Clone, Default)]
pub struct CongestionMeter {
    last_mean_ns: u64,
    streak: u8,
}

impl CongestionMeter {
    /// Feed one epoch's flow count and latency sum; `true` on the epoch
    /// that completes two consecutive beyond-tolerance growth steps. An
    /// idle epoch (no flows) drops the stale baseline.
    pub fn epoch(&mut self, eighths: u64, flows: u64, lat_sum_ns: u64) -> bool {
        if flows == 0 {
            self.last_mean_ns = 0;
            self.streak = 0;
            return false;
        }
        let mean = lat_sum_ns / flows;
        let prev = self.last_mean_ns;
        self.last_mean_ns = mean;
        let grew = prev > 0 && mean > prev + prev * eighths / 8;
        self.streak = if grew {
            self.streak.saturating_add(1)
        } else {
            0
        };
        if self.streak >= 2 {
            self.streak = 0;
            return true;
        }
        false
    }
}

/// The window controller shared by both substrates: feed it one epoch's
/// flow count and latency sum and it AIMD-adjusts the window — raise while
/// the per-flow mean holds, halve on sustained degradation beyond the
/// configured congestion fraction ([`CongestionMeter`]). On the real
/// substrate the "latency" is wall-clock ns per completed flow (inverse
/// goodput), sampled from the shared-memory GET gate.
#[derive(Debug, Clone)]
pub struct WindowState {
    pub window: u64,
    meter: CongestionMeter,
}

impl WindowState {
    pub fn new(start: u64) -> Self {
        WindowState {
            window: start,
            meter: CongestionMeter::default(),
        }
    }

    /// Close one epoch. Returns `+1` (raised), `-1` (cut) or `0`
    /// (unchanged — e.g. an idle epoch, which also resets the baseline).
    pub fn epoch(&mut self, b: &WindowBounds, flows: u64, lat_sum_ns: u64) -> i8 {
        if flows == 0 {
            self.meter.epoch(b.congestion_eighths, 0, 0);
            return 0;
        }
        let congested = self.meter.epoch(b.congestion_eighths, flows, lat_sum_ns);
        let next = aimd_step(self.window, !congested, congested, b.step, b.min, b.max);
        let dir = match next.cmp(&self.window) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        };
        self.window = next;
        dir
    }
}

/// Per-destination adaptive state plus its epoch accumulators.
#[derive(Debug, Clone)]
struct LinkState {
    /// Current eager-put ceiling for this destination, bytes.
    eager: u64,
    /// Current batching window for this destination, ns.
    window_ns: u64,
    /// Epoch accumulators, reset at every decision.
    puts: u64,
    near_miss: u64,
    pressure: u64,
    records: u64,
}

/// Lifetime adaptation-event counts, surfaced as `tune.*` counters in
/// `metrics_report` (all zeros when the controller is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct TuneEvents {
    pub epochs: u64,
    pub eager_raise: u64,
    pub eager_cut: u64,
    pub window_raise: u64,
    pub window_cut: u64,
    pub getwin_raise: u64,
    pub getwin_cut: u64,
    pub xfer_raise: u64,
    pub xfer_cut: u64,
}

/// The per-engine (per-node) controller. Owned by `CommEngine` behind a
/// `RefCell`; every method is cheap and allocation-free on the hot path.
#[derive(Debug)]
pub struct Tuner {
    cfg: TuneConfig,
    /// Static starting points, copied from the engine configuration.
    base_eager: u64,
    base_window_ns: u64,
    /// Index of the last epoch a decision ran for.
    epoch: u64,
    links: HashMap<NodeId, LinkState>,
    /// Consumer-side GET window (flows), stepped on the put wire signal.
    get_window: WindowState,
    /// MPI concurrent-transfer depth (slots), same put wire signal.
    xfer: WindowState,
    /// AM wire-latency congestion detector: hot links only grow batching
    /// windows while the *control plane* shows sustained degradation —
    /// batching trades latency for message rate, so a latency-bound
    /// workload (hot links, healthy wire) must not start coalescing.
    am_meter: CongestionMeter,
    /// Wire-stage histogram positions at the last epoch: (count, sum_ns)
    /// of delivered AM records / put flows, from the `MetricsRegistry`.
    am_seen: (u64, u64),
    put_seen: (u64, u64),
    pub events: TuneEvents,
}

impl Tuner {
    /// `get_window = 0` leaves the GET window uninitialized: the first
    /// [`Tuner::get_window_base`] query adopts the substrate's static base
    /// (the engine does not know the cluster's GET window at build time).
    pub fn new(
        cfg: TuneConfig,
        eager_put_max: usize,
        batch_window_ns: u64,
        get_window: u64,
        max_transfers: u64,
    ) -> Self {
        let base_eager = (eager_put_max as u64).clamp(cfg.eager_min as u64, cfg.eager_max as u64);
        let get0 = if get_window == 0 {
            0
        } else {
            get_window.clamp(cfg.get_window_min, cfg.get_window_max)
        };
        let xfer0 = max_transfers.clamp(cfg.xfer_min, cfg.xfer_max);
        Tuner {
            base_eager,
            base_window_ns: batch_window_ns.clamp(cfg.window_min_ns, cfg.window_max_ns),
            epoch: 0,
            links: HashMap::new(),
            get_window: WindowState::new(get0),
            xfer: WindowState::new(xfer0),
            am_meter: CongestionMeter::default(),
            am_seen: (0, 0),
            put_seen: (0, 0),
            events: TuneEvents::default(),
            cfg,
        }
    }

    pub fn config(&self) -> &TuneConfig {
        &self.cfg
    }

    fn link(&mut self, dst: NodeId) -> &mut LinkState {
        let (eager, window_ns) = (self.base_eager, self.base_window_ns);
        self.links.entry(dst).or_insert_with(|| LinkState {
            eager,
            window_ns,
            puts: 0,
            near_miss: 0,
            pressure: 0,
            records: 0,
        })
    }

    /// Current eager-put ceiling towards `dst`, bytes.
    pub fn eager_put_max(&self, dst: NodeId) -> usize {
        self.links.get(&dst).map_or(self.base_eager, |l| l.eager) as usize
    }

    /// Current batching window towards `dst`, ns.
    pub fn batch_window(&self, dst: NodeId) -> u64 {
        self.links
            .get(&dst)
            .map_or(self.base_window_ns, |l| l.window_ns)
    }

    /// Current consumer-side GET window, flows.
    pub fn get_window(&self) -> u64 {
        self.get_window.window
    }

    /// Consumer-side GET window, adopting `base` on the first query if the
    /// controller was built without one.
    pub fn get_window_base(&mut self, base: u64) -> u64 {
        if self.get_window.window == 0 && base > 0 {
            self.get_window.window = base.clamp(self.cfg.get_window_min, self.cfg.get_window_max);
        }
        self.get_window.window
    }

    /// Current MPI concurrent-transfer depth, slots.
    pub fn max_transfers(&self) -> u64 {
        self.xfer.window
    }

    /// Account one put submission towards `dst`. A rendezvous put that
    /// would have fit under the adaptive ceiling is a near miss — the
    /// raise signal for the eager threshold.
    pub fn note_put(&mut self, dst: NodeId, size: usize) {
        let eager_max = self.cfg.eager_max as u64;
        let l = self.link(dst);
        l.puts += 1;
        if (size as u64) > l.eager && (size as u64) <= eager_max {
            l.near_miss += 1;
        }
    }

    /// Account one AM record submitted towards `dst` (the batching-window
    /// heat signal).
    pub fn note_am(&mut self, dst: NodeId) {
        self.link(dst).records += 1;
    }

    /// Account back-pressure towards `dst`: a backend send retry or a
    /// deferred transfer. The multiplicative-decrease signal.
    pub fn note_pressure(&mut self, dst: NodeId) {
        self.link(dst).pressure += 1;
    }

    /// Lazily advance to the epoch containing `now_ns`, running one AIMD
    /// decision round if a boundary was crossed. `am_wire` / `put_wire`
    /// are the current (count, sum_ns) of the AM and put wire-stage
    /// lifecycle histograms; deltas since the previous round are the
    /// congestion signals (AM → batching windows, put → GET window and
    /// transfer depth). Returns `true` when a decision round ran.
    pub fn maybe_epoch(&mut self, now_ns: u64, am_wire: (u64, u64), put_wire: (u64, u64)) -> bool {
        let e = now_ns / self.cfg.epoch_ns;
        if e <= self.epoch {
            return false;
        }
        self.epoch = e;
        self.events.epochs += 1;
        let cfg = self.cfg.clone();

        // Control-plane congestion: sustained growth of the AM wire mean.
        let dam = (
            am_wire.0.saturating_sub(self.am_seen.0),
            am_wire.1.saturating_sub(self.am_seen.1),
        );
        self.am_seen = am_wire;
        let am_congested = self.am_meter.epoch(cfg.congestion_eighths, dam.0, dam.1);

        // Per-destination knobs.
        for l in self.links.values_mut() {
            let cut = l.pressure > 0;
            let next_eager = aimd_step(
                l.eager,
                l.near_miss > 0,
                cut,
                cfg.eager_step as u64,
                cfg.eager_min as u64,
                cfg.eager_max as u64,
            );
            match next_eager.cmp(&l.eager) {
                std::cmp::Ordering::Greater => self.events.eager_raise += 1,
                std::cmp::Ordering::Less => self.events.eager_cut += 1,
                std::cmp::Ordering::Equal => {}
            }
            l.eager = next_eager;

            // Batching trades per-record latency for wire message rate:
            // grow a hot link's window only while the control plane shows
            // sustained congestion (rate-bound); shed it as soon as the
            // link's record stream thins out.
            let hot = l.records >= cfg.window_hot_records;
            let cold = l.records > 0 && l.records <= cfg.window_hot_records / 4;
            let next_window = aimd_step(
                l.window_ns,
                hot && am_congested,
                cold,
                cfg.window_step_ns,
                cfg.window_min_ns,
                cfg.window_max_ns,
            );
            match next_window.cmp(&l.window_ns) {
                std::cmp::Ordering::Greater => self.events.window_raise += 1,
                std::cmp::Ordering::Less => self.events.window_cut += 1,
                std::cmp::Ordering::Equal => {}
            }
            l.window_ns = next_window;

            l.puts = 0;
            l.near_miss = 0;
            l.pressure = 0;
            l.records = 0;
        }

        // Node-level windows off the put wire-stage histogram delta.
        let (count, sum) = put_wire;
        let dcount = count.saturating_sub(self.put_seen.0);
        let dsum = sum.saturating_sub(self.put_seen.1);
        self.put_seen = (count, sum);
        // An uninitialized GET window (no query yet) is left alone.
        if self.get_window.window > 0 {
            match self
                .get_window
                .epoch(&cfg.get_window_bounds(), dcount, dsum)
            {
                1 => self.events.getwin_raise += 1,
                -1 => self.events.getwin_cut += 1,
                _ => {}
            }
        }
        match self.xfer.epoch(&cfg.xfer_bounds(), dcount, dsum) {
            1 => self.events.xfer_raise += 1,
            -1 => self.events.xfer_cut += 1,
            _ => {}
        }
        true
    }

    /// Aggregate event counters plus the current per-destination knob
    /// values, named for `metrics_report`. Per-destination entries carry
    /// the owning node in the name so cross-node registry merges stay
    /// meaningful; they are sorted for stable output.
    pub fn report_counters(&self, node: NodeId) -> Vec<(String, u64)> {
        let mut out = vec![
            ("tune.epochs".to_string(), self.events.epochs),
            ("tune.eager_raise".to_string(), self.events.eager_raise),
            ("tune.eager_cut".to_string(), self.events.eager_cut),
            ("tune.window_raise".to_string(), self.events.window_raise),
            ("tune.window_cut".to_string(), self.events.window_cut),
            ("tune.getwin_raise".to_string(), self.events.getwin_raise),
            ("tune.getwin_cut".to_string(), self.events.getwin_cut),
            ("tune.xfer_raise".to_string(), self.events.xfer_raise),
            ("tune.xfer_cut".to_string(), self.events.xfer_cut),
            (format!("tune.n{node}.get_window"), self.get_window.window),
            (format!("tune.n{node}.max_transfers"), self.xfer.window),
        ];
        let mut dsts: Vec<_> = self.links.keys().copied().collect();
        dsts.sort_unstable();
        for d in dsts {
            let l = &self.links[&d];
            out.push((format!("tune.n{node}.d{d}.eager_put_max"), l.eager));
            out.push((format!("tune.n{node}.d{d}.batch_window_ns"), l.window_ns));
        }
        out
    }

    /// The aggregate counter names, all zero — what `metrics_report` shows
    /// when the controller is off.
    pub fn zero_counters() -> Vec<(String, u64)> {
        [
            "tune.epochs",
            "tune.eager_raise",
            "tune.eager_cut",
            "tune.window_raise",
            "tune.window_cut",
            "tune.getwin_raise",
            "tune.getwin_cut",
            "tune.xfer_raise",
            "tune.xfer_cut",
        ]
        .iter()
        .map(|n| (n.to_string(), 0))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_cut_wins_and_clamps() {
        assert_eq!(aimd_step(100, true, false, 10, 0, 1000), 110);
        assert_eq!(aimd_step(100, true, true, 10, 0, 1000), 50);
        assert_eq!(aimd_step(100, false, true, 10, 80, 1000), 80);
        assert_eq!(aimd_step(995, true, false, 10, 0, 1000), 1000);
        assert_eq!(aimd_step(0, false, false, 10, 0, 1000), 0);
    }

    #[test]
    fn near_misses_raise_eager_until_pressure_cuts() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        // Epoch 1: 6 KiB rendezvous puts are near misses → raise.
        t.note_put(1, 6 * 1024);
        assert!(t.maybe_epoch(cfg.epoch_ns + 1, (0, 0), (0, 0)));
        assert_eq!(t.eager_put_max(1), 4096 + cfg.eager_step);
        // Same epoch index: no second decision.
        assert!(!t.maybe_epoch(cfg.epoch_ns + 2, (0, 0), (0, 0)));
        // Back-pressure halves, clamped to the floor.
        t.note_pressure(1);
        t.maybe_epoch(2 * cfg.epoch_ns + 1, (0, 0), (0, 0));
        assert_eq!(t.eager_put_max(1), (4096 + cfg.eager_step) / 2);
        assert_eq!(t.events.eager_raise, 1);
        assert_eq!(t.events.eager_cut, 1);
        // Untouched destinations stay at the static base.
        assert_eq!(t.eager_put_max(9), 4096);
    }

    #[test]
    fn eager_converges_just_past_the_observed_mode() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        for e in 1..=16 {
            t.note_put(2, 8 * 1024);
            t.maybe_epoch(e * cfg.epoch_ns + 1, (0, 0), (0, 0));
        }
        // 4096 → 6144 → 8192; at 8192 an 8 KiB put is no longer a near
        // miss, so the threshold settles exactly where it covers the mode
        // instead of running to the ceiling.
        assert_eq!(t.eager_put_max(2), 8 * 1024);
        t.note_put(2, 8 * 1024);
        t.maybe_epoch(20 * cfg.epoch_ns + 1, (0, 0), (0, 0));
        assert_eq!(t.eager_put_max(2), 8 * 1024);
    }

    #[test]
    fn oversize_puts_are_not_near_misses() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        // A put beyond any eager ceiling can never go eager: no raise.
        t.note_put(1, 1 << 20);
        t.maybe_epoch(cfg.epoch_ns + 1, (0, 0), (0, 0));
        assert_eq!(t.eager_put_max(1), 4096);
    }

    #[test]
    fn windows_grow_only_on_hot_links_under_sustained_congestion() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        // Two epochs of hot records over a healthy control plane: a
        // latency-bound workload must not start coalescing.
        for _ in 0..cfg.window_hot_records {
            t.note_am(3);
        }
        t.maybe_epoch(cfg.epoch_ns + 1, (10, 10_000), (0, 0));
        assert_eq!(t.batch_window(3), 0);
        // AM wire mean doubles (1000 → 2000 ns): one growth epoch, still
        // below the sustained-congestion bar.
        for _ in 0..cfg.window_hot_records {
            t.note_am(3);
        }
        t.maybe_epoch(2 * cfg.epoch_ns + 1, (20, 30_000), (0, 0));
        assert_eq!(t.batch_window(3), 0);
        // Second consecutive growth epoch (2000 → 4000 ns): the control
        // plane is rate-bound, the hot link grows its window.
        for _ in 0..cfg.window_hot_records {
            t.note_am(3);
        }
        t.maybe_epoch(3 * cfg.epoch_ns + 1, (30, 70_000), (0, 0));
        assert_eq!(t.batch_window(3), cfg.window_step_ns);
        // One stray record: cold → halve, congestion or not.
        t.note_am(3);
        t.maybe_epoch(4 * cfg.epoch_ns + 1, (30, 70_000), (0, 0));
        assert_eq!(t.batch_window(3), cfg.window_step_ns / 2);
        // Idle links are left alone.
        t.maybe_epoch(5 * cfg.epoch_ns + 1, (30, 70_000), (0, 0));
        assert_eq!(t.batch_window(3), cfg.window_step_ns / 2);
    }

    #[test]
    fn get_window_raises_on_steady_wire_and_cuts_on_sustained_congestion() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        // Epoch 1: first active epoch sets the baseline and raises.
        t.maybe_epoch(cfg.epoch_ns + 1, (0, 0), (10, 10_000));
        assert_eq!(t.get_window(), 512 + cfg.get_window_step);
        // Epoch 2: same mean → raise again.
        t.maybe_epoch(2 * cfg.epoch_ns + 1, (0, 0), (20, 20_000));
        assert_eq!(t.get_window(), 512 + 2 * cfg.get_window_step);
        // Epoch 3: mean 1000 → 2500 ns. One growth epoch is phase noise,
        // not congestion — still a raise.
        t.maybe_epoch(3 * cfg.epoch_ns + 1, (0, 0), (30, 45_000));
        assert_eq!(t.get_window(), 512 + 3 * cfg.get_window_step);
        assert_eq!(t.events.getwin_cut, 0);
        // Epoch 4: 2500 → 6000 ns, second consecutive growth → halve.
        t.maybe_epoch(4 * cfg.epoch_ns + 1, (0, 0), (40, 105_000));
        assert_eq!(t.get_window(), (512 + 3 * cfg.get_window_step) / 2);
        assert_eq!(t.events.getwin_cut, 1);
    }

    #[test]
    fn report_counters_are_stable_and_node_scoped() {
        let cfg = TuneConfig::enabled();
        let mut t = Tuner::new(cfg.clone(), 4096, 0, 512, 30);
        t.note_put(2, 6 * 1024);
        t.note_put(1, 6 * 1024);
        t.maybe_epoch(cfg.epoch_ns + 1, (0, 0), (0, 0));
        let c = t.report_counters(7);
        let names: Vec<&str> = c.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"tune.epochs"));
        // Destinations sorted regardless of observation order.
        let d1 = names.iter().position(|n| *n == "tune.n7.d1.eager_put_max");
        let d2 = names.iter().position(|n| *n == "tune.n7.d2.eager_put_max");
        assert!(d1.unwrap() < d2.unwrap());
        assert_eq!(c, t.report_counters(7));
        // The off-state shape: aggregate names, all zero.
        assert!(Tuner::zero_counters().iter().all(|(_, v)| *v == 0));
    }
}
