//! Handshake encoding for put operations.
//!
//! Real backends serialize a small header (transfer tag, size, remote
//! callback id, callback data) into the handshake message; we do the same so
//! handshake wire sizes are honest. The LCI backend can additionally carry
//! the put payload *eagerly* inside the handshake (§5.3.3); in cost-only
//! simulations the payload bytes are absent but still counted on the wire.

use bytes::{Buf, BufMut, BufPool, Bytes, BytesMut};

/// How the put payload travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EagerMode {
    /// Rendezvous: payload follows as a separate direct transfer.
    Rendezvous,
    /// Eager, cost-only: payload bytes simulated, wire size counted.
    EagerCostOnly,
    /// Eager with real payload bytes.
    EagerBytes(Bytes),
}

/// Decoded put handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct PutHandshake {
    /// Transfer tag: MPI data tag or LCI rendezvous tag.
    pub data_tag: u64,
    /// Payload size of the put.
    pub size: u64,
    /// Which registered one-sided callback to run at the target.
    pub r_tag: u64,
    /// Callback data for the remote completion.
    pub cb_data: Bytes,
    /// Payload transport mode.
    pub eager: EagerMode,
}

impl PutHandshake {
    /// Bytes of payload travelling inside the handshake.
    pub fn eager_len(&self) -> usize {
        match &self.eager {
            EagerMode::Rendezvous => 0,
            EagerMode::EagerCostOnly => self.size as usize,
            EagerMode::EagerBytes(b) => b.len(),
        }
    }

    /// Whether the payload rides in the handshake.
    pub fn is_eager(&self) -> bool {
        !matches!(self.eager, EagerMode::Rendezvous)
    }

    /// Encoded wire length in bytes (header + cb data + any eager payload).
    pub fn wire_len(&self) -> usize {
        8 + 8 + 8 + 4 + self.cb_data.len() + 1 + self.eager_len()
    }

    /// Encode into a buffer drawn from `pool` — steady-state handshake
    /// traffic then reuses recycled payload storage instead of allocating.
    pub fn encode_with(&self, pool: &BufPool) -> Bytes {
        let mut b = pool.take(self.wire_len().min(64 * 1024));
        self.encode_into(&mut b);
        b.freeze()
    }

    fn encode_into(&self, b: &mut BytesMut) {
        b.put_u64_le(self.data_tag);
        b.put_u64_le(self.size);
        b.put_u64_le(self.r_tag);
        b.put_u32_le(self.cb_data.len() as u32);
        b.put_slice(&self.cb_data);
        match &self.eager {
            EagerMode::Rendezvous => b.put_u8(0),
            EagerMode::EagerCostOnly => b.put_u8(1),
            EagerMode::EagerBytes(e) => {
                debug_assert_eq!(e.len() as u64, self.size);
                b.put_u8(2);
                b.put_slice(e);
            }
        }
    }

    pub fn decode(mut b: Bytes) -> Self {
        let data_tag = b.get_u64_le();
        let size = b.get_u64_le();
        let r_tag = b.get_u64_le();
        let cb_len = b.get_u32_le() as usize;
        let cb_data = b.split_to(cb_len);
        let eager = match b.get_u8() {
            0 => EagerMode::Rendezvous,
            1 => EagerMode::EagerCostOnly,
            2 => EagerMode::EagerBytes(b.split_to(size as usize)),
            m => panic!("bad eager mode {m}"),
        };
        PutHandshake {
            data_tag,
            size,
            r_tag,
            cb_data,
            eager,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(hs: &PutHandshake) -> Bytes {
        hs.encode_with(&BufPool::new(4))
    }

    #[test]
    fn roundtrip_rendezvous() {
        let hs = PutHandshake {
            data_tag: 0xdead_beef,
            size: 1 << 20,
            r_tag: 7,
            cb_data: Bytes::from_static(b"callback-data"),
            eager: EagerMode::Rendezvous,
        };
        let enc = encode(&hs);
        assert_eq!(enc.len(), hs.wire_len());
        assert_eq!(PutHandshake::decode(enc), hs);
        assert!(!hs.is_eager());
    }

    #[test]
    fn roundtrip_with_eager_payload() {
        let hs = PutHandshake {
            data_tag: 1,
            size: 5,
            r_tag: 2,
            cb_data: Bytes::new(),
            eager: EagerMode::EagerBytes(Bytes::from_static(b"tiny!")),
        };
        let enc = encode(&hs);
        assert_eq!(enc.len(), hs.wire_len());
        let dec = PutHandshake::decode(enc);
        assert_eq!(
            dec.eager,
            EagerMode::EagerBytes(Bytes::from_static(b"tiny!"))
        );
        assert!(dec.is_eager());
    }

    #[test]
    fn cost_only_eager_counts_wire_bytes() {
        let hs = PutHandshake {
            data_tag: 1,
            size: 4096,
            r_tag: 0,
            cb_data: Bytes::new(),
            eager: EagerMode::EagerCostOnly,
        };
        assert!(hs.wire_len() > 4096);
        // The encoded header is small; the wire size is declared, not
        // materialized.
        assert!(encode(&hs).len() < 100);
        let dec = PutHandshake::decode(encode(&hs));
        assert_eq!(dec.eager, EagerMode::EagerCostOnly);
        assert_eq!(dec.eager_len(), 4096);
    }
}
