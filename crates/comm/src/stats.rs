//! Engine statistics, used by benches and diagnostics.

use amt_simnet::{Counter, SimTime};

/// Per-engine counters. All monotonically increasing (retry paths may roll
/// back a speculative increment with [`Counter::dec`]).
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// AMs sent (wire messages, after aggregation).
    pub am_sent: Counter,
    /// AM payloads submitted (before aggregation).
    pub am_submitted: Counter,
    /// AMs received and dispatched to callbacks.
    pub am_received: Counter,
    /// Puts started at this origin.
    pub puts_started: Counter,
    /// Puts completed locally at this origin.
    pub puts_local_done: Counter,
    /// Put payload bytes received at this target.
    pub put_bytes_in: Counter,
    /// Puts completed remotely at this target.
    pub puts_remote_done: Counter,
    /// Times a put had to be deferred for lack of transfer slots (MPI).
    pub deferred_puts: Counter,
    /// Times a receive was posted as "dynamic" outside the polled array (MPI).
    pub dynamic_recvs: Counter,
    /// Times the LCI progress thread delegated a receive to the
    /// communication thread after `Retry` (§5.3.3).
    pub delegated_recvs: Counter,
    /// Backend `Retry` results absorbed by the engine (LCI).
    pub backend_retries: Counter,
    /// Communication-thread rounds executed.
    pub comm_rounds: Counter,
    /// Total CPU time charged to the communication thread.
    pub comm_busy: SimTime,
    /// Total CPU time charged to the progress thread (LCI).
    pub progress_busy: SimTime,
}

impl EngineStats {
    /// The named monotone counters, in a stable order (for reports).
    pub fn named_counters(&self) -> [(&'static str, u64); 12] {
        [
            ("am_sent", self.am_sent.get()),
            ("am_submitted", self.am_submitted.get()),
            ("am_received", self.am_received.get()),
            ("puts_started", self.puts_started.get()),
            ("puts_local_done", self.puts_local_done.get()),
            ("put_bytes_in", self.put_bytes_in.get()),
            ("puts_remote_done", self.puts_remote_done.get()),
            ("deferred_puts", self.deferred_puts.get()),
            ("dynamic_recvs", self.dynamic_recvs.get()),
            ("delegated_recvs", self.delegated_recvs.get()),
            ("backend_retries", self.backend_retries.get()),
            ("comm_rounds", self.comm_rounds.get()),
        ]
    }

    /// Fold another engine's counters into this one (cross-node merge).
    pub fn merge(&mut self, other: &EngineStats) {
        self.am_sent.add(other.am_sent.get());
        self.am_submitted.add(other.am_submitted.get());
        self.am_received.add(other.am_received.get());
        self.puts_started.add(other.puts_started.get());
        self.puts_local_done.add(other.puts_local_done.get());
        self.put_bytes_in.add(other.put_bytes_in.get());
        self.puts_remote_done.add(other.puts_remote_done.get());
        self.deferred_puts.add(other.deferred_puts.get());
        self.dynamic_recvs.add(other.dynamic_recvs.get());
        self.delegated_recvs.add(other.delegated_recvs.get());
        self.backend_retries.add(other.backend_retries.get());
        self.comm_rounds.add(other.comm_rounds.get());
        self.comm_busy += other.comm_busy;
        self.progress_busy += other.progress_busy;
    }
}
