//! Engine statistics, used by benches and diagnostics.

use amt_simnet::SimTime;

/// Per-engine counters. All monotonically increasing.
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// AMs sent (wire messages, after aggregation).
    pub am_sent: u64,
    /// AM payloads submitted (before aggregation).
    pub am_submitted: u64,
    /// AMs received and dispatched to callbacks.
    pub am_received: u64,
    /// Puts started at this origin.
    pub puts_started: u64,
    /// Puts completed locally at this origin.
    pub puts_local_done: u64,
    /// Put payload bytes received at this target.
    pub put_bytes_in: u64,
    /// Puts completed remotely at this target.
    pub puts_remote_done: u64,
    /// Times a put had to be deferred for lack of transfer slots (MPI).
    pub deferred_puts: u64,
    /// Times a receive was posted as "dynamic" outside the polled array (MPI).
    pub dynamic_recvs: u64,
    /// Times the LCI progress thread delegated a receive to the
    /// communication thread after `Retry` (§5.3.3).
    pub delegated_recvs: u64,
    /// Backend `Retry` results absorbed by the engine (LCI).
    pub backend_retries: u64,
    /// Communication-thread rounds executed.
    pub comm_rounds: u64,
    /// Total CPU time charged to the communication thread.
    pub comm_busy: SimTime,
    /// Total CPU time charged to the progress thread (LCI).
    pub progress_busy: SimTime,
}
