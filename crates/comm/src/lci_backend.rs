//! The LCI backend (§5.3): progress thread, completion FIFOs, specialized
//! handshake path, eager small puts, delegated receives.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use amt_lci::{AmMsg, LciError, OnComplete, PutMsg};
use amt_netmodel::NodeId;
use amt_simnet::{Sim, SimTime};
use bytes::Bytes;

use crate::engine::{
    dispatch_am, dispatch_onesided, dispatch_put_local, AmEvent, Command, CommEngine, Micro,
    PutEvent, PutLocalCb, PutRequest,
};
use crate::wire::{EagerMode, PutHandshake};

/// AM-tag bit marking a put handshake; the rendezvous tag rides in the low
/// bits, so the handler never consults the AM hash table (§5.3.3).
pub(crate) const HS_FLAG: u64 = 1 << 63;

/// CPU cost of the progress-thread handler for a user AM: tag hash lookup
/// plus callback-handle pool allocation plus FIFO push (§5.3.2).
const AM_HANDLER_COST: SimTime = SimTime(90);
/// CPU cost of the specialized handshake handler (no hash lookup).
const HS_HANDLER_COST: SimTime = SimTime(60);
/// CPU cost of a completion handler pushing to a FIFO.
const COMP_HANDLER_COST: SimTime = SimTime(40);

/// An AM queued for the communication thread.
pub(crate) struct QueuedAm {
    pub ev: AmEvent,
    pub owns_packet: bool,
}

/// A bulk-data completion queued for the communication thread.
pub(crate) enum DataDone {
    /// Small put sent eagerly inside the handshake: origin-side completion.
    LocalEager(Option<PutLocalCb>),
    /// Direct-send local completion at the origin.
    Local { rtag: u64 },
    /// Data arrived at the target (eagerly or via direct receive).
    Remote {
        src: NodeId,
        size: usize,
        data: Option<Bytes>,
        r_tag: u64,
        cb_data: Bytes,
    },
}

/// A receive the progress thread could not post (`Retry`), delegated to the
/// communication thread (§5.3.3).
pub(crate) struct DelegatedRecv {
    pub src: NodeId,
    pub rtag: u64,
    pub r_tag: u64,
    pub cb_data: Bytes,
}

#[derive(Default)]
pub(crate) struct LciState {
    pub am_fifo: VecDeque<QueuedAm>,
    pub data_fifo: VecDeque<DataDone>,
    pub delegated: VecDeque<DelegatedRecv>,
    /// Retry delegated receives on the next communication-thread visit
    /// (set by the backend waker when resources may have freed).
    pub retry_wanted: bool,
    pub origin_puts: HashMap<u64, Option<PutLocalCb>>,
    pub put_seq: u64,
    pub progress_busy: bool,
}

/// The endpoint AM handler, executed on the **progress thread** inside
/// `LCI_progress`. User AMs are queued to the communication thread;
/// handshakes take the specialized path: decode, free the packet, and either
/// deliver the eager payload or post the direct receive immediately —
/// delegating to the communication thread on `Retry`.
pub(crate) fn on_am(eng: &Rc<CommEngine>, sim: &mut Sim, msg: AmMsg) -> SimTime {
    if msg.tag & HS_FLAG == 0 {
        eng.inner.borrow_mut().lci.am_fifo.push_back(QueuedAm {
            ev: AmEvent {
                src: msg.src,
                tag: msg.tag,
                size: msg.size,
                data: msg.data,
            },
            owns_packet: msg.owns_packet,
        });
        CommEngine::wake_comm(eng, sim);
        return AM_HANDLER_COST;
    }

    // Specialized handshake path.
    let mut cost = HS_HANDLER_COST;
    let lci = eng.lci.as_ref().expect("lci backend").clone();
    let hs = PutHandshake::decode(msg.data.expect("handshake payload"));
    if msg.owns_packet {
        lci.buffer_free(sim);
    }
    let src = msg.src;
    if hs.is_eager() {
        let data = match hs.eager {
            EagerMode::EagerBytes(b) => Some(b),
            _ => None,
        };
        eng.inner.borrow_mut().lci.data_fifo.push_back(DataDone::Remote {
            src,
            size: hs.size as usize,
            data,
            r_tag: hs.r_tag,
            cb_data: hs.cb_data,
        });
        CommEngine::wake_comm(eng, sim);
        return cost;
    }

    // Rendezvous: post the matching direct receive right here on the
    // progress thread so the RTS can be answered with minimum latency.
    match try_post_recvd(eng, sim, src, hs.data_tag, hs.r_tag, hs.cb_data) {
        Ok(c) => cost += c,
        Err(d) => {
            // §5.3.3: we cannot spin or recurse into progress here —
            // delegate to the communication thread.
            let mut inner = eng.inner.borrow_mut();
            inner.stats.delegated_recvs += 1;
            inner.lci.delegated.push_back(d);
            inner.lci.retry_wanted = true;
            drop(inner);
            CommEngine::wake_comm(eng, sim);
        }
    }
    cost
}

/// Attempt to post the direct receive for an incoming put.
fn try_post_recvd(
    eng: &Rc<CommEngine>,
    sim: &mut Sim,
    src: NodeId,
    rtag: u64,
    r_tag: u64,
    cb_data: Bytes,
) -> Result<SimTime, DelegatedRecv> {
    let lci = eng.lci.as_ref().expect("lci backend").clone();
    let weak = Rc::downgrade(&eng.me());
    let cb_data2 = cb_data.clone();
    let res = lci.recvd(
        sim,
        src,
        rtag,
        r_tag,
        OnComplete::Handler(Box::new(move |sim, e| {
            if let Some(eng) = weak.upgrade() {
                eng.inner.borrow_mut().lci.data_fifo.push_back(DataDone::Remote {
                    src: e.peer,
                    size: e.size,
                    data: e.data,
                    r_tag,
                    cb_data: cb_data2,
                });
                CommEngine::wake_comm(&eng, sim);
            }
            COMP_HANDLER_COST
        })),
    );
    match res {
        Ok(c) => Ok(c),
        Err(LciError::Retry) => Err(DelegatedRecv {
            src,
            rtag,
            r_tag,
            cb_data,
        }),
    }
}

/// The endpoint put handler (§7 direct-put extension), executed on the
/// progress thread: queue the remote completion for the communication
/// thread. No matching, no rendezvous, no hash lookup.
pub(crate) fn on_put(eng: &Rc<CommEngine>, sim: &mut Sim, msg: PutMsg) -> SimTime {
    let hs = PutHandshake::decode(msg.cb_data);
    eng.inner.borrow_mut().lci.data_fifo.push_back(DataDone::Remote {
        src: msg.src,
        size: msg.size,
        data: msg.data,
        r_tag: hs.r_tag,
        cb_data: hs.cb_data,
    });
    CommEngine::wake_comm(eng, sim);
    HS_HANDLER_COST
}

/// §7 direct-put path: one `putd` carries data and callback descriptor in a
/// single one-sided write.
fn issue_put_direct(eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest, rtag: u64) -> SimTime {
    let lci = eng.lci.as_ref().expect("lci backend").clone();
    let PutRequest {
        dst,
        size,
        data,
        r_tag,
        cb_data,
        on_local,
    } = req;
    // The callback descriptor rides as immediate data.
    let imm = PutHandshake {
        data_tag: rtag,
        size: size as u64,
        r_tag,
        cb_data,
        eager: EagerMode::Rendezvous,
    };
    let weak = Rc::downgrade(&eng.me());
    let res = lci.putd(
        sim,
        dst,
        rtag,
        size,
        data.clone(),
        imm.encode(),
        rtag,
        OnComplete::Handler(Box::new(move |sim, e| {
            if let Some(eng) = weak.upgrade() {
                eng.inner
                    .borrow_mut()
                    .lci
                    .data_fifo
                    .push_back(DataDone::Local { rtag: e.ctx });
                CommEngine::wake_comm(&eng, sim);
            }
            COMP_HANDLER_COST
        })),
    );
    match res {
        Ok(c) => {
            eng.inner
                .borrow_mut()
                .lci
                .origin_puts
                .insert(rtag, Some(on_local));
            c
        }
        Err(LciError::Retry) => {
            let mut inner = eng.inner.borrow_mut();
            inner.stats.backend_retries += 1;
            inner.stats.puts_started -= 1;
            inner.lci.put_seq -= 1;
            let data = data;
            inner.pending.push_front(Command::Put(PutRequest {
                dst,
                size,
                data,
                r_tag: imm.r_tag,
                cb_data: imm.cb_data,
                on_local,
            }));
            eng.cfg.cmd_overhead
        }
    }
}

/// Issue a put from the communication thread (§5.3.3): small payloads ride
/// eagerly in the handshake; larger ones go `sendd` + handshake.
pub(crate) fn issue_put(eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
    let lci = eng.lci.as_ref().expect("lci backend").clone();
    let rtag = {
        let mut inner = eng.inner.borrow_mut();
        inner.stats.puts_started += 1;
        let t = inner.lci.put_seq;
        inner.lci.put_seq += 1;
        t
    };
    if eng.cfg.lci_direct_put {
        return issue_put_direct(eng, sim, req, rtag);
    }
    let PutRequest {
        dst,
        size,
        data,
        r_tag,
        cb_data,
        on_local,
    } = req;

    if size <= eng.cfg.eager_put_max {
        let eager = match data {
            Some(b) => EagerMode::EagerBytes(b),
            None => EagerMode::EagerCostOnly,
        };
        let hs = PutHandshake {
            data_tag: rtag,
            size: size as u64,
            r_tag,
            cb_data,
            eager,
        };
        let wire_len = hs.wire_len();
        match lci.sendb(sim, dst, HS_FLAG | rtag, wire_len, Some(hs.encode())) {
            Ok(c) => {
                // Data copied into the packet: local completion immediate.
                eng.inner
                    .borrow_mut()
                    .micro
                    .push_back(Micro::LciData(DataDone::LocalEager(Some(on_local))));
                c
            }
            Err(LciError::Retry) => {
                // Requeue the whole put; retried on the next wake.
                let mut inner = eng.inner.borrow_mut();
                inner.stats.backend_retries += 1;
                inner.stats.puts_started -= 1;
                inner.lci.put_seq -= 1;
                let data = match hs.eager {
                    EagerMode::EagerBytes(b) => Some(b),
                    _ => None,
                };
                inner.pending.push_front(Command::Put(PutRequest {
                    dst,
                    size,
                    data,
                    r_tag: hs.r_tag,
                    cb_data: hs.cb_data,
                    on_local,
                }));
                eng.cfg.cmd_overhead
            }
        }
    } else {
        // Rendezvous: direct send first (its RTS waits at the target until
        // the handshake posts the receive), then the handshake.
        let weak = Rc::downgrade(&eng.me());
        let send_res = lci.sendd(
            sim,
            dst,
            rtag,
            size,
            data.clone(),
            rtag,
            OnComplete::Handler(Box::new(move |sim, e| {
                if let Some(eng) = weak.upgrade() {
                    eng.inner
                        .borrow_mut()
                        .lci
                        .data_fifo
                        .push_back(DataDone::Local { rtag: e.ctx });
                    CommEngine::wake_comm(&eng, sim);
                }
                COMP_HANDLER_COST
            })),
        );
        let mut cost = match send_res {
            Ok(c) => c,
            Err(LciError::Retry) => {
                let mut inner = eng.inner.borrow_mut();
                inner.stats.backend_retries += 1;
                inner.stats.puts_started -= 1;
                inner.lci.put_seq -= 1;
                inner.pending.push_front(Command::Put(PutRequest {
                    dst,
                    size,
                    data,
                    r_tag,
                    cb_data,
                    on_local,
                }));
                return eng.cfg.cmd_overhead;
            }
        };
        eng.inner
            .borrow_mut()
            .lci
            .origin_puts
            .insert(rtag, Some(on_local));
        let hs = PutHandshake {
            data_tag: rtag,
            size: size as u64,
            r_tag,
            cb_data,
            eager: EagerMode::Rendezvous,
        };
        let enc = hs.encode();
        let wire_len = enc.len();
        match lci.sendb(sim, dst, HS_FLAG | rtag, wire_len, Some(enc.clone())) {
            Ok(c) => cost += c,
            Err(LciError::Retry) => {
                // The data send is in flight; only the handshake needs
                // retrying.
                let mut inner = eng.inner.borrow_mut();
                inner.stats.backend_retries += 1;
                inner.pending.push_front(Command::RawSendb {
                    dst,
                    tag: HS_FLAG | rtag,
                    size: wire_len,
                    data: Some(enc),
                });
            }
        }
        cost
    }
}

/// One §5.3.4 fairness round: up to `am_batch` AM completions, then all
/// bulk-data completions; repeat while anything was processed.
pub(crate) fn exec_fifo_round(eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
    let mut cost = eng.cfg.fifo_pop;
    let mut popped = false;
    {
        let mut inner = eng.inner.borrow_mut();
        for _ in 0..eng.cfg.am_batch {
            match inner.lci.am_fifo.pop_front() {
                Some(a) => {
                    inner.micro.push_back(Micro::LciAm(a));
                    cost += eng.cfg.fifo_pop;
                    popped = true;
                }
                None => break,
            }
        }
        while let Some(d) = inner.lci.data_fifo.pop_front() {
            inner.micro.push_back(Micro::LciData(d));
            cost += eng.cfg.fifo_pop;
            popped = true;
        }
        if std::mem::take(&mut inner.lci.retry_wanted) && !inner.lci.delegated.is_empty() {
            inner.micro.push_back(Micro::LciDelegated);
        }
        if popped {
            inner.micro.push_back(Micro::FifoRound);
        }
    }
    let _ = sim;
    cost
}

/// Run one queued AM callback and release its receive packet.
pub(crate) fn exec_am(eng: &Rc<CommEngine>, sim: &mut Sim, q: QueuedAm) -> SimTime {
    let cost = dispatch_am(eng, sim, q.ev);
    if q.owns_packet {
        eng.lci.as_ref().expect("lci backend").buffer_free(sim);
    }
    cost
}

/// Run one bulk-data completion callback.
pub(crate) fn exec_data(eng: &Rc<CommEngine>, sim: &mut Sim, d: DataDone) -> SimTime {
    match d {
        DataDone::LocalEager(cb) => {
            let cb = cb.expect("local completion consumed twice");
            dispatch_put_local(eng, sim, cb)
        }
        DataDone::Local { rtag } => {
            let cb = eng
                .inner
                .borrow_mut()
                .lci
                .origin_puts
                .remove(&rtag)
                .expect("unknown put rtag")
                .expect("local completion consumed twice");
            dispatch_put_local(eng, sim, cb)
        }
        DataDone::Remote {
            src,
            size,
            data,
            r_tag,
            cb_data,
        } => dispatch_onesided(
            eng,
            sim,
            r_tag,
            PutEvent {
                src,
                size,
                data,
                cb_data,
            },
        ),
    }
}

/// Retry delegated receives from the communication thread.
pub(crate) fn exec_delegated(eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
    let mut cost = SimTime::ZERO;
    let mut queue = std::mem::take(&mut eng.inner.borrow_mut().lci.delegated);
    while let Some(d) = queue.pop_front() {
        cost += eng.cfg.cmd_overhead;
        match try_post_recvd(eng, sim, d.src, d.rtag, d.r_tag, d.cb_data) {
            Ok(c) => cost += c,
            Err(d) => {
                // Still exhausted: put everything back and stop.
                let mut inner = eng.inner.borrow_mut();
                inner.lci.delegated.push_front(d);
                while let Some(rest) = queue.pop_front() {
                    inner.lci.delegated.push_back(rest);
                }
                break;
            }
        }
    }
    cost
}
