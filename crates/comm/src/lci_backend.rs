//! The LCI backend (§5.3): progress thread, completion FIFOs, specialized
//! handshake path, eager small puts, delegated receives. Also hosts the
//! `putd` machinery the [`crate::lci_direct`] backend builds on.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::{Rc, Weak};

use amt_lci::{AmMsg, Lci, LciError, OnComplete, PutMsg};
use amt_netmodel::NodeId;
use amt_simnet::{Counter, Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::backend::{BackendMicro, BackendTask, CommBackend};
use crate::config::{BackendKind, EngineConfig};
use crate::engine::{
    dispatch_am, dispatch_onesided, dispatch_put_local, AmEvent, CommEngine, Command, Micro,
    PutEvent, PutLocalCb, PutRequest,
};
use crate::stats::EngineStats;
use crate::wire::{EagerMode, PutHandshake};

/// AM-tag bit marking a put handshake; the rendezvous tag rides in the low
/// bits, so the handler never consults the AM hash table (§5.3.3).
pub(crate) const HS_FLAG: u64 = 1 << 63;

/// CPU cost of the progress-thread handler for a user AM: tag hash lookup
/// plus callback-handle pool allocation plus FIFO push (§5.3.2).
const AM_HANDLER_COST: SimTime = SimTime(90);
/// CPU cost of the specialized handshake handler (no hash lookup).
const HS_HANDLER_COST: SimTime = SimTime(60);
/// CPU cost of a completion handler pushing to a FIFO.
const COMP_HANDLER_COST: SimTime = SimTime(40);

/// An AM queued for the communication thread.
struct QueuedAm {
    ev: AmEvent,
    owns_packet: bool,
    /// When the progress thread queued it (`wire → deliver` boundary).
    arrived: SimTime,
}

/// A bulk-data completion queued for the communication thread.
enum DataDone {
    /// Small put sent eagerly inside the handshake: origin-side completion.
    LocalEager(Option<PutLocalCb>),
    /// Direct-send local completion at the origin.
    Local { rtag: u64 },
    /// Data arrived at the target (eagerly or via direct receive).
    Remote {
        src: NodeId,
        size: usize,
        data: Option<Bytes>,
        r_tag: u64,
        cb_data: Bytes,
        /// When the progress thread queued it (`wire → deliver` boundary).
        arrived: SimTime,
    },
}

/// A receive the progress thread could not post (`Retry`), delegated to the
/// communication thread (§5.3.3).
struct DelegatedRecv {
    src: NodeId,
    rtag: u64,
    r_tag: u64,
    cb_data: Bytes,
}

/// Unit micro-task codes ([`BackendMicro::Unit`] — no boxed allocation for
/// the recurring data-less rounds).
const MICRO_FIFO_ROUND: u32 = 0;
const MICRO_DELEGATED: u32 = 1;

/// The LCI backend's private data-carrying micro-tasks.
enum LciMicro {
    /// One queued AM callback.
    Am(QueuedAm),
    /// One bulk-data completion callback.
    Data(DataDone),
}

/// The LCI backend's private retriable commands.
enum LciCmd {
    /// A handshake whose `sendb` hit `Retry`.
    RawSendb {
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    },
}

/// Backend-private state, shared with the progress-thread handlers.
#[derive(Default)]
struct LciState {
    am_fifo: VecDeque<QueuedAm>,
    data_fifo: VecDeque<DataDone>,
    delegated: VecDeque<DelegatedRecv>,
    /// Retry delegated receives on the next communication-thread visit
    /// (set by the backend waker when resources may have freed).
    retry_wanted: bool,
    origin_puts: HashMap<u64, Option<PutLocalCb>>,
    put_seq: u64,
    progress_busy: bool,
    /// Times the progress thread delegated a receive to the communication
    /// thread after `Retry` (§5.3.3).
    stat_delegated: Counter,
    /// `Retry` results absorbed by the engine.
    stat_retries: Counter,
    /// Total CPU time charged to the progress thread(s).
    stat_progress_busy: SimTime,
}

pub(crate) struct LciBackend {
    ep: Lci,
    st: Rc<RefCell<LciState>>,
    progress_threads: usize,
}

/// The endpoint AM handler, executed on the **progress thread** inside
/// `LCI_progress`. User AMs are queued to the communication thread;
/// handshakes take the specialized path: decode, free the packet, and either
/// deliver the eager payload or post the direct receive immediately —
/// delegating to the communication thread on `Retry`.
fn on_am(
    eng: &Rc<CommEngine>,
    ep: &Lci,
    st: &Rc<RefCell<LciState>>,
    sim: &mut Sim,
    msg: AmMsg,
) -> SimTime {
    let now = sim.now();
    if msg.tag & HS_FLAG == 0 {
        eng.record_stage("am.wire_ns", now.saturating_sub(msg.sent_at));
        st.borrow_mut().am_fifo.push_back(QueuedAm {
            ev: AmEvent {
                src: msg.src,
                tag: msg.tag,
                size: msg.size,
                data: msg.data,
            },
            owns_packet: msg.owns_packet,
            arrived: now,
        });
        CommEngine::wake_comm(eng, sim);
        return AM_HANDLER_COST;
    }

    // Specialized handshake path.
    let mut cost = HS_HANDLER_COST;
    let hs = PutHandshake::decode(msg.data.into_bytes().expect("handshake payload"));
    if msg.owns_packet {
        ep.buffer_free(sim);
    }
    let src = msg.src;
    if hs.is_eager() {
        // The eager payload rode inside this handshake: its wire stage ends
        // here, at the target's progress thread.
        eng.record_stage("put.wire_ns", now.saturating_sub(msg.sent_at));
        eng.wire_add(eng.node, now, -1);
        let data = match hs.eager {
            EagerMode::EagerBytes(b) => Some(b),
            _ => None,
        };
        st.borrow_mut().data_fifo.push_back(DataDone::Remote {
            src,
            size: hs.size as usize,
            data,
            r_tag: hs.r_tag,
            cb_data: hs.cb_data,
            arrived: now,
        });
        CommEngine::wake_comm(eng, sim);
        return cost;
    }

    // Rendezvous: post the matching direct receive right here on the
    // progress thread so the RTS can be answered with minimum latency.
    match try_post_recvd(eng, ep, st, sim, src, hs.data_tag, hs.r_tag, hs.cb_data) {
        Ok(c) => cost += c,
        Err(d) => {
            // §5.3.3: we cannot spin or recurse into progress here —
            // delegate to the communication thread.
            let mut s = st.borrow_mut();
            s.stat_delegated.inc();
            s.delegated.push_back(d);
            s.retry_wanted = true;
            drop(s);
            if eng.cfg.trace {
                eng.trace
                    .borrow_mut()
                    .instant(&eng.prog_track, "delegated", now);
            }
            CommEngine::wake_comm(eng, sim);
        }
    }
    cost
}

/// Attempt to post the direct receive for an incoming put.
#[allow(clippy::too_many_arguments)]
fn try_post_recvd(
    eng: &Rc<CommEngine>,
    ep: &Lci,
    st: &Rc<RefCell<LciState>>,
    sim: &mut Sim,
    src: NodeId,
    rtag: u64,
    r_tag: u64,
    cb_data: Bytes,
) -> Result<SimTime, DelegatedRecv> {
    let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
    let weak_st = Rc::downgrade(st);
    let cb_data2 = cb_data.clone();
    let res = ep.recvd(
        sim,
        src,
        rtag,
        r_tag,
        OnComplete::Handler(Box::new(move |sim, e| {
            if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                let now = sim.now();
                eng.record_stage("put.wire_ns", now.saturating_sub(e.sent_at));
                eng.wire_add(eng.node, now, -1);
                st.borrow_mut().data_fifo.push_back(DataDone::Remote {
                    src: e.peer,
                    size: e.size,
                    data: e.data,
                    r_tag,
                    cb_data: cb_data2,
                    arrived: now,
                });
                CommEngine::wake_comm(&eng, sim);
            }
            COMP_HANDLER_COST
        })),
    );
    match res {
        Ok(c) => Ok(c),
        Err(LciError::Retry) => Err(DelegatedRecv {
            src,
            rtag,
            r_tag,
            cb_data,
        }),
    }
}

/// The endpoint put handler (§7 direct-put backend), executed on the
/// progress thread: queue the remote completion for the communication
/// thread. No matching, no rendezvous, no hash lookup.
fn on_put(eng: &Rc<CommEngine>, st: &Rc<RefCell<LciState>>, sim: &mut Sim, msg: PutMsg) -> SimTime {
    let now = sim.now();
    eng.record_stage("put.wire_ns", now.saturating_sub(msg.sent_at));
    eng.wire_add(eng.node, now, -1);
    let hs = PutHandshake::decode(msg.cb_data);
    st.borrow_mut().data_fifo.push_back(DataDone::Remote {
        src: msg.src,
        size: msg.size,
        data: msg.data,
        r_tag: hs.r_tag,
        cb_data: hs.cb_data,
        arrived: now,
    });
    CommEngine::wake_comm(eng, sim);
    HS_HANDLER_COST
}

impl LciBackend {
    pub(crate) fn new(ep: Lci, cfg: &EngineConfig) -> Self {
        LciBackend {
            ep,
            st: Rc::new(RefCell::new(LciState::default())),
            progress_threads: cfg.lci_progress_threads.max(1),
        }
    }

    /// §7 direct-put path (used by the [`crate::lci_direct`] backend): one
    /// `putd` carries data and callback descriptor in a single one-sided
    /// write — no handshake, no rendezvous round-trip.
    pub(crate) fn issue_put_direct(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        req: PutRequest,
    ) -> SimTime {
        eng.inner.borrow_mut().stats.puts_started.inc();
        let rtag = {
            let mut st = self.st.borrow_mut();
            let t = st.put_seq;
            st.put_seq += 1;
            t
        };
        let PutRequest {
            dst,
            size,
            data,
            r_tag,
            cb_data,
            on_local,
        } = req;
        // The callback descriptor rides as immediate data.
        let imm = PutHandshake {
            data_tag: rtag,
            size: size as u64,
            r_tag,
            cb_data,
            eager: EagerMode::Rendezvous,
        };
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        let res = self.ep.putd(
            sim,
            dst,
            rtag,
            size,
            data.clone(),
            imm.encode_with(eng.buf_pool()),
            rtag,
            OnComplete::Handler(Box::new(move |sim, e| {
                if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                    st.borrow_mut()
                        .data_fifo
                        .push_back(DataDone::Local { rtag: e.ctx });
                    CommEngine::wake_comm(&eng, sim);
                }
                COMP_HANDLER_COST
            })),
        );
        match res {
            Ok(c) => {
                eng.wire_add(dst, sim.now(), 1);
                self.st
                    .borrow_mut()
                    .origin_puts
                    .insert(rtag, Some(on_local));
                c
            }
            Err(LciError::Retry) => {
                {
                    let mut st = self.st.borrow_mut();
                    st.stat_retries.inc();
                    st.put_seq -= 1;
                }
                eng.trace_instant("retry", sim.now());
                eng.note_pressure(dst);
                let mut inner = eng.inner.borrow_mut();
                inner.stats.puts_started.dec();
                inner.pending.push_front(Command::Put {
                    req: PutRequest {
                        dst,
                        size,
                        data,
                        r_tag: imm.r_tag,
                        cb_data: imm.cb_data,
                        on_local,
                    },
                    submitted_at: None,
                });
                eng.cfg.cmd_overhead
            }
        }
    }

    /// One §5.3.4 fairness round: up to `am_batch` AM completions, then all
    /// bulk-data completions; repeat while anything was processed.
    fn exec_fifo_round(&self, eng: &Rc<CommEngine>) -> SimTime {
        let mut cost = eng.cfg.fifo_pop;
        let mut popped = false;
        let mut st = self.st.borrow_mut();
        let mut inner = eng.inner.borrow_mut();
        for _ in 0..eng.cfg.am_batch {
            match st.am_fifo.pop_front() {
                Some(a) => {
                    inner
                        .micro
                        .push_back(Micro::Backend(Box::new(LciMicro::Am(a))));
                    cost += eng.cfg.fifo_pop;
                    popped = true;
                }
                None => break,
            }
        }
        while let Some(d) = st.data_fifo.pop_front() {
            inner
                .micro
                .push_back(Micro::Backend(Box::new(LciMicro::Data(d))));
            cost += eng.cfg.fifo_pop;
            popped = true;
        }
        if std::mem::take(&mut st.retry_wanted) && !st.delegated.is_empty() {
            inner.micro.push_back(Micro::BackendUnit(MICRO_DELEGATED));
        }
        if popped {
            inner.micro.push_back(Micro::BackendUnit(MICRO_FIFO_ROUND));
        }
        cost
    }

    /// Run one queued AM callback and release its receive packet.
    fn exec_am(&self, eng: &Rc<CommEngine>, sim: &mut Sim, q: QueuedAm) -> SimTime {
        eng.record_stage("am.deliver_ns", sim.now().saturating_sub(q.arrived));
        let cost = dispatch_am(eng, sim, q.ev);
        if q.owns_packet {
            self.ep.buffer_free(sim);
        }
        cost
    }

    /// Run one bulk-data completion callback.
    fn exec_data(&self, eng: &Rc<CommEngine>, sim: &mut Sim, d: DataDone) -> SimTime {
        match d {
            DataDone::LocalEager(cb) => {
                let cb = cb.expect("local completion consumed twice");
                dispatch_put_local(eng, sim, cb)
            }
            DataDone::Local { rtag } => {
                let cb = self
                    .st
                    .borrow_mut()
                    .origin_puts
                    .remove(&rtag)
                    .expect("unknown put rtag")
                    .expect("local completion consumed twice");
                dispatch_put_local(eng, sim, cb)
            }
            DataDone::Remote {
                src,
                size,
                data,
                r_tag,
                cb_data,
                arrived,
            } => {
                eng.record_stage("put.deliver_ns", sim.now().saturating_sub(arrived));
                dispatch_onesided(
                    eng,
                    sim,
                    r_tag,
                    PutEvent {
                        src,
                        size,
                        data,
                        cb_data,
                    },
                )
            }
        }
    }

    /// Retry delegated receives from the communication thread.
    fn exec_delegated(&self, eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        let mut queue = std::mem::take(&mut self.st.borrow_mut().delegated);
        while let Some(d) = queue.pop_front() {
            cost += eng.cfg.cmd_overhead;
            match try_post_recvd(
                eng, &self.ep, &self.st, sim, d.src, d.rtag, d.r_tag, d.cb_data,
            ) {
                Ok(c) => cost += c,
                Err(d) => {
                    // Still exhausted: put everything back and stop.
                    let mut st = self.st.borrow_mut();
                    st.delegated.push_front(d);
                    while let Some(rest) = queue.pop_front() {
                        st.delegated.push_back(rest);
                    }
                    break;
                }
            }
        }
        cost
    }
}

impl CommBackend for LciBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Lci
    }

    fn progress_threads(&self) -> usize {
        self.progress_threads
    }

    fn init(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        let _ = sim;
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        self.ep.set_waker(move |sim| {
            if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                eng.backend.drain_progress(&eng, sim);
                // Freed resources may also unblock queued commands or
                // delegated receives on the communication thread.
                st.borrow_mut().retry_wanted = true;
                CommEngine::wake_comm(&eng, sim);
            }
        });
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        let ep = self.ep.clone();
        self.ep.set_am_handler(
            move |sim, msg| match (weak_eng.upgrade(), weak_st.upgrade()) {
                (Some(eng), Some(st)) => on_am(&eng, &ep, &st, sim, msg),
                _ => SimTime::ZERO,
            },
        );
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        self.ep.set_put_handler(
            move |sim, msg| match (weak_eng.upgrade(), weak_st.upgrade()) {
                (Some(eng), Some(st)) => on_put(&eng, &st, sim, msg),
                _ => SimTime::ZERO,
            },
        );
    }

    fn issue_am(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> SimTime {
        let costs = self.ep.costs();
        let res = if size <= costs.imm_max {
            self.ep.sendi(sim, dst, tag, size, data.clone())
        } else {
            self.ep.sendb(sim, dst, tag, size, data.clone())
        };
        match res {
            Ok(c) => c,
            Err(_) => {
                self.st.borrow_mut().stat_retries.inc();
                eng.trace_instant("retry", sim.now());
                eng.note_pressure(dst);
                let mut inner = eng.inner.borrow_mut();
                inner.stats.am_sent.dec();
                inner
                    .pending
                    .push_front(Command::Backend(Box::new(LciCmd::RawSendb {
                        dst,
                        tag,
                        size,
                        data,
                    })));
                costs.call_base
            }
        }
    }

    fn issue_am_direct(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime {
        {
            let mut inner = eng.inner.borrow_mut();
            inner.stats.am_submitted.inc();
            inner.stats.am_sent.inc();
        }
        let costs = self.ep.costs();
        let res = if size <= costs.imm_max {
            self.ep
                .sendi(sim, dst, tag, size, Frames::from(data.clone()))
        } else {
            self.ep
                .sendb(sim, dst, tag, size, Frames::from(data.clone()))
        };
        match res {
            Ok(c) => c,
            Err(_) => {
                // Back-pressure: fall back to funneling. The funneled path
                // re-counts the submission, so undo this one.
                self.st.borrow_mut().stat_retries.inc();
                eng.trace_instant("retry", sim.now());
                eng.note_pressure(dst);
                {
                    let mut inner = eng.inner.borrow_mut();
                    inner.stats.am_sent.dec();
                    inner.stats.am_submitted.dec();
                }
                eng.send_am_opts(sim, dst, tag, size, data, false);
                costs.call_base
            }
        }
    }

    /// Issue a put from the communication thread (§5.3.3): small payloads
    /// ride eagerly in the handshake; larger ones go `sendd` + handshake.
    fn issue_put(&self, eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
        eng.inner.borrow_mut().stats.puts_started.inc();
        let rtag = {
            let mut st = self.st.borrow_mut();
            let t = st.put_seq;
            st.put_seq += 1;
            t
        };
        let PutRequest {
            dst,
            size,
            data,
            r_tag,
            cb_data,
            on_local,
        } = req;

        if size <= eng.eager_put_max_for(dst) {
            let eager = match data {
                Some(b) => EagerMode::EagerBytes(b),
                None => EagerMode::EagerCostOnly,
            };
            let hs = PutHandshake {
                data_tag: rtag,
                size: size as u64,
                r_tag,
                cb_data,
                eager,
            };
            let wire_len = hs.wire_len();
            match self.ep.sendb(
                sim,
                dst,
                HS_FLAG | rtag,
                wire_len,
                Frames::from(hs.encode_with(eng.buf_pool())),
            ) {
                Ok(c) => {
                    eng.wire_add(dst, sim.now(), 1);
                    // Data copied into the packet: local completion
                    // immediate.
                    eng.inner
                        .borrow_mut()
                        .micro
                        .push_back(Micro::Backend(Box::new(LciMicro::Data(
                            DataDone::LocalEager(Some(on_local)),
                        ))));
                    c
                }
                Err(LciError::Retry) => {
                    // Requeue the whole put; retried on the next wake.
                    {
                        let mut st = self.st.borrow_mut();
                        st.stat_retries.inc();
                        st.put_seq -= 1;
                    }
                    eng.trace_instant("retry", sim.now());
                    eng.note_pressure(dst);
                    let mut inner = eng.inner.borrow_mut();
                    inner.stats.puts_started.dec();
                    let data = match hs.eager {
                        EagerMode::EagerBytes(b) => Some(b),
                        _ => None,
                    };
                    inner.pending.push_front(Command::Put {
                        req: PutRequest {
                            dst,
                            size,
                            data,
                            r_tag: hs.r_tag,
                            cb_data: hs.cb_data,
                            on_local,
                        },
                        submitted_at: None,
                    });
                    eng.cfg.cmd_overhead
                }
            }
        } else {
            // Rendezvous: direct send first (its RTS waits at the target
            // until the handshake posts the receive), then the handshake.
            let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
            let weak_st = Rc::downgrade(&self.st);
            let send_res = self.ep.sendd(
                sim,
                dst,
                rtag,
                size,
                data.clone(),
                rtag,
                OnComplete::Handler(Box::new(move |sim, e| {
                    if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                        st.borrow_mut()
                            .data_fifo
                            .push_back(DataDone::Local { rtag: e.ctx });
                        CommEngine::wake_comm(&eng, sim);
                    }
                    COMP_HANDLER_COST
                })),
            );
            let mut cost = match send_res {
                Ok(c) => {
                    eng.wire_add(dst, sim.now(), 1);
                    c
                }
                Err(LciError::Retry) => {
                    {
                        let mut st = self.st.borrow_mut();
                        st.stat_retries.inc();
                        st.put_seq -= 1;
                    }
                    eng.trace_instant("retry", sim.now());
                    eng.note_pressure(dst);
                    let mut inner = eng.inner.borrow_mut();
                    inner.stats.puts_started.dec();
                    inner.pending.push_front(Command::Put {
                        req: PutRequest {
                            dst,
                            size,
                            data,
                            r_tag,
                            cb_data,
                            on_local,
                        },
                        submitted_at: None,
                    });
                    return eng.cfg.cmd_overhead;
                }
            };
            self.st
                .borrow_mut()
                .origin_puts
                .insert(rtag, Some(on_local));
            let hs = PutHandshake {
                data_tag: rtag,
                size: size as u64,
                r_tag,
                cb_data,
                eager: EagerMode::Rendezvous,
            };
            let enc = hs.encode_with(eng.buf_pool());
            let wire_len = enc.len();
            match self.ep.sendb(
                sim,
                dst,
                HS_FLAG | rtag,
                wire_len,
                Frames::from(enc.clone()),
            ) {
                Ok(c) => cost += c,
                Err(LciError::Retry) => {
                    // The data send is in flight; only the handshake needs
                    // retrying.
                    self.st.borrow_mut().stat_retries.inc();
                    eng.trace_instant("retry", sim.now());
                    eng.note_pressure(dst);
                    eng.inner
                        .borrow_mut()
                        .pending
                        .push_front(Command::Backend(Box::new(LciCmd::RawSendb {
                            dst,
                            tag: HS_FLAG | rtag,
                            size: wire_len,
                            data: Frames::from(enc),
                        })));
                }
            }
            cost
        }
    }

    fn next_micro(&self, eng: &CommEngine) -> Option<BackendMicro> {
        let _ = eng;
        let st = self.st.borrow();
        if !st.am_fifo.is_empty()
            || !st.data_fifo.is_empty()
            || (st.retry_wanted && !st.delegated.is_empty())
        {
            return Some(BackendMicro::Unit(MICRO_FIFO_ROUND));
        }
        None
    }

    fn exec_micro(&self, eng: &Rc<CommEngine>, sim: &mut Sim, task: BackendTask) -> SimTime {
        match *task.downcast::<LciMicro>().expect("foreign micro-task") {
            LciMicro::Am(a) => self.exec_am(eng, sim, a),
            LciMicro::Data(d) => self.exec_data(eng, sim, d),
        }
    }

    fn exec_micro_unit(&self, eng: &Rc<CommEngine>, sim: &mut Sim, code: u32) -> SimTime {
        match code {
            MICRO_FIFO_ROUND => self.exec_fifo_round(eng),
            MICRO_DELEGATED => self.exec_delegated(eng, sim),
            c => panic!("unknown unit micro-task code {c}"),
        }
    }

    fn micro_label(&self, task: &BackendTask) -> &'static str {
        match task.downcast_ref::<LciMicro>() {
            Some(LciMicro::Am(_)) => "am",
            Some(LciMicro::Data(_)) => "data",
            None => "backend",
        }
    }

    fn micro_unit_label(&self, code: u32) -> &'static str {
        match code {
            MICRO_FIFO_ROUND => "fifo_round",
            MICRO_DELEGATED => "delegated",
            _ => "backend",
        }
    }

    fn exec_command(&self, eng: &Rc<CommEngine>, sim: &mut Sim, cmd: BackendTask) -> SimTime {
        match *cmd.downcast::<LciCmd>().expect("foreign command") {
            LciCmd::RawSendb {
                dst,
                tag,
                size,
                data,
            } => match self.ep.sendb(sim, dst, tag, size, data.clone()) {
                Ok(c) => c,
                Err(_) => {
                    self.st.borrow_mut().stat_retries.inc();
                    eng.trace_instant("retry", sim.now());
                    eng.note_pressure(dst);
                    eng.inner
                        .borrow_mut()
                        .pending
                        .push_front(Command::Backend(Box::new(LciCmd::RawSendb {
                            dst,
                            tag,
                            size,
                            data,
                        })));
                    SimTime::ZERO
                }
            },
        }
    }

    /// Pump the dedicated progress thread (§5.3.1): if it is idle and LCI
    /// has work, run one `LCI_progress` sweep and charge its cost to the
    /// progress core.
    fn drain_progress(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        {
            let mut st = self.st.borrow_mut();
            if st.progress_busy {
                return;
            }
            if !self.ep.has_work() {
                return;
            }
            st.progress_busy = true;
        }
        let cost = self.ep.progress(sim) + eng.cfg.wake_latency;
        self.st.borrow_mut().stat_progress_busy += cost;
        if eng.cfg.trace {
            let now = sim.now();
            eng.trace
                .borrow_mut()
                .record(&eng.prog_track, "progress", now, now + cost);
        }
        // Ablation: share the communication thread's core instead of using
        // the dedicated progress core(s). With several progress threads
        // (§7), the sweep lands on the earliest-available core — an
        // idealized work split.
        let core = if eng.cfg.lci_shared_progress {
            eng.comm_core.clone()
        } else {
            eng.progress_cores
                .iter()
                .min_by_key(|c| c.borrow().available_at())
                .expect("progress core")
                .clone()
        };
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        core.borrow_mut().charge(sim, cost, move |sim| {
            if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                st.borrow_mut().progress_busy = false;
                eng.backend.drain_progress(&eng, sim);
            }
        });
    }

    fn stats(&self, mut base: EngineStats) -> EngineStats {
        let st = self.st.borrow();
        base.delegated_recvs.add(st.stat_delegated.get());
        base.backend_retries.add(st.stat_retries.get());
        base.progress_busy = st.stat_progress_busy;
        base
    }
}
