//! The MPI backend (§4.2): persistent wildcard receives for AMs, handshake +
//! two-sided transfers for puts, a bounded global request array polled with
//! `Testsome`, inline callbacks, deferred sends and dynamic receives.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::{Rc, Weak};

use amt_minimpi::{Completion, Mpi, ReqId, SrcSel};
use amt_netmodel::NodeId;
use amt_simnet::{CoreHandle, CoreResource, Counter, Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::backend::{BackendMicro, BackendTask, CommBackend};
use crate::config::BackendKind;
use crate::engine::{
    dispatch_am, dispatch_onesided, dispatch_put_local, AmEvent, CommEngine, Micro, PutEvent,
    PutLocalCb, PutRequest, RESERVED_TAG_BASE,
};
use crate::stats::EngineStats;
use crate::wire::{EagerMode, PutHandshake};

/// Internal AM tag carrying put handshakes.
pub(crate) const HS_TAG: u64 = RESERVED_TAG_BASE;
/// Data-transfer tags: `DATA_TAG_BASE + put_id`, unique per origin.
pub(crate) const DATA_TAG_BASE: u64 = RESERVED_TAG_BASE + 1;

/// Unit micro-task code: one `Testsome` sweep over the global request
/// array. Data-less, so it travels as [`BackendMicro::Unit`] — no boxed
/// allocation per progress round.
const MICRO_PROGRESS: u32 = 0;

/// The MPI backend's private data-carrying micro-tasks, carried through the
/// engine's generic queue as [`BackendTask`]s.
enum MpiMicro {
    /// One completed request's callback work.
    Completion(Completion),
}

enum TrackKind {
    /// A persistent AM receive for `tag`.
    AmRecv { tag: u64 },
    /// The origin-side data send of a put.
    DataSend { put_id: u64 },
    /// The target-side data receive of a put.
    DataRecv { src: NodeId, data_tag: u64 },
}

struct TrackedReq {
    req: ReqId,
    kind: TrackKind,
    /// FIFO promotion order for dynamic receives.
    seq: u64,
}

struct TargetPut {
    r_tag: u64,
    cb_data: Bytes,
}

/// Backend-private state, shared with the library waker.
#[derive(Default)]
struct MpiState {
    /// The global request array (`5 × N_am + 30` entries in the paper).
    tracked: Vec<TrackedReq>,
    /// Dynamically-allocated receives, posted but *not polled* until
    /// promoted into the global array (§4.2.2).
    dynamic: VecDeque<TrackedReq>,
    /// Data transfers (sends + receives) currently in the global array.
    slots_in_use: usize,
    /// Puts waiting for a free transfer slot, FIFO.
    deferred_puts: VecDeque<(u64, PutRequest)>,
    /// Sequence source for FIFO promotion ordering.
    next_seq: u64,
    /// Origin-side put completions by put id.
    origin_puts: HashMap<u64, Option<PutLocalCb>>,
    /// Target-side put metadata by (origin, data tag).
    target_puts: HashMap<(NodeId, u64), TargetPut>,
    put_seq: u64,
    /// A `Testsome` sweep is wanted (set by the backend waker).
    progress_queued: bool,
    /// Reusable request-id scratch for `Testsome` sweeps (no per-sweep
    /// allocation once it has grown to the array size).
    req_scratch: Vec<ReqId>,
    /// Times a put had to be deferred for lack of transfer slots.
    stat_deferred: Counter,
    /// Times a receive was posted as "dynamic" outside the polled array.
    stat_dynamic: Counter,
}

impl MpiState {
    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

pub(crate) struct MpiBackend {
    mpi: Mpi,
    /// MPI library serialization (multithreaded senders contend here).
    lock: CoreHandle,
    st: Rc<RefCell<MpiState>>,
}

impl MpiBackend {
    pub(crate) fn new(node: NodeId, mpi: Mpi) -> Self {
        MpiBackend {
            mpi,
            lock: CoreResource::new_shared(format!("n{node}.mpilock")),
            st: Rc::new(RefCell::new(MpiState::default())),
        }
    }

    fn post_persistent(&self, eng: &Rc<CommEngine>, sim: &mut Sim, tag: u64) {
        for _ in 0..eng.cfg.am_recv_depth {
            let (req, _c) = self.mpi.recv_init(SrcSel::Any, tag);
            self.mpi.start(sim, req);
            let mut st = self.st.borrow_mut();
            let seq = st.bump_seq();
            st.tracked.push(TrackedReq {
                req,
                kind: TrackKind::AmRecv { tag },
                seq,
            });
        }
    }

    /// One `Testsome` sweep over the global array. Completions become their
    /// own micro-tasks; if any completed, another sweep follows them
    /// (§4.2.3: "if no communications were completed ... the progress
    /// function returns; otherwise, it repeats").
    fn exec_progress(&self, eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
        let reqs = {
            let mut st = self.st.borrow_mut();
            let mut reqs = std::mem::take(&mut st.req_scratch);
            reqs.clear();
            reqs.extend(st.tracked.iter().map(|t| t.req));
            reqs
        };
        let (completions, cost) = self.mpi.testsome(sim, &reqs);
        self.st.borrow_mut().req_scratch = reqs;
        if !completions.is_empty() {
            let mut inner = eng.inner.borrow_mut();
            for c in completions {
                inner
                    .micro
                    .push_back(Micro::Backend(Box::new(MpiMicro::Completion(c))));
            }
            inner.micro.push_back(Micro::BackendUnit(MICRO_PROGRESS));
        }
        cost
    }

    /// Process one completed request: run its callback inline (this is the
    /// §4.3/§5.2 pathology — while this executes, nothing else progresses),
    /// then re-enable persistent receives / release transfer slots / promote
    /// deferred work.
    fn exec_completion(&self, eng: &Rc<CommEngine>, sim: &mut Sim, c: Completion) -> SimTime {
        let pos = self.st.borrow().tracked.iter().position(|t| t.req == c.req);
        let Some(pos) = pos else {
            panic!("completion for untracked request");
        };
        let mut cost = SimTime::ZERO;
        let kind = {
            let st = self.st.borrow();
            match &st.tracked[pos].kind {
                TrackKind::AmRecv { tag } => TrackKind::AmRecv { tag: *tag },
                TrackKind::DataSend { put_id } => TrackKind::DataSend { put_id: *put_id },
                TrackKind::DataRecv { src, data_tag } => TrackKind::DataRecv {
                    src: *src,
                    data_tag: *data_tag,
                },
            }
        };
        match kind {
            TrackKind::AmRecv { tag } => {
                // Execute the callback, then re-enable the persistent
                // receive.
                if tag == HS_TAG {
                    let payload = c.status.data.into_bytes().expect("handshake payload");
                    cost += self.handle_handshake(eng, sim, c.status.src, payload);
                } else {
                    // Wire stage ends when `Testsome` discovers the receive;
                    // the callback then runs inline (§4.2.3), so the deliver
                    // stage is structurally zero on this backend.
                    eng.record_stage("am.wire_ns", sim.now().saturating_sub(c.status.sent_at));
                    eng.record_stage("am.deliver_ns", SimTime::ZERO);
                    cost += dispatch_am(
                        eng,
                        sim,
                        AmEvent {
                            src: c.status.src,
                            tag,
                            size: c.status.size,
                            data: c.status.data,
                        },
                    );
                }
                cost += self.mpi.start(sim, c.req);
            }
            TrackKind::DataSend { put_id } => {
                self.st.borrow_mut().tracked.remove(pos);
                self.release_slot();
                let cb = self
                    .st
                    .borrow_mut()
                    .origin_puts
                    .remove(&put_id)
                    .expect("unknown put id")
                    .expect("local completion consumed twice");
                cost += dispatch_put_local(eng, sim, cb);
                cost += self.promote(eng, sim);
            }
            TrackKind::DataRecv { src, data_tag } => {
                self.st.borrow_mut().tracked.remove(pos);
                self.release_slot();
                let now = sim.now();
                eng.record_stage("put.wire_ns", now.saturating_sub(c.status.sent_at));
                eng.record_stage("put.deliver_ns", SimTime::ZERO);
                eng.wire_add(eng.node, now, -1);
                let meta = self
                    .st
                    .borrow_mut()
                    .target_puts
                    .remove(&(src, data_tag))
                    .expect("data arrived without handshake");
                cost += dispatch_onesided(
                    eng,
                    sim,
                    meta.r_tag,
                    PutEvent {
                        src,
                        size: c.status.size,
                        data: c.status.data.into_bytes(),
                        cb_data: meta.cb_data,
                    },
                );
                cost += self.promote(eng, sim);
            }
        }
        cost
    }

    fn release_slot(&self) {
        let mut st = self.st.borrow_mut();
        debug_assert!(st.slots_in_use > 0);
        st.slots_in_use -= 1;
    }

    fn start_put(&self, eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
        let put_id = {
            let mut st = self.st.borrow_mut();
            let id = st.put_seq;
            st.put_seq += 1;
            id
        };
        let data_tag = DATA_TAG_BASE + put_id;
        let hs = PutHandshake {
            data_tag,
            size: req.size as u64,
            r_tag: req.r_tag,
            cb_data: req.cb_data,
            eager: EagerMode::Rendezvous,
        };
        let enc = hs.encode_with(eng.buf_pool());
        let mut cost = self
            .mpi
            .send(sim, req.dst, HS_TAG, enc.len(), Frames::from(enc));
        let (sreq, c2) = self
            .mpi
            .isend(sim, req.dst, data_tag, req.size, Frames::from(req.data));
        cost += c2;
        eng.wire_add(req.dst, sim.now(), 1);
        let mut st = self.st.borrow_mut();
        let seq = st.bump_seq();
        st.tracked.push(TrackedReq {
            req: sreq,
            kind: TrackKind::DataSend { put_id },
            seq,
        });
        st.origin_puts.insert(put_id, Some(req.on_local));
        st.progress_queued = true;
        cost
    }

    /// Target side of the handshake: post the matching receive — into the
    /// global array when a slot is free, as an unpolled *dynamic* receive
    /// otherwise (§4.2.2).
    fn handle_handshake(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        src: NodeId,
        payload: Bytes,
    ) -> SimTime {
        let hs = PutHandshake::decode(payload);
        debug_assert!(
            matches!(hs.eager, EagerMode::Rendezvous),
            "MPI puts never ride eagerly"
        );
        let (rreq, mut cost) = self.mpi.irecv(sim, SrcSel::Rank(src), hs.data_tag);
        let mut st = self.st.borrow_mut();
        st.target_puts.insert(
            (src, hs.data_tag),
            TargetPut {
                r_tag: hs.r_tag,
                cb_data: hs.cb_data,
            },
        );
        let seq = st.bump_seq();
        let tracked = TrackedReq {
            req: rreq,
            kind: TrackKind::DataRecv {
                src,
                data_tag: hs.data_tag,
            },
            seq,
        };
        if st.slots_in_use < eng.max_transfers_now() {
            st.slots_in_use += 1;
            st.tracked.push(tracked);
            st.progress_queued = true;
        } else {
            st.stat_dynamic.inc();
            st.dynamic.push_back(tracked);
            eng.trace_instant("dynamic_recv", sim.now());
        }
        cost += eng.cfg.cmd_overhead;
        cost
    }

    /// While slots are free, start deferred puts and promote dynamic
    /// receives in FIFO order (§4.2.3).
    fn promote(&self, eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            enum Next {
                Put(PutRequest),
                Dyn,
                None,
            }
            let next = {
                let mut st = self.st.borrow_mut();
                if st.slots_in_use >= eng.max_transfers_now() {
                    Next::None
                } else {
                    let pseq = st.deferred_puts.front().map(|(s, _)| *s);
                    let dseq = st.dynamic.front().map(|t| t.seq);
                    match (pseq, dseq) {
                        (None, None) => Next::None,
                        (Some(_), None) => {
                            let (_, p) = st.deferred_puts.pop_front().expect("front checked");
                            st.slots_in_use += 1;
                            Next::Put(p)
                        }
                        (None, Some(_)) => Next::Dyn,
                        (Some(p), Some(d)) => {
                            if p < d {
                                let (_, p) = st.deferred_puts.pop_front().expect("front checked");
                                st.slots_in_use += 1;
                                Next::Put(p)
                            } else {
                                Next::Dyn
                            }
                        }
                    }
                }
            };
            match next {
                Next::None => break,
                Next::Put(p) => {
                    cost += self.start_put(eng, sim, p);
                }
                Next::Dyn => {
                    let mut st = self.st.borrow_mut();
                    let t = st.dynamic.pop_front().expect("checked non-empty");
                    st.slots_in_use += 1;
                    st.tracked.push(t);
                    st.progress_queued = true;
                    cost += eng.cfg.cmd_overhead;
                }
            }
        }
        cost
    }
}

impl CommBackend for MpiBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mpi
    }

    fn init(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        let weak_eng: Weak<CommEngine> = Rc::downgrade(eng);
        let weak_st = Rc::downgrade(&self.st);
        self.mpi.set_waker(move |sim| {
            if let (Some(eng), Some(st)) = (weak_eng.upgrade(), weak_st.upgrade()) {
                st.borrow_mut().progress_queued = true;
                CommEngine::wake_comm(&eng, sim);
            }
        });
        // Post the persistent receives for the internal handshake tag.
        self.post_persistent(eng, sim, HS_TAG);
    }

    fn register_am_tag(&self, eng: &Rc<CommEngine>, sim: &mut Sim, tag: u64) {
        self.post_persistent(eng, sim, tag);
    }

    fn issue_am(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> SimTime {
        let _ = eng;
        self.mpi.send(sim, dst, tag, size, data)
    }

    fn issue_am_direct(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime {
        {
            let mut inner = eng.inner.borrow_mut();
            inner.stats.am_submitted.inc();
            inner.stats.am_sent.inc();
        }
        let costs = self.mpi.costs();
        let op_cost = costs.call_base + costs.send_eager_base + costs.copy_cost(size);
        let now = sim.now();
        let end = self.lock.borrow_mut().occupy(now, op_cost);
        // The message leaves once the lock slot is served.
        let mpi = self.mpi.clone();
        sim.schedule_at(end, move |sim| {
            let _ = mpi.send(sim, dst, tag, size, Frames::from(data));
        });
        end - now
    }

    /// Start a put: handshake AM + data `isend` when a transfer slot is
    /// free, deferred otherwise (§4.2.2).
    fn issue_put(&self, eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
        eng.inner.borrow_mut().stats.puts_started.inc();
        {
            let mut st = self.st.borrow_mut();
            if st.slots_in_use >= eng.max_transfers_now() {
                st.stat_deferred.inc();
                let seq = st.bump_seq();
                let dst = req.dst;
                st.deferred_puts.push_back((seq, req));
                eng.trace_instant("deferred_put", sim.now());
                eng.note_pressure(dst);
                return eng.cfg.cmd_overhead;
            }
            st.slots_in_use += 1;
        }
        self.start_put(eng, sim, req)
    }

    fn next_micro(&self, eng: &CommEngine) -> Option<BackendMicro> {
        let _ = eng;
        let mut st = self.st.borrow_mut();
        if st.progress_queued {
            st.progress_queued = false;
            return Some(BackendMicro::Unit(MICRO_PROGRESS));
        }
        None
    }

    fn exec_micro(&self, eng: &Rc<CommEngine>, sim: &mut Sim, task: BackendTask) -> SimTime {
        match *task.downcast::<MpiMicro>().expect("foreign micro-task") {
            MpiMicro::Completion(c) => self.exec_completion(eng, sim, c),
        }
    }

    fn exec_micro_unit(&self, eng: &Rc<CommEngine>, sim: &mut Sim, code: u32) -> SimTime {
        debug_assert_eq!(code, MICRO_PROGRESS);
        self.exec_progress(eng, sim)
    }

    fn micro_label(&self, task: &BackendTask) -> &'static str {
        match task.downcast_ref::<MpiMicro>() {
            Some(MpiMicro::Completion(_)) => "completion",
            None => "backend",
        }
    }

    fn micro_unit_label(&self, code: u32) -> &'static str {
        debug_assert_eq!(code, MICRO_PROGRESS);
        "testsome"
    }

    fn serializing_lock(&self) -> Option<CoreHandle> {
        Some(self.lock.clone())
    }

    fn stats(&self, mut base: EngineStats) -> EngineStats {
        let st = self.st.borrow();
        base.deferred_puts.add(st.stat_deferred.get());
        base.dynamic_recvs.add(st.stat_dynamic.get());
        base
    }
}
