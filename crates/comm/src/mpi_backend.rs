//! The MPI backend (§4.2): persistent wildcard receives for AMs, handshake +
//! two-sided transfers for puts, a bounded global request array polled with
//! `Testsome`, inline callbacks, deferred sends and dynamic receives.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use amt_minimpi::{Completion, ReqId, SrcSel};
use amt_netmodel::NodeId;
use amt_simnet::{Sim, SimTime};
use bytes::Bytes;

use crate::engine::{
    dispatch_am, dispatch_onesided, dispatch_put_local, AmEvent, CommEngine, Micro, PutEvent,
    PutLocalCb, PutRequest, RESERVED_TAG_BASE,
};
use crate::wire::{EagerMode, PutHandshake};

/// Internal AM tag carrying put handshakes.
pub(crate) const HS_TAG: u64 = RESERVED_TAG_BASE;
/// Data-transfer tags: `DATA_TAG_BASE + put_id`, unique per origin.
pub(crate) const DATA_TAG_BASE: u64 = RESERVED_TAG_BASE + 1;

pub(crate) enum TrackKind {
    /// A persistent AM receive for `tag`.
    AmRecv { tag: u64 },
    /// The origin-side data send of a put.
    DataSend { put_id: u64 },
    /// The target-side data receive of a put.
    DataRecv { src: NodeId, data_tag: u64 },
}

pub(crate) struct TrackedReq {
    pub req: ReqId,
    pub kind: TrackKind,
    /// FIFO promotion order for dynamic receives.
    pub seq: u64,
}

pub(crate) struct TargetPut {
    pub r_tag: u64,
    pub cb_data: Bytes,
}

/// Backend state living inside the engine.
#[derive(Default)]
pub(crate) struct MpiState {
    /// The global request array (`5 × N_am + 30` entries in the paper).
    pub tracked: Vec<TrackedReq>,
    /// Dynamically-allocated receives, posted but *not polled* until
    /// promoted into the global array (§4.2.2).
    pub dynamic: VecDeque<TrackedReq>,
    /// Data transfers (sends + receives) currently in the global array.
    pub slots_in_use: usize,
    /// Puts waiting for a free transfer slot, FIFO.
    pub deferred_puts: VecDeque<(u64, PutRequest)>,
    /// Sequence source for FIFO promotion ordering.
    pub next_seq: u64,
    /// Origin-side put completions by put id.
    pub origin_puts: HashMap<u64, Option<PutLocalCb>>,
    /// Target-side put metadata by (origin, data tag).
    pub target_puts: HashMap<(NodeId, u64), TargetPut>,
    pub put_seq: u64,
    /// A `Testsome` sweep is wanted (set by the backend waker).
    pub progress_queued: bool,
}

impl MpiState {
    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

/// Post the persistent receives for the internal handshake tag.
pub(crate) fn register_internal(eng: &Rc<CommEngine>, sim: &mut Sim) {
    post_persistent(eng, sim, HS_TAG);
}

/// Post the persistent receives for a user AM tag.
pub(crate) fn register_am_tag(eng: &Rc<CommEngine>, sim: &mut Sim, tag: u64) {
    post_persistent(eng, sim, tag);
}

fn post_persistent(eng: &Rc<CommEngine>, sim: &mut Sim, tag: u64) {
    let mpi = eng.mpi.as_ref().expect("mpi backend").clone();
    for _ in 0..eng.cfg.am_recv_depth {
        let (req, _c) = mpi.recv_init(SrcSel::Any, tag);
        mpi.start(sim, req);
        let mut inner = eng.inner.borrow_mut();
        let seq = inner.mpi.bump_seq();
        inner.mpi.tracked.push(TrackedReq {
            req,
            kind: TrackKind::AmRecv { tag },
            seq,
        });
    }
}

/// One `Testsome` sweep over the global array. Completions become their own
/// micro-tasks; if any completed, another sweep follows them (§4.2.3: "if no
/// communications were completed ... the progress function returns;
/// otherwise, it repeats").
pub(crate) fn exec_progress(eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
    let mpi = eng.mpi.as_ref().expect("mpi backend").clone();
    let reqs: Vec<ReqId> = eng
        .inner
        .borrow()
        .mpi
        .tracked
        .iter()
        .map(|t| t.req)
        .collect();
    let (completions, cost) = mpi.testsome(sim, &reqs);
    if !completions.is_empty() {
        let mut inner = eng.inner.borrow_mut();
        for c in completions {
            inner.micro.push_back(Micro::MpiCompletion(c));
        }
        inner.micro.push_back(Micro::MpiProgress);
    }
    cost
}

/// Process one completed request: run its callback inline (this is the
/// §4.3/§5.2 pathology — while this executes, nothing else progresses), then
/// re-enable persistent receives / release transfer slots / promote deferred
/// work.
pub(crate) fn exec_completion(eng: &Rc<CommEngine>, sim: &mut Sim, c: Completion) -> SimTime {
    let mpi = eng.mpi.as_ref().expect("mpi backend").clone();
    let pos = {
        let inner = eng.inner.borrow();
        inner.mpi.tracked.iter().position(|t| t.req == c.req)
    };
    let Some(pos) = pos else {
        panic!("completion for untracked request");
    };
    let mut cost = SimTime::ZERO;
    let kind = {
        let inner = eng.inner.borrow();
        match &inner.mpi.tracked[pos].kind {
            TrackKind::AmRecv { tag } => TrackKind::AmRecv { tag: *tag },
            TrackKind::DataSend { put_id } => TrackKind::DataSend { put_id: *put_id },
            TrackKind::DataRecv { src, data_tag } => TrackKind::DataRecv {
                src: *src,
                data_tag: *data_tag,
            },
        }
    };
    match kind {
        TrackKind::AmRecv { tag } => {
            // Execute the callback, then re-enable the persistent receive.
            if tag == HS_TAG {
                cost += handle_handshake(eng, sim, c.status.src, c.status.data.expect("handshake payload"));
            } else {
                cost += dispatch_am(
                    eng,
                    sim,
                    AmEvent {
                        src: c.status.src,
                        tag,
                        size: c.status.size,
                        data: c.status.data,
                    },
                );
            }
            cost += mpi.start(sim, c.req);
        }
        TrackKind::DataSend { put_id } => {
            eng.inner.borrow_mut().mpi.tracked.remove(pos);
            release_slot(eng);
            let cb = eng
                .inner
                .borrow_mut()
                .mpi
                .origin_puts
                .remove(&put_id)
                .expect("unknown put id")
                .expect("local completion consumed twice");
            cost += dispatch_put_local(eng, sim, cb);
            cost += promote(eng, sim);
        }
        TrackKind::DataRecv { src, data_tag } => {
            eng.inner.borrow_mut().mpi.tracked.remove(pos);
            release_slot(eng);
            let meta = eng
                .inner
                .borrow_mut()
                .mpi
                .target_puts
                .remove(&(src, data_tag))
                .expect("data arrived without handshake");
            cost += dispatch_onesided(
                eng,
                sim,
                meta.r_tag,
                PutEvent {
                    src,
                    size: c.status.size,
                    data: c.status.data,
                    cb_data: meta.cb_data,
                },
            );
            cost += promote(eng, sim);
        }
    }
    cost
}

fn release_slot(eng: &Rc<CommEngine>) {
    let mut inner = eng.inner.borrow_mut();
    debug_assert!(inner.mpi.slots_in_use > 0);
    inner.mpi.slots_in_use -= 1;
}

/// Start a put: handshake AM + data `isend` when a transfer slot is free,
/// deferred otherwise (§4.2.2).
pub(crate) fn issue_put(eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
    {
        let mut inner = eng.inner.borrow_mut();
        inner.stats.puts_started += 1;
        if inner.mpi.slots_in_use >= eng.cfg.max_concurrent_transfers {
            inner.stats.deferred_puts += 1;
            let seq = inner.mpi.bump_seq();
            inner.mpi.deferred_puts.push_back((seq, req));
            return eng.cfg.cmd_overhead;
        }
        inner.mpi.slots_in_use += 1;
    }
    start_put(eng, sim, req)
}

fn start_put(eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
    let mpi = eng.mpi.as_ref().expect("mpi backend").clone();
    let put_id = {
        let mut inner = eng.inner.borrow_mut();
        let id = inner.mpi.put_seq;
        inner.mpi.put_seq += 1;
        id
    };
    let data_tag = DATA_TAG_BASE + put_id;
    let hs = PutHandshake {
        data_tag,
        size: req.size as u64,
        r_tag: req.r_tag,
        cb_data: req.cb_data,
        eager: EagerMode::Rendezvous,
    };
    let enc = hs.encode();
    let mut cost = mpi.send(sim, req.dst, HS_TAG, enc.len(), Some(enc));
    let (sreq, c2) = mpi.isend(sim, req.dst, data_tag, req.size, req.data);
    cost += c2;
    let mut inner = eng.inner.borrow_mut();
    let seq = inner.mpi.bump_seq();
    inner.mpi.tracked.push(TrackedReq {
        req: sreq,
        kind: TrackKind::DataSend { put_id },
        seq,
    });
    inner.mpi.origin_puts.insert(put_id, Some(req.on_local));
    inner.mpi.progress_queued = true;
    cost
}

/// Target side of the handshake: post the matching receive — into the
/// global array when a slot is free, as an unpolled *dynamic* receive
/// otherwise (§4.2.2).
fn handle_handshake(eng: &Rc<CommEngine>, sim: &mut Sim, src: NodeId, payload: Bytes) -> SimTime {
    let mpi = eng.mpi.as_ref().expect("mpi backend").clone();
    let hs = PutHandshake::decode(payload);
    debug_assert!(matches!(hs.eager, EagerMode::Rendezvous), "MPI puts never ride eagerly");
    let (rreq, mut cost) = mpi.irecv(sim, SrcSel::Rank(src), hs.data_tag);
    let mut inner = eng.inner.borrow_mut();
    inner.mpi.target_puts.insert(
        (src, hs.data_tag),
        TargetPut {
            r_tag: hs.r_tag,
            cb_data: hs.cb_data,
        },
    );
    let seq = inner.mpi.bump_seq();
    let tracked = TrackedReq {
        req: rreq,
        kind: TrackKind::DataRecv {
            src,
            data_tag: hs.data_tag,
        },
        seq,
    };
    if inner.mpi.slots_in_use < eng.cfg.max_concurrent_transfers {
        inner.mpi.slots_in_use += 1;
        inner.mpi.tracked.push(tracked);
        inner.mpi.progress_queued = true;
    } else {
        inner.stats.dynamic_recvs += 1;
        inner.mpi.dynamic.push_back(tracked);
    }
    cost += eng.cfg.cmd_overhead;
    cost
}

/// While slots are free, start deferred puts and promote dynamic receives
/// in FIFO order (§4.2.3).
fn promote(eng: &Rc<CommEngine>, sim: &mut Sim) -> SimTime {
    let mut cost = SimTime::ZERO;
    loop {
        enum Next {
            Put(PutRequest),
            Dyn,
            None,
        }
        let next = {
            let mut inner = eng.inner.borrow_mut();
            if inner.mpi.slots_in_use >= eng.cfg.max_concurrent_transfers {
                Next::None
            } else {
                let pseq = inner.mpi.deferred_puts.front().map(|(s, _)| *s);
                let dseq = inner.mpi.dynamic.front().map(|t| t.seq);
                match (pseq, dseq) {
                    (None, None) => Next::None,
                    (Some(_), None) => {
                        let (_, p) = inner.mpi.deferred_puts.pop_front().expect("front checked");
                        inner.mpi.slots_in_use += 1;
                        Next::Put(p)
                    }
                    (None, Some(_)) => Next::Dyn,
                    (Some(p), Some(d)) => {
                        if p < d {
                            let (_, p) =
                                inner.mpi.deferred_puts.pop_front().expect("front checked");
                            inner.mpi.slots_in_use += 1;
                            Next::Put(p)
                        } else {
                            Next::Dyn
                        }
                    }
                }
            }
        };
        match next {
            Next::None => break,
            Next::Put(p) => {
                cost += start_put(eng, sim, p);
            }
            Next::Dyn => {
                let mut inner = eng.inner.borrow_mut();
                let t = inner.mpi.dynamic.pop_front().expect("checked non-empty");
                inner.mpi.slots_in_use += 1;
                inner.mpi.tracked.push(t);
                inner.mpi.progress_queued = true;
                cost += eng.cfg.cmd_overhead;
            }
        }
    }
    cost
}
