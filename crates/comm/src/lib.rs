//! # amt-comm
//!
//! The PaRSEC-style **communication engine** (paper §4–§5): the abstraction
//! of Listing 1 — registered active messages, one-sided `put` with remote
//! completion callbacks, explicit progress — over pluggable backends behind
//! an object-safe `CommBackend` trait (`backend.rs`). The engine itself
//! never branches on the backend kind; the single construction factory
//! does.
//!
//! * **MPI backend** (§4.2): five persistent wildcard receives per AM tag,
//!   blocking eager sends for AMs, put emulated with a handshake AM plus
//!   two-sided transfers on unique tags, a global request array capped at 30
//!   concurrent data transfers polled with `Testsome`, completion callbacks
//!   executed *inline in the progress loop* (blocking all other progress —
//!   the measured pathology), deferred sends and dynamically-allocated
//!   receives promoted FIFO as slots free up.
//! * **LCI backend** (§5.3): a dedicated **progress thread** on its own core
//!   draining `LCI_progress`; active messages delivered through dynamically
//!   allocated buffers and pushed onto FIFO completion queues consumed by
//!   the communication thread (≤5 AM completions per round, then all bulk
//!   data completions, looping); put handshakes on a specialized tag path
//!   that bypasses the AM hash lookup; small puts carried eagerly inside the
//!   handshake; `Retry` on receive posting delegated from the progress
//!   thread to the communication thread.
//! * **LCI direct-put backend** (§7): the LCI backend with large puts
//!   issued as a single one-sided `putd` — the completion descriptor rides
//!   as immediate data, eliminating the handshake message and the
//!   rendezvous round-trip entirely. Small puts stay on the eager inline
//!   path, so direct put is never slower than the handshake emulation.
//!
//! ## The communication thread (§4.3)
//!
//! Each node's engine embodies PaRSEC's communication thread as a
//! **micro-task actor** pinned to a dedicated simulated core: every unit of
//! work (a batch of submitted commands, one `Testsome` sweep, one completion
//! callback) executes as a separate charge on that core, so a long active
//! message callback really does delay everything queued behind it — in the
//! MPI backend that includes all matching and progress, in the LCI backends
//! only the callback FIFOs (the progress thread keeps running).
//!
//! Worker threads normally *funnel* ACTIVATE-class messages through the
//! communication thread (with per-destination aggregation); the
//! **multithreaded mode** (§6.4.3) lets workers send directly —
//! [`CommEngine::send_am_direct`] — which disables aggregation and, for the
//! MPI backend, contends on the library's serializing lock.

mod backend;
pub mod collectives;
mod config;
mod engine;
mod lci_backend;
mod lci_direct;
mod mpi_backend;
pub mod shm;
mod stats;
pub mod tune;
mod wire;

pub use collectives::{
    kary_children, kary_parent, EngineCollectives, ReduceStep, TreeBcast, TreeReduce,
};
pub use config::{BackendKind, EngineConfig};
pub use engine::{
    AmCallback, AmEvent, CommEngine, CommWorld, OnesidedCallback, PutEvent, PutLocalCb, PutRequest,
};
pub use shm::{ShmMsg, ShmNode, ShmWorld};
pub use stats::EngineStats;
pub use tune::{TuneConfig, TuneEvents, Tuner, WindowBounds, WindowState};

#[cfg(test)]
mod tests;
