//! The backend seam: every communication library the engine can sit on
//! implements [`CommBackend`], and [`CommEngine`] dispatches exclusively
//! through a `Box<dyn CommBackend>` — it contains no per-backend branching.
//!
//! The only place allowed to inspect [`BackendKind`] is [`make_backends`],
//! the construction factory. Adding a backend means writing one implementor
//! and one factory arm; the engine, the micro-task actor, and every consumer
//! above stay untouched.

use std::any::Any;
use std::rc::Rc;

use amt_lci::{LciCosts, LciWorld};
use amt_minimpi::{MpiCosts, MpiWorld};
use amt_netmodel::{FabricHandle, NodeId};
use amt_simnet::{CoreHandle, Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::config::{BackendKind, EngineConfig};
use crate::engine::{CommEngine, PutRequest};
use crate::lci_backend::LciBackend;
use crate::lci_direct::LciDirect;
use crate::mpi_backend::MpiBackend;
use crate::stats::EngineStats;

/// A backend-private unit of work carried through the engine's generic
/// command and micro-task queues. The owning backend downcasts it back in
/// [`CommBackend::exec_micro`] / [`CommBackend::exec_command`].
pub(crate) type BackendTask = Box<dyn Any>;

/// A backend micro-task as returned by [`CommBackend::next_micro`]. The
/// common recurring tasks (a progress sweep, a FIFO round) carry no data, so
/// they travel as a plain code instead of a boxed `Any` — one less heap
/// allocation per communication-thread round.
pub(crate) enum BackendMicro {
    /// Data-less micro-task, identified by a backend-private code; executed
    /// via [`CommBackend::exec_micro_unit`].
    Unit(u32),
    /// Micro-task carrying data; executed via [`CommBackend::exec_micro`].
    /// The in-tree backends queue their data-carrying micro-tasks directly
    /// on the engine, so none constructs this today — it stays as the seam
    /// for backends whose recurring work must carry state.
    #[allow(dead_code)]
    Task(BackendTask),
}

/// One communication library under the engine. All methods take the engine
/// by `&Rc` so implementors can reach the shared actor state (`eng.inner`),
/// the configuration, and the simulated cores, and can hand weak engine
/// references to completion handlers.
pub(crate) trait CommBackend {
    /// The kind this implementor realizes (diagnostics only — the engine
    /// never branches on it).
    fn kind(&self) -> BackendKind;

    /// Number of dedicated progress-thread cores this backend wants.
    fn progress_threads(&self) -> usize {
        0
    }

    /// One-time wiring once the engine `Rc` exists: wakers, wire handlers,
    /// internal protocol tags.
    fn init(&self, eng: &Rc<CommEngine>, sim: &mut Sim);

    /// A user AM tag was registered (MPI posts its persistent receives
    /// here; backends with dynamic buffers need nothing).
    fn register_am_tag(&self, eng: &Rc<CommEngine>, sim: &mut Sim, tag: u64) {
        let _ = (eng, sim, tag);
    }

    /// Put an AM on the wire from the communication thread (or a callback
    /// running in its context). `data` may carry several frames when
    /// aggregation merged submissions; the backend forwards them zero-copy.
    /// Returns the CPU cost to charge.
    fn issue_am(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> SimTime;

    /// Multithreaded-mode AM send from a worker thread (§6.4.3), bypassing
    /// the communication thread. Returns the cost the caller charges to its
    /// own core — including library serialization where the backend has it.
    fn issue_am_direct(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime;

    /// Start a one-sided put from the communication thread.
    fn issue_put(&self, eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime;

    /// Pull the backend's next micro-task, if it has one ready. Called by
    /// the actor after the generic queues (pending micro-tasks, submitted
    /// commands) are empty.
    fn next_micro(&self, eng: &CommEngine) -> Option<BackendMicro>;

    /// Execute one backend micro-task previously returned by
    /// [`Self::next_micro`] or queued by the backend itself.
    fn exec_micro(&self, eng: &Rc<CommEngine>, sim: &mut Sim, task: BackendTask) -> SimTime;

    /// Execute one data-less backend micro-task previously returned by
    /// [`Self::next_micro`] as [`BackendMicro::Unit`].
    fn exec_micro_unit(&self, eng: &Rc<CommEngine>, sim: &mut Sim, code: u32) -> SimTime {
        let _ = (eng, sim, code);
        panic!("backend issued no unit micro-tasks but one arrived");
    }

    /// A short static label for a backend micro-task, used to name its span
    /// on the communication-thread trace track.
    fn micro_label(&self, task: &BackendTask) -> &'static str {
        let _ = task;
        "backend"
    }

    /// A short static label for a data-less backend micro-task.
    fn micro_unit_label(&self, code: u32) -> &'static str {
        let _ = code;
        "backend"
    }

    /// Execute one backend command the backend queued for retry (e.g. a
    /// send that hit back-pressure). Backends that never queue commands
    /// keep the default.
    fn exec_command(&self, eng: &Rc<CommEngine>, sim: &mut Sim, cmd: BackendTask) -> SimTime {
        let _ = (eng, sim, cmd);
        panic!("backend queued no commands but one arrived");
    }

    /// The library's serializing lock, if the backend has one: every
    /// communication-thread charge occupies it, so multithreaded direct
    /// senders contend with the engine (the MPI pathology of §4.3).
    fn serializing_lock(&self) -> Option<CoreHandle> {
        None
    }

    /// Drive the backend's dedicated progress machinery (the LCI progress
    /// thread of §5.3.1). Called from the backend's own waker; backends
    /// without progress threads keep the default.
    fn drain_progress(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        let _ = (eng, sim);
    }

    /// Fold the backend's private counters into an engine-stats snapshot.
    fn stats(&self, base: EngineStats) -> EngineStats;
}

/// Construct one backend per fabric node. This factory is the single place
/// in the crate that matches on [`BackendKind`].
pub(crate) fn make_backends(
    fabric: &FabricHandle,
    cfg: &EngineConfig,
) -> Vec<Box<dyn CommBackend>> {
    match cfg.backend {
        BackendKind::Mpi => MpiWorld::create(fabric, MpiCosts::default())
            .into_iter()
            .enumerate()
            .map(|(node, mpi)| Box::new(MpiBackend::new(node, mpi)) as Box<dyn CommBackend>)
            .collect(),
        BackendKind::Lci => LciWorld::create(fabric, LciCosts::default())
            .into_iter()
            .map(|ep| Box::new(LciBackend::new(ep, cfg)) as Box<dyn CommBackend>)
            .collect(),
        BackendKind::LciDirect => LciWorld::create(fabric, LciCosts::default())
            .into_iter()
            .map(|ep| Box::new(LciDirect::new(ep, cfg)) as Box<dyn CommBackend>)
            .collect(),
    }
}
