//! The §7 direct-put backend: LCI with `putd` replacing the handshake
//! emulation for large puts.
//!
//! The paper's future-work proposal (§7) observes that once the target
//! pre-registers its memory, a put needs no rendezvous at all: the origin
//! issues **one** one-sided RDMA write whose immediate data carries the
//! completion descriptor (remote tag + callback data), and the target's
//! progress thread learns about the transfer only when it has already
//! finished. Compared to the handshake path this removes, per large put:
//!
//! * one buffered handshake message (origin → target),
//! * one RTS/RTR rendezvous round-trip inside `sendd`/`recvd`,
//! * the target-side receive posting (and its `Retry`/delegation path).
//!
//! Small puts are unaffected: at or below `eager_put_max` the payload
//! already rides inline in a single buffered message, which is exactly as
//! cheap as an inline `putd` — so this backend delegates them to the base
//! LCI path unchanged. The result is that direct put is never *slower* than
//! the handshake emulation at any size, and the small-fragment bandwidth
//! knee (Fig. 2a) moves left: fragments just above `eager_put_max`, which
//! previously paid the full rendezvous round-trip, now cost a single wire
//! crossing.

use std::rc::Rc;

use amt_lci::Lci;
use amt_netmodel::NodeId;
use amt_simnet::{CoreHandle, Sim, SimTime};
use bytes::{Bytes, Frames};

use crate::backend::{BackendMicro, BackendTask, CommBackend};
use crate::config::{BackendKind, EngineConfig};
use crate::engine::{CommEngine, PutRequest};
use crate::lci_backend::LciBackend;
use crate::stats::EngineStats;

/// LCI backend variant issuing large puts as single direct RDMA writes.
/// Everything except `issue_put` is the plain LCI backend.
pub(crate) struct LciDirect {
    base: LciBackend,
}

impl LciDirect {
    pub(crate) fn new(ep: Lci, cfg: &EngineConfig) -> Self {
        LciDirect {
            base: LciBackend::new(ep, cfg),
        }
    }
}

impl CommBackend for LciDirect {
    fn kind(&self) -> BackendKind {
        BackendKind::LciDirect
    }

    fn progress_threads(&self) -> usize {
        self.base.progress_threads()
    }

    fn init(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        self.base.init(eng, sim);
    }

    fn issue_am(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Frames,
    ) -> SimTime {
        self.base.issue_am(eng, sim, dst, tag, size, data)
    }

    fn issue_am_direct(
        &self,
        eng: &Rc<CommEngine>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime {
        self.base.issue_am_direct(eng, sim, dst, tag, size, data)
    }

    fn issue_put(&self, eng: &Rc<CommEngine>, sim: &mut Sim, req: PutRequest) -> SimTime {
        // Small puts already travel as one inline buffered message on the
        // base path; only above the (possibly adapted) eager threshold does
        // the direct write beat the handshake + rendezvous emulation.
        if req.size <= eng.eager_put_max_for(req.dst) {
            self.base.issue_put(eng, sim, req)
        } else {
            self.base.issue_put_direct(eng, sim, req)
        }
    }

    fn next_micro(&self, eng: &CommEngine) -> Option<BackendMicro> {
        self.base.next_micro(eng)
    }

    fn exec_micro(&self, eng: &Rc<CommEngine>, sim: &mut Sim, task: BackendTask) -> SimTime {
        self.base.exec_micro(eng, sim, task)
    }

    fn exec_micro_unit(&self, eng: &Rc<CommEngine>, sim: &mut Sim, code: u32) -> SimTime {
        self.base.exec_micro_unit(eng, sim, code)
    }

    fn micro_label(&self, task: &BackendTask) -> &'static str {
        self.base.micro_label(task)
    }

    fn micro_unit_label(&self, code: u32) -> &'static str {
        self.base.micro_unit_label(code)
    }

    fn exec_command(&self, eng: &Rc<CommEngine>, sim: &mut Sim, cmd: BackendTask) -> SimTime {
        self.base.exec_command(eng, sim, cmd)
    }

    fn serializing_lock(&self) -> Option<CoreHandle> {
        self.base.serializing_lock()
    }

    fn drain_progress(&self, eng: &Rc<CommEngine>, sim: &mut Sim) {
        self.base.drain_progress(eng, sim);
    }

    fn stats(&self, base: EngineStats) -> EngineStats {
        self.base.stats(base)
    }
}
