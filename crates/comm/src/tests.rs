//! Communication-engine tests: a backend-conformance suite run against all
//! three backends (AM delivery + ordering, put completion callbacks,
//! deferral/promotion, retry delegation, determinism), plus backend-specific
//! behaviour (eager puts, direct put, progress threads) and the headline
//! latency ordering (LCI < MPI).

use std::cell::RefCell;
use std::rc::Rc;

use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use bytes::Bytes;

use crate::{BackendKind, CommEngine, CommWorld, EngineConfig, PutRequest};

fn setup(nodes: usize, cfg: EngineConfig) -> (Sim, Vec<Rc<CommEngine>>) {
    let mut sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(nodes));
    let engines = CommWorld::create(&mut sim, &fabric, cfg);
    (sim, engines)
}

fn all_backends() -> [EngineConfig; 3] {
    EngineConfig::all_backends()
}

#[test]
fn am_roundtrip_all_backends() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        engines[1].register_am(
            &mut sim,
            7,
            Rc::new(move |_sim, _eng, ev| {
                g.borrow_mut().push((ev.src, ev.tag, ev.size, ev.data));
                SimTime::from_ns(200)
            }),
        );
        let payload = Bytes::from_static(b"activate!");
        engines[0].send_am(&mut sim, 1, 7, payload.len(), Some(payload.clone()));
        sim.run();
        let log = got.borrow();
        assert_eq!(log.len(), 1, "{backend}: AM not delivered");
        assert_eq!(log[0].0, 0);
        assert_eq!(log[0].3.to_vec(), &payload[..]);
        assert_eq!(engines[0].stats().am_sent.get(), 1);
        assert_eq!(engines[1].stats().am_received.get(), 1);
        assert_eq!(engines[0].backend(), backend);
    }
}

/// Conformance: AMs from one source to one destination are delivered in
/// submission order on every backend.
#[test]
fn am_delivery_preserves_submission_order() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        engines[1].register_am(
            &mut sim,
            2,
            Rc::new(move |_sim, _eng, ev| {
                // Payloads may arrive as multi-frame batches (aggregation);
                // every byte records its submission index.
                g.borrow_mut().extend_from_slice(&ev.data.to_vec());
                SimTime::from_ns(50)
            }),
        );
        for i in 0..32u8 {
            engines[0].send_am(&mut sim, 1, 2, 1, Some(Bytes::from(vec![i])));
        }
        sim.run();
        let order = got.borrow();
        let expect: Vec<u8> = (0..32).collect();
        assert_eq!(*order, expect, "{backend}: AM delivery reordered");
    }
}

#[test]
fn put_roundtrip_all_backends() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let remote = Rc::new(RefCell::new(None));
        let local = Rc::new(RefCell::new(false));
        let r = remote.clone();
        engines[1].register_onesided(
            1,
            Rc::new(move |_sim, _eng, ev| {
                *r.borrow_mut() = Some((ev.src, ev.size, ev.data, ev.cb_data));
                SimTime::from_ns(100)
            }),
        );
        let size = 1 << 20;
        let data = Bytes::from(vec![5u8; size]);
        let l = local.clone();
        engines[0].put(
            &mut sim,
            PutRequest {
                dst: 1,
                size,
                data: Some(data.clone()),
                r_tag: 1,
                cb_data: Bytes::from_static(b"meta"),
                on_local: Box::new(move |_sim, _eng| {
                    *l.borrow_mut() = true;
                    SimTime::from_ns(50)
                }),
            },
        );
        sim.run();
        assert!(*local.borrow(), "{backend}: local completion missing");
        let r = remote.borrow();
        let (src, sz, d, cb) = r.as_ref().expect("remote completion");
        assert_eq!(*src, 0, "{backend}");
        assert_eq!(*sz, size, "{backend}");
        assert_eq!(d.as_deref(), Some(&data[..]), "{backend}");
        assert_eq!(&cb[..], b"meta", "{backend}");
        assert_eq!(engines[0].stats().puts_local_done.get(), 1);
        assert_eq!(engines[1].stats().puts_remote_done.get(), 1);
    }
}

#[test]
fn small_put_rides_eagerly_on_lci_backends() {
    for cfg in [EngineConfig::lci(), EngineConfig::lci_direct()] {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let remote = Rc::new(RefCell::new(None));
        let r = remote.clone();
        engines[1].register_onesided(
            9,
            Rc::new(move |_sim, _eng, ev| {
                *r.borrow_mut() = Some((ev.size, ev.data));
                SimTime::ZERO
            }),
        );
        let data = Bytes::from_static(b"small payload");
        engines[0].put(
            &mut sim,
            PutRequest {
                dst: 1,
                size: data.len(),
                data: Some(data.clone()),
                r_tag: 9,
                cb_data: Bytes::new(),
                on_local: Box::new(|_s, _e| SimTime::ZERO),
            },
        );
        sim.run();
        let r = remote.borrow();
        let (sz, d) = r.as_ref().expect("remote completion");
        assert_eq!(*sz, data.len(), "{backend}");
        assert_eq!(d.as_deref(), Some(&data[..]), "{backend}");
        assert_eq!(engines[1].stats().delegated_recvs.get(), 0, "{backend}");
    }
}

#[test]
fn activates_aggregate_per_destination() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        engines[1].register_am(
            &mut sim,
            3,
            Rc::new(move |_sim, _eng, ev| {
                g.borrow_mut().push((ev.size, ev.data));
                SimTime::ZERO
            }),
        );
        // Submit 4 AMs back-to-back; the communication thread is woken once
        // and they aggregate into fewer wire messages.
        for i in 0..4u8 {
            engines[0].send_am(&mut sim, 1, 3, 8, Some(Bytes::from(vec![i; 8])));
        }
        sim.run();
        let stats = engines[0].stats();
        assert_eq!(stats.am_submitted.get(), 4, "{backend}");
        assert!(
            stats.am_sent.get() < 4,
            "{backend}: no aggregation happened ({} wire msgs)",
            stats.am_sent.get()
        );
        // All payload bytes arrive, in submission order, carried as frames
        // (no concatenation copy on the send side).
        let total: usize = got.borrow().iter().map(|(s, _)| *s).sum();
        assert_eq!(total, 32, "{backend}");
        let bytes: Vec<u8> = got.borrow().iter().flat_map(|(_, d)| d.to_vec()).collect();
        let expect: Vec<u8> = (0..4u8).flat_map(|i| vec![i; 8]).collect();
        assert_eq!(bytes, expect, "{backend}");
    }
}

/// Tentpole: with a batching window, records submitted across distinct
/// wake-ups of the communication thread still coalesce per (destination,
/// tag), and every payload byte arrives in submission order. The window is
/// a rate limit: the first record finds a cold link and flushes at its own
/// instant, then the link is hot and the remaining seven ride one window
/// flush — two wire messages for eight records.
#[test]
fn batching_window_coalesces_across_wakeups() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let cfg = cfg.with_batching(10_000, 0);
        let (mut sim, engines) = setup(2, cfg);
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        engines[1].register_am(
            &mut sim,
            3,
            Rc::new(move |_sim, _eng, ev| {
                g.borrow_mut().extend_from_slice(&ev.data.to_vec());
                SimTime::ZERO
            }),
        );
        // Spread 8 submissions over 8 µs of virtual time — far apart for
        // the classic queue-scan aggregation (the comm thread drains
        // between them) but inside one 10 µs batching window.
        for i in 0..8u8 {
            let eng = engines[0].clone();
            sim.schedule_in(SimTime::from_ns(i as u64 * 1000), move |sim| {
                eng.send_am(sim, 1, 3, 4, Some(Bytes::from(vec![i; 4])));
            });
        }
        sim.run();
        let stats = engines[0].stats();
        assert_eq!(stats.am_submitted.get(), 8, "{backend}");
        assert_eq!(
            stats.am_sent.get(),
            2,
            "{backend}: expected a cold-link flush plus one window flush"
        );
        let expect: Vec<u8> = (0..8u8).flat_map(|i| vec![i; 4]).collect();
        assert_eq!(*got.borrow(), expect, "{backend}: bytes or order changed");
    }
}

/// The byte threshold flushes a batch early, and a fresh window opens for
/// the overflow — the stale window event for the flushed buffer must not
/// double-send.
#[test]
fn batching_byte_threshold_flushes_early() {
    let cfg = EngineConfig::lci().with_batching(1_000_000, 16);
    let (mut sim, engines) = setup(2, cfg);
    let msgs = Rc::new(RefCell::new(0usize));
    let m = msgs.clone();
    engines[1].register_am(
        &mut sim,
        3,
        Rc::new(move |_sim, _eng, _ev| {
            *m.borrow_mut() += 1;
            SimTime::ZERO
        }),
    );
    // 5 × 8 bytes against a 16-byte threshold: flush at 16, 32, then the
    // 8-byte tail waits out its window.
    for i in 0..5u8 {
        engines[0].send_am(&mut sim, 1, 3, 8, Some(Bytes::from(vec![i; 8])));
    }
    sim.run();
    let stats = engines[0].stats();
    assert_eq!(stats.am_submitted.get(), 5);
    assert_eq!(stats.am_sent.get(), 3, "two threshold flushes + one window");
    assert_eq!(*msgs.borrow(), 3);
}

/// A zero window means flush-immediately: the batching layer is inert and
/// the classic funnel path runs unchanged.
#[test]
fn zero_window_disables_batching() {
    let cfg = EngineConfig::lci().with_batching(0, 4096);
    let (mut sim, engines) = setup(2, cfg);
    engines[1].register_am(&mut sim, 3, Rc::new(|_s, _e, _ev| SimTime::ZERO));
    engines[0].send_am(&mut sim, 1, 3, 8, Some(Bytes::from(vec![7; 8])));
    sim.run();
    assert_eq!(engines[0].stats().am_sent.get(), 1);
    assert_eq!(engines[0].stats().am_received.get(), 0);
    assert_eq!(engines[1].stats().am_received.get(), 1);
}

/// Collectives over the engines: barrier, bcast, and reduce complete on
/// every backend, with and without batching, and the bcast payload arrives
/// bitwise identical everywhere.
#[test]
fn engine_collectives_on_all_backends() {
    use crate::collectives::EngineCollectives;
    for base in all_backends() {
        for batch in [0u64, 5_000] {
            let backend = base.backend;
            let cfg = base.clone().with_batching(batch, 0);
            let (mut sim, engines) = setup(7, cfg);
            let coll = EngineCollectives::attach(&mut sim, &engines, 9, 3);

            let barrier_done = Rc::new(RefCell::new(false));
            let b = barrier_done.clone();
            coll.barrier(&mut sim, 2, move |_sim| *b.borrow_mut() = true);
            sim.run();
            assert!(*barrier_done.borrow(), "{backend}: barrier hung");

            let total = Rc::new(RefCell::new(None));
            let t = total.clone();
            let contrib: Vec<u64> = (0..7).map(|i| 10 + i as u64).collect();
            coll.reduce(&mut sim, 0, &contrib, move |_sim, v| {
                *t.borrow_mut() = Some(v)
            });
            sim.run();
            assert_eq!(
                *total.borrow(),
                Some(contrib.iter().sum()),
                "{backend}: bad reduction"
            );

            type Seen = Vec<(usize, Vec<u8>)>;
            let seen: Rc<RefCell<Seen>> = Rc::new(RefCell::new(Vec::new()));
            let s = seen.clone();
            let payload = Bytes::from(b"wide activation payload".to_vec());
            coll.bcast(
                &mut sim,
                4,
                payload.clone(),
                Rc::new(move |_sim, node, data| s.borrow_mut().push((node, data.to_vec()))),
            );
            sim.run();
            let mut got = seen.borrow().clone();
            got.sort();
            assert_eq!(got.len(), 7, "{backend}: bcast missed nodes");
            for (node, data) in got {
                assert_eq!(data, payload.to_vec(), "{backend}: node {node} corrupted");
            }
        }
    }
}

/// Conformance: saturating the backend's transfer resources must never lose
/// a put — MPI defers beyond its 30-transfer cap, LCI delegates receives on
/// `Retry`, direct put retries the `putd` itself.
#[test]
fn saturating_puts_all_complete_on_every_backend() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let done = Rc::new(RefCell::new(0));
        let d = done.clone();
        engines[1].register_onesided(
            1,
            Rc::new(move |_sim, _eng, _ev| {
                *d.borrow_mut() += 1;
                SimTime::ZERO
            }),
        );
        let n = 600; // beyond max_posted_recvd=512 and the MPI transfer cap
        for _ in 0..n {
            engines[0].put(
                &mut sim,
                PutRequest {
                    dst: 1,
                    size: 64 << 10,
                    data: None,
                    r_tag: 1,
                    cb_data: Bytes::new(),
                    on_local: Box::new(|_s, _e| SimTime::ZERO),
                },
            );
        }
        sim.run();
        assert_eq!(
            *done.borrow(),
            n,
            "{backend}: all puts must complete despite back-pressure"
        );
        assert_eq!(
            engines[0].stats().puts_local_done.get(),
            n as u64,
            "{backend}"
        );
    }
}

#[test]
fn mpi_puts_defer_beyond_transfer_cap() {
    let mut cfg = EngineConfig::mpi();
    cfg.max_concurrent_transfers = 4;
    let (mut sim, engines) = setup(2, cfg);
    let done = Rc::new(RefCell::new(0));
    let d = done.clone();
    engines[1].register_onesided(
        1,
        Rc::new(move |_sim, _eng, _ev| {
            *d.borrow_mut() += 1;
            SimTime::ZERO
        }),
    );
    for _ in 0..10 {
        engines[0].put(
            &mut sim,
            PutRequest {
                dst: 1,
                size: 256 << 10,
                data: None,
                r_tag: 1,
                cb_data: Bytes::new(),
                on_local: Box::new(|_s, _e| SimTime::ZERO),
            },
        );
    }
    sim.run();
    assert_eq!(*done.borrow(), 10, "all puts must eventually complete");
    let stats = engines[0].stats();
    assert!(
        stats.deferred_puts.get() > 0,
        "cap of 4 with 10 puts must defer some (deferred={})",
        stats.deferred_puts.get()
    );
}

/// The LCI handshake path delegates receive posting to the communication
/// thread under saturation (§5.3.3); direct put has no receive to post, so
/// the same workload delegates nothing.
#[test]
fn direct_put_eliminates_retry_delegation() {
    // Two origins flood one target so the incoming handshakes outnumber the
    // target's 512-receive posting cap (one origin alone is bounded by its
    // own 512-sendd cap and can never overflow the target).
    let saturate = |cfg: EngineConfig| {
        let (mut sim, engines) = setup(3, cfg);
        engines[1].register_onesided(1, Rc::new(|_s, _e, _ev| SimTime::ZERO));
        for _ in 0..400 {
            for origin in [0usize, 2] {
                engines[origin].put(
                    &mut sim,
                    PutRequest {
                        dst: 1,
                        size: 64 << 10,
                        data: None,
                        r_tag: 1,
                        cb_data: Bytes::new(),
                        on_local: Box::new(|_s, _e| SimTime::ZERO),
                    },
                );
            }
        }
        sim.run();
        engines[1].stats().delegated_recvs.get()
    };
    let lci = saturate(EngineConfig::lci());
    let direct = saturate(EngineConfig::lci_direct());
    assert!(
        lci > 0,
        "expected handshake path to delegate under saturation"
    );
    assert_eq!(direct, 0, "direct put posts no receives, so none delegate");
}

#[test]
fn put_inside_am_callback_get_data_pattern() {
    // The GET DATA pattern: an AM callback at the data owner issues the put
    // directly from communication-thread context.
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg);
        let delivered = Rc::new(RefCell::new(None));

        // Node 0 owns data; GET DATA requests arrive on tag 11.
        let payload = Bytes::from(vec![42u8; 128 << 10]);
        let p2 = payload.clone();
        engines[0].register_am(
            &mut sim,
            11,
            Rc::new(move |sim, eng, ev| {
                let data = p2.clone();
                eng.put(
                    sim,
                    PutRequest {
                        dst: ev.src,
                        size: data.len(),
                        data: Some(data),
                        r_tag: 2,
                        cb_data: Bytes::new(),
                        on_local: Box::new(|_s, _e| SimTime::ZERO),
                    },
                );
                SimTime::from_ns(500)
            }),
        );
        let d = delivered.clone();
        engines[1].register_onesided(
            2,
            Rc::new(move |_sim, _eng, ev| {
                *d.borrow_mut() = ev.data;
                SimTime::ZERO
            }),
        );
        // Node 1 asks node 0 for the data.
        engines[1].send_am(&mut sim, 0, 11, 16, None);
        sim.run();
        assert_eq!(
            delivered.borrow().as_deref(),
            Some(&payload[..]),
            "{backend}: GET DATA round trip failed"
        );
    }
}

/// Measure the AM software latency (send_am submission to callback start).
fn measure_am_latency(cfg: EngineConfig) -> SimTime {
    let (mut sim, engines) = setup(2, cfg);
    let arrival: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let a = arrival.clone();
    engines[1].register_am(
        &mut sim,
        1,
        Rc::new(move |sim, _eng, _ev| {
            a.borrow_mut().get_or_insert(sim.now());
            SimTime::ZERO
        }),
    );
    engines[0].send_am_opts(&mut sim, 1, 1, 64, None, false);
    let t0 = sim.now();
    sim.run();
    let t1 = arrival.borrow().expect("latency probe never delivered");
    t1 - t0
}

#[test]
fn lci_am_latency_beats_mpi() {
    let lci = measure_am_latency(EngineConfig::lci());
    let mpi = measure_am_latency(EngineConfig::mpi());
    assert!(lci < mpi, "LCI AM latency ({lci}) should beat MPI ({mpi})");
}

/// Measure virtual put latency: submission to remote completion.
fn measure_put_latency(cfg: EngineConfig, size: usize) -> SimTime {
    let (mut sim, engines) = setup(2, cfg);
    let arrival: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let a = arrival.clone();
    engines[1].register_onesided(
        1,
        Rc::new(move |sim, _eng, _ev| {
            a.borrow_mut().get_or_insert(sim.now());
            SimTime::ZERO
        }),
    );
    engines[0].put(
        &mut sim,
        PutRequest {
            dst: 1,
            size,
            data: None,
            r_tag: 1,
            cb_data: Bytes::new(),
            on_local: Box::new(|_s, _e| SimTime::ZERO),
        },
    );
    let t0 = sim.now();
    sim.run();
    let t1 = arrival.borrow().expect("put never completed");
    t1 - t0
}

/// §7 acceptance: the direct put is never slower than the handshake
/// emulation at any size — inline below the eager threshold (identical
/// path), and strictly faster above it (no rendezvous round-trip).
#[test]
fn direct_put_never_slower_than_handshake_at_any_size() {
    for size in [64, 1 << 10, 4096, 4097, 16 << 10, 256 << 10, 4 << 20] {
        let hs = measure_put_latency(EngineConfig::lci(), size);
        let direct = measure_put_latency(EngineConfig::lci_direct(), size);
        assert!(
            direct <= hs,
            "size {size}: direct put ({direct}) slower than handshake ({hs})"
        );
    }
    // Just above the eager threshold the win must be strict: the handshake
    // path pays the full rendezvous round-trip there.
    let hs = measure_put_latency(EngineConfig::lci(), 8 << 10);
    let direct = measure_put_latency(EngineConfig::lci_direct(), 8 << 10);
    assert!(
        direct < hs,
        "8 KiB: direct put ({direct}) must strictly beat handshake ({hs})"
    );
}

#[test]
fn direct_send_bypasses_comm_thread() {
    for cfg in all_backends() {
        let backend = cfg.backend;
        let (mut sim, engines) = setup(2, cfg.with_multithread_am(true));
        let got = Rc::new(RefCell::new(0));
        let g = got.clone();
        engines[1].register_am(
            &mut sim,
            5,
            Rc::new(move |_sim, _eng, _ev| {
                *g.borrow_mut() += 1;
                SimTime::ZERO
            }),
        );
        let cost = engines[0].send_am_direct(&mut sim, 1, 5, 128, None);
        assert!(cost > SimTime::ZERO, "{backend}");
        sim.run();
        assert_eq!(*got.borrow(), 1, "{backend}");
        assert_eq!(engines[0].stats().am_sent.get(), 1, "{backend}");
    }
}

#[test]
fn deterministic_replay_same_schedule() {
    for cfg in all_backends() {
        let run = || {
            let (mut sim, engines) = setup(3, cfg.clone());
            let log = Rc::new(RefCell::new(Vec::new()));
            for engine in engines.iter().take(3) {
                let l = log.clone();
                engine.register_am(
                    &mut sim,
                    1,
                    Rc::new(move |sim, _eng, ev| {
                        l.borrow_mut().push((ev.src, sim.now().as_ns()));
                        SimTime::from_ns(100)
                    }),
                );
            }
            for i in 0..12usize {
                engines[i % 3].send_am(&mut sim, (i + 1) % 3, 1, 64, None);
            }
            sim.run();
            let out = log.borrow().clone();
            out
        };
        assert_eq!(run(), run(), "{}", cfg.backend);
    }
}

#[test]
fn stats_track_comm_thread_occupancy() {
    let (mut sim, engines) = setup(2, EngineConfig::lci());
    engines[1].register_am(&mut sim, 1, Rc::new(|_s, _e, _ev| SimTime::from_us(1)));
    for _ in 0..10 {
        engines[0].send_am_opts(&mut sim, 1, 1, 64, None, false);
    }
    sim.run();
    let s = engines[1].stats();
    assert!(
        s.comm_busy >= SimTime::from_us(10),
        "callback time accounted"
    );
    assert!(s.progress_busy > SimTime::ZERO, "progress thread worked");
    assert!(s.comm_rounds.get() > 0);
}

#[test]
fn direct_put_mode_round_trips() {
    // §7 future work: the put interface implemented directly by LCI.
    let (mut sim, engines) = setup(2, EngineConfig::lci_direct());
    let remote = Rc::new(RefCell::new(None));
    let local = Rc::new(RefCell::new(false));
    let r = remote.clone();
    engines[1].register_onesided(
        4,
        Rc::new(move |_sim, _eng, ev| {
            *r.borrow_mut() = Some((ev.src, ev.size, ev.data, ev.cb_data));
            SimTime::ZERO
        }),
    );
    let data = Bytes::from(vec![9u8; 300_000]);
    let l = local.clone();
    engines[0].put(
        &mut sim,
        PutRequest {
            dst: 1,
            size: data.len(),
            data: Some(data.clone()),
            r_tag: 4,
            cb_data: Bytes::from_static(b"ctx"),
            on_local: Box::new(move |_s, _e| {
                *l.borrow_mut() = true;
                SimTime::ZERO
            }),
        },
    );
    sim.run();
    assert!(*local.borrow());
    let r = remote.borrow();
    let (src, size, d, cb) = r.as_ref().expect("remote completion");
    assert_eq!((*src, *size), (0, 300_000));
    assert_eq!(d.as_deref(), Some(&data[..]));
    assert_eq!(&cb[..], b"ctx");
}

#[test]
fn backend_kind_roundtrips_through_engine() {
    for cfg in all_backends() {
        let kind = cfg.backend;
        let (_sim, engines) = setup(2, cfg);
        assert_eq!(engines[0].backend(), kind);
        assert_eq!(BackendKind::parse(kind.cli_name()), Some(kind));
    }
}

#[test]
fn multiple_progress_threads_complete_and_split_load() {
    for mut cfg in [EngineConfig::lci(), EngineConfig::lci_direct()] {
        let backend = cfg.backend;
        cfg.lci_progress_threads = 2;
        let (mut sim, engines) = setup(2, cfg);
        let n = Rc::new(RefCell::new(0));
        let n2 = n.clone();
        engines[1].register_onesided(
            1,
            Rc::new(move |_s, _e, _ev| {
                *n2.borrow_mut() += 1;
                SimTime::ZERO
            }),
        );
        for _ in 0..100 {
            engines[0].put(
                &mut sim,
                PutRequest {
                    dst: 1,
                    size: 64 << 10,
                    data: None,
                    r_tag: 1,
                    cb_data: Bytes::new(),
                    on_local: Box::new(|_s, _e| SimTime::ZERO),
                },
            );
        }
        sim.run();
        assert_eq!(*n.borrow(), 100, "{backend}");
        // Both progress cores saw work.
        let cores = engines[1].progress_cores();
        assert_eq!(cores.len(), 2, "{backend}");
        assert!(cores.iter().all(|c| c.borrow().jobs() > 0), "{backend}");
    }
}
