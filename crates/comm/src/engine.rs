//! The communication engine: public API (paper Listing 1) and the
//! communication-thread micro-task actor shared by both backends.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::{Rc, Weak};

use amt_lci::{Lci, LciCosts, LciWorld};
use amt_minimpi::{Mpi, MpiCosts, MpiWorld};
use amt_netmodel::{FabricHandle, NodeId};
use amt_simnet::{CoreHandle, CoreResource, Sim, SimTime};
use bytes::Bytes;

use crate::config::{BackendKind, EngineConfig};
use crate::lci_backend::{DataDone, LciState, QueuedAm};
use crate::mpi_backend::MpiState;
use crate::stats::EngineStats;

/// Active-message tags ≥ this value are reserved for the engine's internal
/// protocol (put handshakes, data transfers).
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

/// An active message delivered to a registered callback.
#[derive(Debug)]
pub struct AmEvent {
    pub src: NodeId,
    pub tag: u64,
    pub size: usize,
    /// Payload. With aggregation, multiple submitted payloads arrive
    /// concatenated; the consumer's records must be self-delimiting.
    pub data: Option<Bytes>,
}

/// A completed put delivered to the target's registered one-sided callback.
#[derive(Debug)]
pub struct PutEvent {
    pub src: NodeId,
    pub size: usize,
    pub data: Option<Bytes>,
    /// The `r_cb_data` the origin attached to the put.
    pub cb_data: Bytes,
}

/// Registered AM callback: runs on the communication thread; returns the CPU
/// time it consumed (charged to the communication thread's core).
pub type AmCallback = Rc<dyn Fn(&mut Sim, &Rc<CommEngine>, AmEvent) -> SimTime>;

/// Registered one-sided (put remote completion) callback.
pub type OnesidedCallback = Rc<dyn Fn(&mut Sim, &Rc<CommEngine>, PutEvent) -> SimTime>;

/// Origin-side put completion callback.
pub type PutLocalCb = Box<dyn FnOnce(&mut Sim, &Rc<CommEngine>) -> SimTime>;

/// A one-sided put: move `size` bytes to `dst` and run the one-sided
/// callback registered under `r_tag` there, with `cb_data` attached.
pub struct PutRequest {
    pub dst: NodeId,
    pub size: usize,
    pub data: Option<Bytes>,
    pub r_tag: u64,
    pub cb_data: Bytes,
    pub on_local: PutLocalCb,
}

/// Commands submitted to the communication thread.
pub(crate) enum Command {
    SendAm {
        dst: NodeId,
        tag: u64,
        size: usize,
        frames: Vec<Bytes>,
        aggregate: bool,
        submissions: u64,
    },
    Put(PutRequest),
    /// LCI backend: a handshake whose `sendb` hit `Retry`.
    RawSendb {
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    },
}

/// Micro-tasks of the communication thread. Each executes as one charge on
/// the communication core.
pub(crate) enum Micro {
    /// Drain the submitted-command queue.
    Commands,
    /// One `Testsome` sweep over the global request array (MPI).
    MpiProgress,
    /// One completed request's callback work (MPI).
    MpiCompletion(amt_minimpi::Completion),
    /// One §5.3.4 fairness round over the completion FIFOs (LCI).
    FifoRound,
    /// One queued AM callback (LCI).
    LciAm(QueuedAm),
    /// One bulk-data completion callback (LCI).
    LciData(DataDone),
    /// Retry receives delegated by the progress thread (LCI).
    LciDelegated,
}

pub(crate) struct Inner {
    pub am_cbs: HashMap<u64, AmCallback>,
    pub onesided_cbs: HashMap<u64, OnesidedCallback>,
    pub pending: VecDeque<Command>,
    pub micro: VecDeque<Micro>,
    /// A charge is in flight on the communication core.
    pub busy: bool,
    /// The communication thread is parked, waiting for a waker.
    pub idle: bool,
    /// Executing a callback on the communication thread: nested engine
    /// calls issue immediately and accumulate cost here.
    pub in_ctx: bool,
    pub ctx_cost: SimTime,
    pub stats: EngineStats,
    pub mpi: MpiState,
    pub lci: LciState,
}

/// One node's communication engine. Create with [`CommWorld::create`].
pub struct CommEngine {
    pub(crate) node: NodeId,
    pub(crate) cfg: EngineConfig,
    /// The communication thread's dedicated core (§4.3).
    pub(crate) comm_core: CoreHandle,
    /// The LCI progress threads' dedicated cores (§5.3.1; more than one is
    /// the §7 multi-progress-thread extension).
    pub(crate) progress_cores: Vec<CoreHandle>,
    /// MPI library serialization (multithreaded senders contend here).
    pub(crate) mpi_lock: Option<CoreHandle>,
    pub(crate) mpi: Option<Mpi>,
    pub(crate) lci: Option<Lci>,
    pub(crate) inner: RefCell<Inner>,
    me: RefCell<Weak<CommEngine>>,
}

/// Factory for per-node engines over a shared fabric.
pub struct CommWorld;

impl CommWorld {
    /// Build one engine per fabric node, with the chosen backend, and wire
    /// up wakers/handlers. For the MPI backend this also registers the
    /// internal handshake tag (posting its persistent receives), which is
    /// why `sim` is needed.
    pub fn create(sim: &mut Sim, fabric: &FabricHandle, cfg: EngineConfig) -> Vec<Rc<CommEngine>> {
        let nodes = fabric.borrow().nodes();
        let mut engines = Vec::with_capacity(nodes);
        match cfg.backend {
            BackendKind::Mpi => {
                let ranks = MpiWorld::create(fabric, MpiCosts::default());
                for (node, mpi) in ranks.into_iter().enumerate() {
                    let eng = Rc::new(CommEngine {
                        node,
                        cfg: cfg.clone(),
                        comm_core: CoreResource::new_shared(format!("n{node}.comm")),
                        progress_cores: Vec::new(),
                        mpi_lock: Some(CoreResource::new_shared(format!("n{node}.mpilock"))),
                        mpi: Some(mpi),
                        lci: None,
                        inner: RefCell::new(Inner::new()),
                        me: RefCell::new(Weak::new()),
                    });
                    *eng.me.borrow_mut() = Rc::downgrade(&eng);
                    let weak = Rc::downgrade(&eng);
                    eng.mpi.as_ref().expect("mpi backend").set_waker(move |sim| {
                        if let Some(eng) = weak.upgrade() {
                            eng.inner.borrow_mut().mpi.progress_queued = true;
                            CommEngine::wake_comm(&eng, sim);
                        }
                    });
                    crate::mpi_backend::register_internal(&eng, sim);
                    engines.push(eng);
                }
            }
            BackendKind::Lci => {
                let eps = LciWorld::create(fabric, LciCosts::default());
                for (node, lci) in eps.into_iter().enumerate() {
                    let eng = Rc::new(CommEngine {
                        node,
                        cfg: cfg.clone(),
                        comm_core: CoreResource::new_shared(format!("n{node}.comm")),
                        progress_cores: (0..cfg.lci_progress_threads.max(1))
                            .map(|i| CoreResource::new_shared(format!("n{node}.prog{i}")))
                            .collect(),
                        mpi_lock: None,
                        mpi: None,
                        lci: Some(lci),
                        inner: RefCell::new(Inner::new()),
                        me: RefCell::new(Weak::new()),
                    });
                    *eng.me.borrow_mut() = Rc::downgrade(&eng);
                    let weak = Rc::downgrade(&eng);
                    eng.lci.as_ref().expect("lci backend").set_waker(move |sim| {
                        if let Some(eng) = weak.upgrade() {
                            CommEngine::pump_progress(&eng, sim);
                            // Freed resources may also unblock queued
                            // commands or delegated receives on the
                            // communication thread.
                            eng.inner.borrow_mut().lci.retry_wanted = true;
                            CommEngine::wake_comm(&eng, sim);
                        }
                    });
                    let weak = Rc::downgrade(&eng);
                    eng.lci.as_ref().expect("lci backend").set_am_handler(move |sim, msg| {
                        match weak.upgrade() {
                            Some(eng) => crate::lci_backend::on_am(&eng, sim, msg),
                            None => SimTime::ZERO,
                        }
                    });
                    let weak = Rc::downgrade(&eng);
                    eng.lci.as_ref().expect("lci backend").set_put_handler(move |sim, msg| {
                        match weak.upgrade() {
                            Some(eng) => crate::lci_backend::on_put(&eng, sim, msg),
                            None => SimTime::ZERO,
                        }
                    });
                    engines.push(eng);
                }
            }
        }
        engines
    }
}

impl Inner {
    fn new() -> Self {
        Inner {
            am_cbs: HashMap::new(),
            onesided_cbs: HashMap::new(),
            pending: VecDeque::new(),
            micro: VecDeque::new(),
            busy: false,
            idle: true,
            in_ctx: false,
            ctx_cost: SimTime::ZERO,
            stats: EngineStats::default(),
            mpi: MpiState::default(),
            lci: LciState::default(),
        }
    }
}

impl CommEngine {
    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    pub fn backend(&self) -> BackendKind {
        self.cfg.backend
    }

    /// The communication thread's core (utilization diagnostics).
    pub fn comm_core(&self) -> CoreHandle {
        self.comm_core.clone()
    }

    /// The progress threads' cores, if this backend has any.
    pub fn progress_cores(&self) -> &[CoreHandle] {
        &self.progress_cores
    }

    /// The first progress thread's core, if this backend has one.
    pub fn progress_core(&self) -> Option<CoreHandle> {
        self.progress_cores.first().cloned()
    }

    pub fn stats(&self) -> EngineStats {
        self.inner.borrow().stats.clone()
    }

    pub(crate) fn me(&self) -> Rc<CommEngine> {
        self.me.borrow().upgrade().expect("engine dropped")
    }

    /// Register an active-message callback under `tag` (Listing 1
    /// `tag_reg`). For the MPI backend this posts the tag's persistent
    /// receives, hence `sim`.
    pub fn register_am(self: &Rc<Self>, sim: &mut Sim, tag: u64, cb: AmCallback) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        let prev = self.inner.borrow_mut().am_cbs.insert(tag, cb);
        assert!(prev.is_none(), "tag {tag} registered twice");
        if self.backend() == BackendKind::Mpi {
            crate::mpi_backend::register_am_tag(self, sim, tag);
        }
    }

    /// Register a one-sided completion callback under `r_tag` (the callback
    /// a put names for its remote completion).
    pub fn register_onesided(&self, r_tag: u64, cb: OnesidedCallback) {
        let prev = self.inner.borrow_mut().onesided_cbs.insert(r_tag, cb);
        assert!(prev.is_none(), "one-sided tag {r_tag} registered twice");
    }

    /// Submit an active message (Listing 1 `send_am`).
    ///
    /// Outside a communication-thread callback this *funnels*: the command
    /// is queued for the communication thread, aggregating with a pending AM
    /// to the same `(dst, tag)` when allowed (§4.3 duty #1). Inside a
    /// callback it issues immediately, its cost accruing to the running
    /// callback.
    pub fn send_am(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) {
        self.send_am_opts(sim, dst, tag, size, data, true);
    }

    /// `send_am` with explicit control over aggregation eligibility.
    pub fn send_am_opts(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
        aggregate: bool,
    ) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.am_submitted += 1;
            if inner.in_ctx {
                drop(inner);
                let c = self.issue_am(sim, dst, tag, size, data.into_iter().collect(), 1);
                self.inner.borrow_mut().ctx_cost += c;
                return;
            }
            // Try to aggregate with a queued AM to the same destination/tag.
            if aggregate && self.cfg.agg_max_bytes > 0 {
                for cmd in inner.pending.iter_mut() {
                    if let Command::SendAm {
                        dst: d,
                        tag: t,
                        size: s,
                        frames,
                        aggregate: true,
                        submissions,
                    } = cmd
                    {
                        if *d == dst && *t == tag && *s + size <= self.cfg.agg_max_bytes {
                            *s += size;
                            *submissions += 1;
                            if let Some(b) = data {
                                frames.push(b);
                            }
                            return;
                        }
                    }
                }
            }
            inner.pending.push_back(Command::SendAm {
                dst,
                tag,
                size,
                frames: data.into_iter().collect(),
                aggregate,
                submissions: 1,
            });
        }
        CommEngine::wake_comm(self, sim);
    }

    /// Multithreaded AM send (§6.4.3): the calling worker thread sends
    /// directly, bypassing the communication thread and aggregation.
    /// Returns the CPU cost the caller must charge to its own core — for
    /// the MPI backend this includes waiting for the library's serializing
    /// lock.
    pub fn send_am_direct(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.am_submitted += 1;
            inner.stats.am_sent += 1;
        }
        match self.backend() {
            BackendKind::Mpi => {
                let mpi = self.mpi.as_ref().expect("mpi backend").clone();
                let costs = mpi.costs();
                let op_cost = costs.call_base + costs.send_eager_base + costs.copy_cost(size);
                let lock = self.mpi_lock.as_ref().expect("mpi lock").clone();
                let now = sim.now();
                let end = lock.borrow_mut().occupy(now, op_cost);
                // The message leaves once the lock slot is served.
                sim.schedule_at(end, move |sim| {
                    let _ = mpi.send(sim, dst, tag, size, data);
                });
                end - now
            }
            BackendKind::Lci => {
                let lci = self.lci.as_ref().expect("lci backend").clone();
                let costs = lci.costs();
                let res = if size <= costs.imm_max {
                    lci.sendi(sim, dst, tag, size, data.clone())
                } else {
                    lci.sendb(sim, dst, tag, size, data.clone())
                };
                match res {
                    Ok(c) => c,
                    Err(_) => {
                        // Back-pressure: fall back to funneling.
                        self.inner.borrow_mut().stats.backend_retries += 1;
                        self.inner.borrow_mut().stats.am_sent -= 1;
                        let me = self.me();
                        me.send_am_opts(sim, dst, tag, size, data, false);
                        costs.call_base
                    }
                }
            }
        }
    }

    /// Start a one-sided put (Listing 1 `put`). Funnelled to the
    /// communication thread unless called from a communication-thread
    /// callback (the GET DATA pattern), in which case it issues immediately.
    pub fn put(self: &Rc<Self>, sim: &mut Sim, req: PutRequest) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.in_ctx {
                drop(inner);
                let c = self.issue_put(sim, req);
                self.inner.borrow_mut().ctx_cost += c;
                return;
            }
            inner.pending.push_back(Command::Put(req));
        }
        CommEngine::wake_comm(self, sim);
    }

    // ------------------------------------------------------------------
    // Communication-thread actor
    // ------------------------------------------------------------------

    /// Wake the communication thread if it is parked.
    pub(crate) fn wake_comm(eng: &Rc<Self>, sim: &mut Sim) {
        {
            let mut inner = eng.inner.borrow_mut();
            if inner.busy || !inner.idle {
                return;
            }
            inner.idle = false;
            inner.busy = true;
        }
        let eng2 = eng.clone();
        let wake = eng.cfg.wake_latency;
        eng.comm_core.borrow_mut().charge(sim, wake, move |sim| {
            eng2.inner.borrow_mut().busy = false;
            CommEngine::pump(&eng2, sim);
        });
    }

    /// Pick the next micro-task, or park.
    fn next_micro(&self) -> Option<Micro> {
        let mut inner = self.inner.borrow_mut();
        if let Some(m) = inner.micro.pop_front() {
            return Some(m);
        }
        if !inner.pending.is_empty() {
            return Some(Micro::Commands);
        }
        match self.cfg.backend {
            BackendKind::Mpi => {
                if inner.mpi.progress_queued {
                    inner.mpi.progress_queued = false;
                    return Some(Micro::MpiProgress);
                }
            }
            BackendKind::Lci => {
                if !inner.lci.am_fifo.is_empty()
                    || !inner.lci.data_fifo.is_empty()
                    || (inner.lci.retry_wanted && !inner.lci.delegated.is_empty())
                {
                    return Some(Micro::FifoRound);
                }
            }
        }
        None
    }

    /// Run the communication thread until it has no work: each micro-task's
    /// logic executes now and its cost is charged to the communication core;
    /// the next micro-task starts when the charge completes.
    pub(crate) fn pump(eng: &Rc<Self>, sim: &mut Sim) {
        if eng.inner.borrow().busy {
            return;
        }
        let Some(task) = eng.next_micro() else {
            eng.inner.borrow_mut().idle = true;
            return;
        };
        {
            let mut inner = eng.inner.borrow_mut();
            inner.busy = true;
            inner.idle = false;
            inner.stats.comm_rounds += 1;
        }
        let mut cost = eng.execute_micro(sim, task);
        if cost.is_zero() {
            cost = SimTime::from_ns(1);
        }
        // MPI library calls from the communication thread hold the
        // serializing lock; multithreaded senders add waiting time here.
        let total = match &eng.mpi_lock {
            Some(lock) => {
                let now = sim.now();
                let end = lock.borrow_mut().occupy(now, cost);
                end - now
            }
            None => cost,
        };
        eng.inner.borrow_mut().stats.comm_busy += total;
        let eng2 = eng.clone();
        eng.comm_core.borrow_mut().charge(sim, total, move |sim| {
            eng2.inner.borrow_mut().busy = false;
            CommEngine::pump(&eng2, sim);
        });
    }

    fn execute_micro(self: &Rc<Self>, sim: &mut Sim, task: Micro) -> SimTime {
        match task {
            Micro::Commands => self.exec_commands(sim),
            Micro::MpiProgress => crate::mpi_backend::exec_progress(self, sim),
            Micro::MpiCompletion(c) => crate::mpi_backend::exec_completion(self, sim, c),
            Micro::FifoRound => crate::lci_backend::exec_fifo_round(self, sim),
            Micro::LciAm(a) => crate::lci_backend::exec_am(self, sim, a),
            Micro::LciData(d) => crate::lci_backend::exec_data(self, sim, d),
            Micro::LciDelegated => crate::lci_backend::exec_delegated(self, sim),
        }
    }

    fn exec_commands(self: &Rc<Self>, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            let (cmd, len_after_pop) = {
                let mut inner = self.inner.borrow_mut();
                match inner.pending.pop_front() {
                    Some(c) => {
                        let len = inner.pending.len();
                        (c, len)
                    }
                    None => break,
                }
            };
            cost += self.cfg.cmd_overhead;
            match cmd {
                Command::SendAm {
                    dst,
                    tag,
                    size,
                    frames,
                    submissions,
                    ..
                } => {
                    cost += self.issue_am(sim, dst, tag, size, frames, submissions);
                }
                Command::Put(req) => {
                    cost += self.issue_put(sim, req);
                }
                Command::RawSendb {
                    dst,
                    tag,
                    size,
                    data,
                } => {
                    let lci = self.lci.as_ref().expect("lci backend");
                    match lci.sendb(sim, dst, tag, size, data.clone()) {
                        Ok(c) => cost += c,
                        Err(_) => {
                            let mut inner = self.inner.borrow_mut();
                            inner.stats.backend_retries += 1;
                            inner
                                .pending
                                .push_front(Command::RawSendb { dst, tag, size, data });
                        }
                    }
                }
            }
            // A command that hit back-pressure re-queues itself at the
            // front; stop draining — it will be retried on the next wake,
            // once resources have freed.
            if self.inner.borrow().pending.len() > len_after_pop {
                break;
            }
        }
        cost
    }

    /// Issue an AM on the wire (from the communication thread or a
    /// callback). `frames` are concatenated when aggregation merged several
    /// submissions.
    pub(crate) fn issue_am(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        frames: Vec<Bytes>,
        submissions: u64,
    ) -> SimTime {
        let data = concat_frames(frames);
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.am_sent += 1;
            let _ = submissions;
        }
        match self.backend() {
            BackendKind::Mpi => {
                let mpi = self.mpi.as_ref().expect("mpi backend");
                mpi.send(sim, dst, tag, size, data)
            }
            BackendKind::Lci => {
                let lci = self.lci.as_ref().expect("lci backend");
                let costs = lci.costs();
                let res = if size <= costs.imm_max {
                    lci.sendi(sim, dst, tag, size, data.clone())
                } else {
                    lci.sendb(sim, dst, tag, size, data.clone())
                };
                match res {
                    Ok(c) => c,
                    Err(_) => {
                        let mut inner = self.inner.borrow_mut();
                        inner.stats.backend_retries += 1;
                        inner.stats.am_sent -= 1;
                        inner.pending.push_front(Command::RawSendb {
                            dst,
                            tag,
                            size,
                            data,
                        });
                        costs.call_base
                    }
                }
            }
        }
    }

    pub(crate) fn issue_put(self: &Rc<Self>, sim: &mut Sim, req: PutRequest) -> SimTime {
        match self.backend() {
            BackendKind::Mpi => crate::mpi_backend::issue_put(self, sim, req),
            BackendKind::Lci => crate::lci_backend::issue_put(self, sim, req),
        }
    }

    /// Run a user callback in communication-thread context: nested engine
    /// calls issue immediately and bill the callback.
    pub(crate) fn run_in_ctx(
        self: &Rc<Self>,
        sim: &mut Sim,
        f: impl FnOnce(&mut Sim, &Rc<CommEngine>) -> SimTime,
    ) -> SimTime {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(!inner.in_ctx, "nested communication-thread callback");
            inner.in_ctx = true;
            inner.ctx_cost = SimTime::ZERO;
        }
        let c = f(sim, self);
        let mut inner = self.inner.borrow_mut();
        inner.in_ctx = false;
        c + std::mem::take(&mut inner.ctx_cost)
    }

    // ------------------------------------------------------------------
    // LCI progress-thread actor (§5.3.1)
    // ------------------------------------------------------------------

    /// Pump the dedicated progress thread: if it is idle and LCI has work,
    /// run one `LCI_progress` sweep and charge its cost to the progress
    /// core.
    pub(crate) fn pump_progress(eng: &Rc<Self>, sim: &mut Sim) {
        let lci = match &eng.lci {
            Some(l) => l.clone(),
            None => return,
        };
        {
            let mut inner = eng.inner.borrow_mut();
            if inner.lci.progress_busy {
                return;
            }
            if !lci.has_work() {
                return;
            }
            inner.lci.progress_busy = true;
        }
        let cost = lci.progress(sim) + eng.cfg.wake_latency;
        eng.inner.borrow_mut().stats.progress_busy += cost;
        // Ablation: share the communication thread's core instead of using
        // the dedicated progress core(s). With several progress threads
        // (§7), the sweep lands on the earliest-available core — an
        // idealized work split.
        let core = if eng.cfg.lci_shared_progress {
            eng.comm_core.clone()
        } else {
            eng.progress_cores
                .iter()
                .min_by_key(|c| c.borrow().available_at())
                .expect("progress core")
                .clone()
        };
        let eng2 = eng.clone();
        core.borrow_mut().charge(sim, cost, move |sim| {
            eng2.inner.borrow_mut().lci.progress_busy = false;
            CommEngine::pump_progress(&eng2, sim);
        });
    }
}

fn concat_frames(mut frames: Vec<Bytes>) -> Option<Bytes> {
    match frames.len() {
        0 => None,
        1 => frames.pop(),
        _ => {
            let total: usize = frames.iter().map(|f| f.len()).sum();
            let mut out = bytes::BytesMut::with_capacity(total);
            for f in frames {
                out.extend_from_slice(&f);
            }
            Some(out.freeze())
        }
    }
}

/// Helpers shared by the backends for dispatching user callbacks.
pub(crate) fn dispatch_am(eng: &Rc<CommEngine>, sim: &mut Sim, ev: AmEvent) -> SimTime {
    let cb = eng
        .inner
        .borrow()
        .am_cbs
        .get(&ev.tag)
        .unwrap_or_else(|| panic!("no AM callback registered for tag {}", ev.tag))
        .clone();
    eng.inner.borrow_mut().stats.am_received += 1;
    eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng, ev))
}

pub(crate) fn dispatch_onesided(eng: &Rc<CommEngine>, sim: &mut Sim, r_tag: u64, ev: PutEvent) -> SimTime {
    let cb = eng
        .inner
        .borrow()
        .onesided_cbs
        .get(&r_tag)
        .unwrap_or_else(|| panic!("no one-sided callback registered for tag {r_tag}"))
        .clone();
    {
        let mut inner = eng.inner.borrow_mut();
        inner.stats.puts_remote_done += 1;
        inner.stats.put_bytes_in += ev.size as u64;
    }
    eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng, ev))
}

pub(crate) fn dispatch_put_local(eng: &Rc<CommEngine>, sim: &mut Sim, cb: PutLocalCb) -> SimTime {
    eng.inner.borrow_mut().stats.puts_local_done += 1;
    eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng))
}
