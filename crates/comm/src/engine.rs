//! The communication engine: public API (paper Listing 1) and the
//! communication-thread micro-task actor shared by all backends.
//!
//! The engine is backend-agnostic: everything library-specific lives behind
//! the [`CommBackend`] trait (`backend.rs`), and the engine talks to it only
//! through its `Box<dyn CommBackend>` — there is no `match` on
//! [`crate::BackendKind`] anywhere in this file.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use amt_netmodel::{FabricHandle, NodeId};
use amt_simnet::{
    shared, CoreHandle, CoreResource, MetricsRegistry, OverlapTracker, Shared, Sim, SimTime, Trace,
};
use bytes::{BufPool, Bytes, Frames};

use crate::backend::{make_backends, BackendMicro, BackendTask, CommBackend};
use crate::config::{BackendKind, EngineConfig};
use crate::stats::EngineStats;
use crate::tune::Tuner;

/// Active-message tags ≥ this value are reserved for the engine's internal
/// protocol (put handshakes, data transfers).
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

/// An active message delivered to a registered callback.
#[derive(Debug)]
pub struct AmEvent {
    pub src: NodeId,
    pub tag: u64,
    pub size: usize,
    /// Payload frames, zero-copy. With aggregation, each submission's
    /// payload arrives as its own frame, in submission order; the
    /// consumer's records must be self-delimiting within a frame. Consumers
    /// that finish with the payload should return it via
    /// [`CommEngine::buf_pool`] so the buffers get reused.
    pub data: Frames,
}

/// A completed put delivered to the target's registered one-sided callback.
#[derive(Debug)]
pub struct PutEvent {
    pub src: NodeId,
    pub size: usize,
    pub data: Option<Bytes>,
    /// The `r_cb_data` the origin attached to the put.
    pub cb_data: Bytes,
}

/// Registered AM callback: runs on the communication thread; returns the CPU
/// time it consumed (charged to the communication thread's core).
pub type AmCallback = Rc<dyn Fn(&mut Sim, &Rc<CommEngine>, AmEvent) -> SimTime>;

/// Registered one-sided (put remote completion) callback.
pub type OnesidedCallback = Rc<dyn Fn(&mut Sim, &Rc<CommEngine>, PutEvent) -> SimTime>;

/// Origin-side put completion callback.
pub type PutLocalCb = Box<dyn FnOnce(&mut Sim, &Rc<CommEngine>) -> SimTime>;

/// A one-sided put: move `size` bytes to `dst` and run the one-sided
/// callback registered under `r_tag` there, with `cb_data` attached.
pub struct PutRequest {
    pub dst: NodeId,
    pub size: usize,
    pub data: Option<Bytes>,
    pub r_tag: u64,
    pub cb_data: Bytes,
    pub on_local: PutLocalCb,
}

/// Commands submitted to the communication thread.
pub(crate) enum Command {
    SendAm {
        dst: NodeId,
        tag: u64,
        size: usize,
        frames: Frames,
        aggregate: bool,
        submissions: u64,
        /// When the first submission entered the queue (the `submit →
        /// aggregate` lifecycle stage is measured from here at pop time).
        submitted_at: SimTime,
    },
    Put {
        req: PutRequest,
        /// When the put was funneled; `None` for backend retries (the queue
        /// wait was already accounted on the first attempt).
        submitted_at: Option<SimTime>,
    },
    /// A backend-private command (typically a send that hit back-pressure
    /// and awaits retry). Executed via [`CommBackend::exec_command`].
    Backend(BackendTask),
}

/// Micro-tasks of the communication thread. Each executes as one charge on
/// the communication core.
pub(crate) enum Micro {
    /// Drain the submitted-command queue.
    Commands,
    /// A backend-private micro-task (a progress sweep, a completion
    /// callback, a FIFO round, ...). Executed via
    /// [`CommBackend::exec_micro`].
    Backend(BackendTask),
    /// A data-less backend micro-task identified by a backend-private
    /// code — avoids a `Box<dyn Any>` allocation per round. Executed via
    /// [`CommBackend::exec_micro_unit`].
    BackendUnit(u32),
}

/// A per-`(destination, tag)` batching buffer: records held back from the
/// wire until the byte threshold fills or the virtual-time window expires.
pub(crate) struct AmBatch {
    frames: Frames,
    size: usize,
    submissions: u64,
    /// When the first record entered the buffer (queue-wait stage of the
    /// eventual wire message is measured from here).
    first_submitted: SimTime,
    /// Distinguishes this buffer from any later buffer for the same key, so
    /// a window-expiry event scheduled for a buffer that already flushed on
    /// its byte threshold is a no-op.
    gen: u64,
}

pub(crate) struct Inner {
    pub am_cbs: HashMap<u64, AmCallback>,
    pub onesided_cbs: HashMap<u64, OnesidedCallback>,
    pub pending: VecDeque<Command>,
    pub micro: VecDeque<Micro>,
    /// Open batching buffers (only when `cfg.batch_window_ns > 0`).
    pub(crate) batch: HashMap<(NodeId, u64), AmBatch>,
    pub(crate) batch_gen: u64,
    /// When the last batch to each `(destination, tag)` left for the wire.
    /// The window is a *rate limit* anchored here: a record to a link that
    /// has been quiet for a window flushes at the end of the current
    /// instant (zero added latency), a record to a hot link waits until a
    /// full window has passed since the previous flush.
    pub(crate) batch_last_flush: HashMap<(NodeId, u64), SimTime>,
    /// A charge is in flight on the communication core.
    pub busy: bool,
    /// The communication thread is parked, waiting for a waker.
    pub idle: bool,
    /// Executing a callback on the communication thread: nested engine
    /// calls issue immediately and accumulate cost here.
    pub in_ctx: bool,
    pub ctx_cost: SimTime,
    pub stats: EngineStats,
}

/// One node's communication engine. Create with [`CommWorld::create`].
pub struct CommEngine {
    pub(crate) node: NodeId,
    pub(crate) cfg: EngineConfig,
    /// The communication thread's dedicated core (§4.3).
    pub(crate) comm_core: CoreHandle,
    /// The progress threads' dedicated cores, as many as the backend asked
    /// for (§5.3.1; more than one is the §7 multi-progress-thread
    /// extension).
    pub(crate) progress_cores: Vec<CoreHandle>,
    /// The communication library under the engine. All backend-specific
    /// behaviour is dispatched through this object.
    pub(crate) backend: Box<dyn CommBackend>,
    pub(crate) inner: RefCell<Inner>,
    /// Communication/progress-thread timeline (enabled by `cfg.trace`).
    pub(crate) trace: Shared<Trace>,
    /// Per-stage lifecycle histograms (enabled by `cfg.metrics`).
    pub(crate) metrics: Shared<MetricsRegistry>,
    /// Cluster-wide wire/compute overlap integrator, installed by the
    /// runtime above (see [`CommEngine::set_overlap`]).
    pub(crate) overlap: RefCell<Option<Shared<OverlapTracker>>>,
    /// Trace track of the communication thread (`n{node}.comm`).
    pub(crate) comm_track: String,
    /// Trace track of the progress thread(s) (`n{node}.prog`).
    pub(crate) prog_track: String,
    /// Counter-track name for the submitted-command queue depth.
    cmdq_name: String,
    /// Counter-track name for origin-side in-flight puts.
    puts_name: String,
    /// Recycled payload buffers: consumers return delivered frames here,
    /// producers (handshake/record encoders) draw from it, so steady-state
    /// traffic reuses a bounded working set instead of allocating per
    /// message.
    pool: BufPool,
    /// Human-readable labels per registered AM tag, for the per-class
    /// `msg.<class>.msgs_on_wire` / `records_per_msg` metrics.
    tag_labels: RefCell<HashMap<u64, &'static str>>,
    /// Self-tuning controller (`cfg.tune.enabled`): per-destination AIMD
    /// adaptation of the eager threshold, batching window and fetch
    /// windows, stepped lazily on the submission paths.
    tuner: Option<RefCell<Tuner>>,
}

/// Factory for per-node engines over a shared fabric.
pub struct CommWorld;

impl CommWorld {
    /// Build one engine per fabric node, with the chosen backend, and wire
    /// up wakers/handlers. Backend-side initialization may post receives
    /// (MPI's persistent handshake receives), which is why `sim` is needed.
    pub fn create(sim: &mut Sim, fabric: &FabricHandle, cfg: EngineConfig) -> Vec<Rc<CommEngine>> {
        let backends = make_backends(fabric, &cfg);
        let mut engines = Vec::with_capacity(backends.len());
        for (node, backend) in backends.into_iter().enumerate() {
            let progress_cores = (0..backend.progress_threads())
                .map(|i| CoreResource::new_shared(format!("n{node}.prog{i}")))
                .collect();
            let tuner = cfg.tune.enabled.then(|| {
                RefCell::new(Tuner::new(
                    cfg.tune.clone(),
                    cfg.eager_put_max,
                    cfg.batch_window_ns,
                    0,
                    cfg.max_concurrent_transfers as u64,
                ))
            });
            let eng = Rc::new(CommEngine {
                node,
                cfg: cfg.clone(),
                comm_core: CoreResource::new_shared(format!("n{node}.comm")),
                progress_cores,
                backend,
                inner: RefCell::new(Inner::new()),
                trace: shared(Trace::new(cfg.trace)),
                metrics: shared(MetricsRegistry::new(cfg.stages_enabled())),
                overlap: RefCell::new(None),
                comm_track: format!("n{node}.comm"),
                prog_track: format!("n{node}.prog"),
                cmdq_name: format!("n{node}.cmdq"),
                puts_name: format!("n{node}.puts"),
                pool: BufPool::new(64),
                tag_labels: RefCell::new(HashMap::new()),
                tuner,
            });
            eng.backend.init(&eng, sim);
            engines.push(eng);
        }
        engines
    }
}

impl Inner {
    fn new() -> Self {
        Inner {
            am_cbs: HashMap::new(),
            onesided_cbs: HashMap::new(),
            pending: VecDeque::new(),
            micro: VecDeque::new(),
            batch: HashMap::new(),
            batch_gen: 0,
            batch_last_flush: HashMap::new(),
            busy: false,
            idle: true,
            in_ctx: false,
            ctx_cost: SimTime::ZERO,
            stats: EngineStats::default(),
        }
    }
}

impl CommEngine {
    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    pub fn backend(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The communication thread's core (utilization diagnostics).
    pub fn comm_core(&self) -> CoreHandle {
        self.comm_core.clone()
    }

    /// The progress threads' cores, if this backend has any.
    pub fn progress_cores(&self) -> &[CoreHandle] {
        &self.progress_cores
    }

    /// The first progress thread's core, if this backend has one.
    pub fn progress_core(&self) -> Option<CoreHandle> {
        self.progress_cores.first().cloned()
    }

    pub fn stats(&self) -> EngineStats {
        let base = self.inner.borrow().stats.clone();
        self.backend.stats(base)
    }

    /// The engine's payload-buffer pool. Consumers of delivered
    /// [`AmEvent`]s recycle spent frames here; internal encoders draw from
    /// it.
    pub fn buf_pool(&self) -> &BufPool {
        &self.pool
    }

    /// The engine's trace collector (communication + progress tracks). Empty
    /// unless the configuration enabled tracing.
    pub fn trace_handle(&self) -> Shared<Trace> {
        self.trace.clone()
    }

    /// The engine's lifecycle-metrics registry. Empty unless the
    /// configuration enabled metrics.
    pub fn metrics_handle(&self) -> Shared<MetricsRegistry> {
        self.metrics.clone()
    }

    /// Install the cluster-wide overlap integrator; the backend reports wire
    /// transfers towards their target node into it.
    pub fn set_overlap(&self, tracker: Shared<OverlapTracker>) {
        *self.overlap.borrow_mut() = Some(tracker);
    }

    /// Report a wire transfer towards `node` starting (`+1`) or finishing
    /// (`-1`), feeding the Fig. 3 overlap metric. No-op without a tracker.
    pub(crate) fn wire_add(&self, node: NodeId, now: SimTime, delta: i32) {
        if let Some(t) = self.overlap.borrow().as_ref() {
            t.borrow_mut().wire_add(node, now, delta);
        }
    }

    /// Record a lifecycle-stage duration (no-op when neither metrics nor
    /// the adaptive controller need the histograms).
    pub(crate) fn record_stage(&self, name: &str, dt: SimTime) {
        if self.cfg.stages_enabled() {
            self.metrics.borrow_mut().record_time(name, dt);
        }
    }

    // ------------------------------------------------------------------
    // Self-tuning controller (cfg.tune.enabled)
    // ------------------------------------------------------------------

    /// Lazily step the adaptive controller to the epoch containing `now`.
    /// Called on the submission paths; reads the AM and put wire-stage
    /// lifecycle histograms as the congestion signals. No-op when the
    /// controller is off.
    pub(crate) fn tick_tune(&self, now: SimTime) {
        let Some(t) = &self.tuner else { return };
        let (am_wire, put_wire) = {
            let m = self.metrics.borrow();
            (m.hist_totals("am.wire_ns"), m.hist_totals("put.wire_ns"))
        };
        t.borrow_mut().maybe_epoch(now.as_ns(), am_wire, put_wire);
    }

    /// Effective eager-put ceiling towards `dst`: the adaptive
    /// per-destination threshold when the controller is on, the static
    /// configuration otherwise.
    pub fn eager_put_max_for(&self, dst: NodeId) -> usize {
        match &self.tuner {
            Some(t) => t.borrow().eager_put_max(dst),
            None => self.cfg.eager_put_max,
        }
    }

    /// Effective batching window towards `dst` for `tag`. An explicit
    /// per-tag override always wins (it encodes user intent, e.g.
    /// exempting GET DATA from hold-back); otherwise the controller's
    /// per-destination window when it is on, the static global window when
    /// off.
    pub fn batch_window_for(&self, dst: NodeId, tag: u64) -> u64 {
        if let Some(t) = &self.tuner {
            let explicit = self
                .cfg
                .batch_window_overrides
                .iter()
                .find(|&&(tg, _)| tg == tag);
            return match explicit {
                Some(&(_, w)) => w,
                None => t.borrow().batch_window(dst),
            };
        }
        self.cfg.batch_window_for(tag)
    }

    /// Effective consumer-side GET window given the substrate's static
    /// base (`ClusterConfig::get_window`).
    pub fn tuned_get_window(&self, base: usize) -> usize {
        match &self.tuner {
            Some(t) => t.borrow_mut().get_window_base(base as u64) as usize,
            None => base,
        }
    }

    /// Effective concurrent-transfer depth (MPI backend slot cap).
    pub fn max_transfers_now(&self) -> usize {
        match &self.tuner {
            Some(t) => t.borrow().max_transfers() as usize,
            None => self.cfg.max_concurrent_transfers,
        }
    }

    /// Account back-pressure towards `dst` (backend send retry, deferred
    /// transfer) — the controller's multiplicative-decrease signal.
    pub(crate) fn note_pressure(&self, dst: NodeId) {
        if let Some(t) = &self.tuner {
            t.borrow_mut().note_pressure(dst);
        }
    }

    /// `tune.*` counters for `metrics_report`: adaptation-event totals and
    /// the current per-destination knob values, or the all-zero aggregate
    /// set when the controller is off.
    pub fn tune_counters(&self) -> Vec<(String, u64)> {
        match &self.tuner {
            Some(t) => t.borrow().report_counters(self.node),
            None => Tuner::zero_counters(),
        }
    }

    /// Mark a rare condition (retry, deferral) on the communication track.
    pub(crate) fn trace_instant(&self, name: &'static str, now: SimTime) {
        if self.cfg.trace {
            self.trace.borrow_mut().instant(&self.comm_track, name, now);
        }
    }

    /// Sample the submitted-command queue depth onto its counter track.
    fn sample_cmdq(&self, now: SimTime, depth: usize) {
        if self.cfg.trace {
            self.trace
                .borrow_mut()
                .counter(&self.cmdq_name, now, depth as f64);
        }
    }

    /// Sample origin-side in-flight puts (started, not yet locally done).
    pub(crate) fn sample_inflight_puts(&self, now: SimTime) {
        if self.cfg.trace {
            let v = {
                let s = &self.inner.borrow().stats;
                s.puts_started.get().saturating_sub(s.puts_local_done.get())
            };
            self.trace
                .borrow_mut()
                .counter(&self.puts_name, now, v as f64);
        }
    }

    /// Register an active-message callback under `tag` (Listing 1
    /// `tag_reg`). Backends may post receives for the tag, hence `sim`.
    pub fn register_am(self: &Rc<Self>, sim: &mut Sim, tag: u64, cb: AmCallback) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        let prev = self.inner.borrow_mut().am_cbs.insert(tag, cb);
        assert!(prev.is_none(), "tag {tag} registered twice");
        self.backend.register_am_tag(self, sim, tag);
    }

    /// Register a one-sided completion callback under `r_tag` (the callback
    /// a put names for its remote completion).
    pub fn register_onesided(&self, r_tag: u64, cb: OnesidedCallback) {
        let prev = self.inner.borrow_mut().onesided_cbs.insert(r_tag, cb);
        assert!(prev.is_none(), "one-sided tag {r_tag} registered twice");
    }

    /// Submit an active message (Listing 1 `send_am`).
    ///
    /// Outside a communication-thread callback this *funnels*: the command
    /// is queued for the communication thread, aggregating with a pending AM
    /// to the same `(dst, tag)` when allowed (§4.3 duty #1). Inside a
    /// callback it issues immediately, its cost accruing to the running
    /// callback.
    pub fn send_am(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) {
        self.send_am_opts(sim, dst, tag, size, data, true);
    }

    /// `send_am` with explicit control over aggregation eligibility.
    pub fn send_am_opts(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
        aggregate: bool,
    ) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.inner.borrow_mut().stats.am_submitted.inc();
        self.tick_tune(sim.now());
        if let Some(t) = &self.tuner {
            t.borrow_mut().note_am(dst);
        }
        // Engine-level batching: hold the record in a per-(dst, tag) buffer
        // until its window expires or its byte threshold fills. Checked
        // *before* the in-context fast path so sends issued from inside a
        // communication-thread callback (GET issuance, tree forwarding) —
        // which would otherwise go straight to the wire — coalesce too.
        if aggregate && self.batch_window_for(dst, tag) > 0 {
            self.batch_am(sim, dst, tag, size, data);
            return;
        }
        let depth;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.in_ctx {
                drop(inner);
                // Issued immediately from communication-thread context: the
                // queue-wait stage of the lifecycle is zero.
                self.record_stage("am.queue_ns", SimTime::ZERO);
                let c = self.issue_am(sim, dst, tag, size, Frames::from(data), 1);
                self.inner.borrow_mut().ctx_cost += c;
                return;
            }
            // Try to aggregate with a queued AM to the same destination/tag.
            if aggregate && self.cfg.agg_max_bytes > 0 {
                for cmd in inner.pending.iter_mut() {
                    if let Command::SendAm {
                        dst: d,
                        tag: t,
                        size: s,
                        frames,
                        aggregate: true,
                        submissions,
                        ..
                    } = cmd
                    {
                        if *d == dst && *t == tag && *s + size <= self.cfg.agg_max_bytes {
                            *s += size;
                            *submissions += 1;
                            if let Some(b) = data {
                                frames.push(b);
                            }
                            return;
                        }
                    }
                }
            }
            inner.pending.push_back(Command::SendAm {
                dst,
                tag,
                size,
                frames: Frames::from(data),
                aggregate,
                submissions: 1,
                submitted_at: sim.now(),
            });
            depth = inner.pending.len();
        }
        self.sample_cmdq(sim.now(), depth);
        CommEngine::wake_comm(self, sim);
    }

    /// Add a record to its `(dst, tag)` batching buffer, opening the buffer
    /// (and scheduling its flush) if none is open.
    ///
    /// The flush time implements per-link rate limiting rather than a
    /// fixed hold-back delay: if the link has been quiet for at least one
    /// window the buffer flushes at the *current* instant — after the rest
    /// of this instant's submissions, so a burst issued in one callback
    /// still coalesces — and otherwise at `last_flush + window`, bounding
    /// each `(dst, tag)` pair to one wire message per window under
    /// sustained traffic while adding no latency to sporadic sends.
    fn batch_am(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) {
        let flush_at = self.cfg.batch_flush_bytes();
        let flush_now;
        let mut schedule = None;
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            match inner.batch.get_mut(&(dst, tag)) {
                Some(b) => {
                    if let Some(d) = data {
                        b.frames.push(d);
                    }
                    b.size += size;
                    b.submissions += 1;
                    flush_now = b.size >= flush_at;
                }
                None => {
                    inner.batch_gen += 1;
                    let gen = inner.batch_gen;
                    inner.batch.insert(
                        (dst, tag),
                        AmBatch {
                            frames: Frames::from(data),
                            size,
                            submissions: 1,
                            first_submitted: sim.now(),
                            gen,
                        },
                    );
                    flush_now = size >= flush_at;
                    if !flush_now {
                        let window = SimTime::from_ns(self.batch_window_for(dst, tag));
                        let earliest = inner
                            .batch_last_flush
                            .get(&(dst, tag))
                            .map_or(SimTime::ZERO, |t| *t + window);
                        schedule = Some((gen, earliest));
                    }
                }
            }
        }
        if flush_now {
            CommEngine::flush_batch(self, sim, dst, tag, None);
        } else if let Some((gen, earliest)) = schedule {
            let eng = self.clone();
            let flush =
                move |sim: &mut Sim| CommEngine::flush_batch(&eng, sim, dst, tag, Some(gen));
            if earliest <= sim.now() {
                sim.schedule_now(flush);
            } else {
                sim.schedule_at(earliest, flush);
            }
        }
    }

    /// Move a batching buffer onto the communication thread's command
    /// queue. `gen` (window-expiry flushes) makes the flush conditional on
    /// the buffer still being the one the event was scheduled for; `None`
    /// (threshold flushes) is unconditional.
    fn flush_batch(eng: &Rc<Self>, sim: &mut Sim, dst: NodeId, tag: u64, gen: Option<u64>) {
        let depth;
        {
            let mut inner = eng.inner.borrow_mut();
            match inner.batch.get(&(dst, tag)) {
                Some(b) if gen.is_none_or(|g| b.gen == g) => {}
                _ => return,
            }
            let b = inner
                .batch
                .remove(&(dst, tag))
                .expect("batch checked above");
            inner.batch_last_flush.insert((dst, tag), sim.now());
            inner.pending.push_back(Command::SendAm {
                dst,
                tag,
                size: b.size,
                frames: b.frames,
                aggregate: true,
                submissions: b.submissions,
                submitted_at: b.first_submitted,
            });
            depth = inner.pending.len();
        }
        eng.sample_cmdq(sim.now(), depth);
        CommEngine::wake_comm(eng, sim);
    }

    /// Multithreaded AM send (§6.4.3): the calling worker thread sends
    /// directly, bypassing the communication thread and aggregation.
    /// Returns the CPU cost the caller must charge to its own core — for
    /// backends with a serializing library lock this includes the wait.
    pub fn send_am_direct(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> SimTime {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.backend
            .issue_am_direct(self, sim, dst, tag, size, data)
    }

    /// Start a one-sided put (Listing 1 `put`). Funnelled to the
    /// communication thread unless called from a communication-thread
    /// callback (the GET DATA pattern), in which case it issues immediately.
    pub fn put(self: &Rc<Self>, sim: &mut Sim, req: PutRequest) {
        self.tick_tune(sim.now());
        if let Some(t) = &self.tuner {
            t.borrow_mut().note_put(req.dst, req.size);
        }
        let depth;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.in_ctx {
                drop(inner);
                self.record_stage("put.queue_ns", SimTime::ZERO);
                let c = self.issue_put(sim, req);
                self.inner.borrow_mut().ctx_cost += c;
                return;
            }
            inner.pending.push_back(Command::Put {
                req,
                submitted_at: Some(sim.now()),
            });
            depth = inner.pending.len();
        }
        self.sample_cmdq(sim.now(), depth);
        CommEngine::wake_comm(self, sim);
    }

    // ------------------------------------------------------------------
    // Communication-thread actor
    // ------------------------------------------------------------------

    /// Wake the communication thread if it is parked.
    pub(crate) fn wake_comm(eng: &Rc<Self>, sim: &mut Sim) {
        {
            let mut inner = eng.inner.borrow_mut();
            if inner.busy || !inner.idle {
                return;
            }
            inner.idle = false;
            inner.busy = true;
        }
        let eng2 = eng.clone();
        let wake = eng.cfg.wake_latency;
        eng.comm_core.borrow_mut().charge(sim, wake, move |sim| {
            eng2.inner.borrow_mut().busy = false;
            CommEngine::pump(&eng2, sim);
        });
    }

    /// Pick the next micro-task, or park.
    fn next_micro(&self) -> Option<Micro> {
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(m) = inner.micro.pop_front() {
                return Some(m);
            }
            if !inner.pending.is_empty() {
                return Some(Micro::Commands);
            }
        }
        self.backend.next_micro(self).map(|m| match m {
            BackendMicro::Unit(c) => Micro::BackendUnit(c),
            BackendMicro::Task(t) => Micro::Backend(t),
        })
    }

    /// Run the communication thread until it has no work: each micro-task's
    /// logic executes now and its cost is charged to the communication core;
    /// the next micro-task starts when the charge completes.
    pub(crate) fn pump(eng: &Rc<Self>, sim: &mut Sim) {
        if eng.inner.borrow().busy {
            return;
        }
        let Some(task) = eng.next_micro() else {
            eng.inner.borrow_mut().idle = true;
            return;
        };
        {
            let mut inner = eng.inner.borrow_mut();
            inner.busy = true;
            inner.idle = false;
            inner.stats.comm_rounds.inc();
        }
        let label = match &task {
            Micro::Commands => "commands",
            Micro::Backend(t) => eng.backend.micro_label(t),
            Micro::BackendUnit(c) => eng.backend.micro_unit_label(*c),
        };
        let round_start = sim.now();
        let mut cost = eng.execute_micro(sim, task);
        if cost.is_zero() {
            cost = SimTime::from_ns(1);
        }
        // Library calls from the communication thread hold the backend's
        // serializing lock (if it has one); multithreaded senders add
        // waiting time here.
        let total = match eng.backend.serializing_lock() {
            Some(lock) => {
                let now = sim.now();
                let end = lock.borrow_mut().occupy(now, cost);
                end - now
            }
            None => cost,
        };
        eng.inner.borrow_mut().stats.comm_busy += total;
        if eng.cfg.trace {
            eng.trace
                .borrow_mut()
                .record(&eng.comm_track, label, round_start, round_start + total);
        }
        let eng2 = eng.clone();
        eng.comm_core.borrow_mut().charge(sim, total, move |sim| {
            eng2.inner.borrow_mut().busy = false;
            CommEngine::pump(&eng2, sim);
        });
    }

    fn execute_micro(self: &Rc<Self>, sim: &mut Sim, task: Micro) -> SimTime {
        match task {
            Micro::Commands => self.exec_commands(sim),
            Micro::Backend(t) => self.backend.exec_micro(self, sim, t),
            Micro::BackendUnit(c) => self.backend.exec_micro_unit(self, sim, c),
        }
    }

    fn exec_commands(self: &Rc<Self>, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            let (cmd, len_after_pop) = {
                let mut inner = self.inner.borrow_mut();
                match inner.pending.pop_front() {
                    Some(c) => {
                        let len = inner.pending.len();
                        (c, len)
                    }
                    None => break,
                }
            };
            cost += self.cfg.cmd_overhead;
            match cmd {
                Command::SendAm {
                    dst,
                    tag,
                    size,
                    frames,
                    submissions,
                    submitted_at,
                    ..
                } => {
                    self.record_stage("am.queue_ns", sim.now().saturating_sub(submitted_at));
                    cost += self.issue_am(sim, dst, tag, size, frames, submissions);
                }
                Command::Put { req, submitted_at } => {
                    if let Some(t0) = submitted_at {
                        self.record_stage("put.queue_ns", sim.now().saturating_sub(t0));
                    }
                    cost += self.issue_put(sim, req);
                }
                Command::Backend(task) => {
                    cost += self.backend.exec_command(self, sim, task);
                }
            }
            // A command that hit back-pressure re-queues itself at the
            // front; stop draining — it will be retried on the next wake,
            // once resources have freed.
            if self.inner.borrow().pending.len() > len_after_pop {
                break;
            }
        }
        let depth = self.inner.borrow().pending.len();
        self.sample_cmdq(sim.now(), depth);
        cost
    }

    /// Issue an AM on the wire (from the communication thread or a
    /// callback). When aggregation merged several submissions, `frames`
    /// carries one frame per submission, in order — delivered zero-copy,
    /// never concatenated.
    pub(crate) fn issue_am(
        self: &Rc<Self>,
        sim: &mut Sim,
        dst: NodeId,
        tag: u64,
        size: usize,
        frames: Frames,
        submissions: u64,
    ) -> SimTime {
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.am_sent.inc();
        }
        if self.cfg.metrics {
            let label = self.tag_label(tag);
            let mut m = self.metrics.borrow_mut();
            m.count(&format!("msg.{label}.msgs_on_wire"), 1);
            m.record(&format!("msg.{label}.records_per_msg"), submissions);
        }
        let c = self.backend.issue_am(self, sim, dst, tag, size, frames);
        self.record_stage("am.inject_ns", c);
        c
    }

    /// Attach a human-readable class label to an AM tag, naming its
    /// per-class wire counters (`msg.<label>.msgs_on_wire`,
    /// `msg.<label>.records_per_msg`). Unlabeled tags count under `am`.
    pub fn label_tag(&self, tag: u64, label: &'static str) {
        self.tag_labels.borrow_mut().insert(tag, label);
    }

    fn tag_label(&self, tag: u64) -> &'static str {
        self.tag_labels.borrow().get(&tag).copied().unwrap_or("am")
    }

    pub(crate) fn issue_put(self: &Rc<Self>, sim: &mut Sim, req: PutRequest) -> SimTime {
        if self.cfg.metrics {
            self.metrics.borrow_mut().count("msg.data.msgs_on_wire", 1);
        }
        let c = self.backend.issue_put(self, sim, req);
        self.record_stage("put.inject_ns", c);
        self.sample_inflight_puts(sim.now());
        c
    }

    /// Run a user callback in communication-thread context: nested engine
    /// calls issue immediately and bill the callback.
    pub(crate) fn run_in_ctx(
        self: &Rc<Self>,
        sim: &mut Sim,
        f: impl FnOnce(&mut Sim, &Rc<CommEngine>) -> SimTime,
    ) -> SimTime {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(!inner.in_ctx, "nested communication-thread callback");
            inner.in_ctx = true;
            inner.ctx_cost = SimTime::ZERO;
        }
        let c = f(sim, self);
        let mut inner = self.inner.borrow_mut();
        inner.in_ctx = false;
        c + std::mem::take(&mut inner.ctx_cost)
    }
}

/// Helpers shared by the backends for dispatching user callbacks.
pub(crate) fn dispatch_am(eng: &Rc<CommEngine>, sim: &mut Sim, ev: AmEvent) -> SimTime {
    let cb = eng
        .inner
        .borrow()
        .am_cbs
        .get(&ev.tag)
        .unwrap_or_else(|| panic!("no AM callback registered for tag {}", ev.tag))
        .clone();
    eng.inner.borrow_mut().stats.am_received.inc();
    let c = eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng, ev));
    eng.record_stage("am.callback_ns", c);
    c
}

pub(crate) fn dispatch_onesided(
    eng: &Rc<CommEngine>,
    sim: &mut Sim,
    r_tag: u64,
    ev: PutEvent,
) -> SimTime {
    let cb = eng
        .inner
        .borrow()
        .onesided_cbs
        .get(&r_tag)
        .unwrap_or_else(|| panic!("no one-sided callback registered for tag {r_tag}"))
        .clone();
    {
        let mut inner = eng.inner.borrow_mut();
        inner.stats.puts_remote_done.inc();
        inner.stats.put_bytes_in.add(ev.size as u64);
    }
    let c = eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng, ev));
    eng.record_stage("put.callback_ns", c);
    c
}

pub(crate) fn dispatch_put_local(eng: &Rc<CommEngine>, sim: &mut Sim, cb: PutLocalCb) -> SimTime {
    eng.inner.borrow_mut().stats.puts_local_done.inc();
    let c = eng.run_in_ctx(sim, move |sim, eng| cb(sim, eng));
    eng.sample_inflight_puts(sim.now());
    c
}
