//! Communication-engine configuration.

use amt_simnet::SimTime;

/// Which communication library backs the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// MiniMPI two-sided backend (§4.2).
    Mpi,
    /// LCI backend with a dedicated progress thread (§5.3).
    Lci,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Mpi => write!(f, "Open MPI (modelled)"),
            BackendKind::Lci => write!(f, "LCI"),
        }
    }
}

/// Engine parameters. Defaults reproduce the paper's configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub backend: BackendKind,
    /// Persistent receives posted per registered AM tag (MPI backend; the
    /// paper's implementation uses five).
    pub am_recv_depth: usize,
    /// Maximum concurrently polled data transfers, sends plus receives
    /// (MPI backend; the paper's implementation uses 30).
    pub max_concurrent_transfers: usize,
    /// AM completions processed per communication-thread round before the
    /// bulk-data queue is drained (LCI backend; the paper uses five).
    pub am_batch: usize,
    /// Puts at or below this size ride eagerly inside the LCI handshake
    /// message (§5.3.3 optimization).
    pub eager_put_max: usize,
    /// Aggregate funneled AMs to the same (destination, tag) up to this many
    /// payload bytes (§4.3 duty #1). Set to 0 to disable aggregation.
    pub agg_max_bytes: usize,
    /// Multithreaded-ACTIVATE mode: workers send AMs directly instead of
    /// funneling through the communication thread (§6.4.3).
    pub multithread_am: bool,
    /// Ablation: run `LCI_progress` on the *communication* thread's core
    /// instead of a dedicated progress thread — undoing the §5.3.1 design
    /// so its benefit can be isolated.
    pub lci_shared_progress: bool,
    /// §7 future work: use LCI's one-sided `putd` (RDMA write with
    /// immediate data) to implement the put interface directly, instead of
    /// the handshake + two-sided emulation of §5.3.3.
    pub lci_direct_put: bool,
    /// §7 future work: number of LCI progress threads (cores). More threads
    /// drain completions concurrently under heavy load.
    pub lci_progress_threads: usize,
    /// CPU cost of dequeueing/bookkeeping one submitted command on the
    /// communication thread.
    pub cmd_overhead: SimTime,
    /// CPU cost of popping one completion-FIFO entry (LCI backend).
    pub fifo_pop: SimTime,
    /// Latency for an idle polling thread to notice new work (poll-loop
    /// granularity).
    pub wake_latency: SimTime,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            backend: BackendKind::Lci,
            am_recv_depth: 5,
            max_concurrent_transfers: 30,
            am_batch: 5,
            eager_put_max: 4096,
            agg_max_bytes: 8192,
            multithread_am: false,
            lci_shared_progress: false,
            lci_direct_put: false,
            lci_progress_threads: 1,
            cmd_overhead: SimTime::from_ns(100),
            fifo_pop: SimTime::from_ns(40),
            wake_latency: SimTime::from_ns(100),
        }
    }
}

impl EngineConfig {
    pub fn mpi() -> Self {
        EngineConfig {
            backend: BackendKind::Mpi,
            ..Default::default()
        }
    }

    pub fn lci() -> Self {
        EngineConfig {
            backend: BackendKind::Lci,
            ..Default::default()
        }
    }

    /// Enable the §6.4.3 multithreaded-ACTIVATE mode.
    pub fn with_multithread_am(mut self, on: bool) -> Self {
        self.multithread_am = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::mpi();
        assert_eq!(c.am_recv_depth, 5);
        assert_eq!(c.max_concurrent_transfers, 30);
        assert_eq!(c.am_batch, 5);
        assert!(!c.multithread_am);
    }

    #[test]
    fn builders() {
        assert_eq!(EngineConfig::lci().backend, BackendKind::Lci);
        assert!(EngineConfig::mpi().with_multithread_am(true).multithread_am);
        assert_eq!(format!("{}", BackendKind::Lci), "LCI");
    }
}
