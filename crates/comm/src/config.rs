//! Communication-engine configuration.

use amt_simnet::SimTime;

use crate::tune::TuneConfig;

/// Which communication library backs the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// MiniMPI two-sided backend (§4.2).
    Mpi,
    /// LCI backend with a dedicated progress thread (§5.3).
    Lci,
    /// LCI backend using the §7 direct put: a single one-sided RDMA write
    /// with an immediate-data completion descriptor replaces the
    /// handshake + rendezvous emulation for large puts.
    LciDirect,
}

impl BackendKind {
    /// All backends, in presentation order (MPI, LCI, LCI direct-put).
    pub const ALL: [BackendKind; 3] = [BackendKind::Mpi, BackendKind::Lci, BackendKind::LciDirect];

    /// Command-line spelling (`--backend` flags in the bench harnesses).
    pub fn cli_name(&self) -> &'static str {
        match self {
            BackendKind::Mpi => "mpi",
            BackendKind::Lci => "lci",
            BackendKind::LciDirect => "lci-direct",
        }
    }

    /// Parse a command-line spelling. Accepts the `cli_name` forms plus a
    /// couple of common aliases.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "mpi" => Some(BackendKind::Mpi),
            "lci" => Some(BackendKind::Lci),
            "lci-direct" | "lci_direct" | "lcidirect" | "direct" => Some(BackendKind::LciDirect),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Mpi => write!(f, "Open MPI (modelled)"),
            BackendKind::Lci => write!(f, "LCI"),
            BackendKind::LciDirect => write!(f, "LCI direct-put"),
        }
    }
}

/// Engine parameters. Defaults reproduce the paper's configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub backend: BackendKind,
    /// Persistent receives posted per registered AM tag (MPI backend; the
    /// paper's implementation uses five).
    pub am_recv_depth: usize,
    /// Maximum concurrently polled data transfers, sends plus receives
    /// (MPI backend; the paper's implementation uses 30).
    pub max_concurrent_transfers: usize,
    /// AM completions processed per communication-thread round before the
    /// bulk-data queue is drained (LCI backend; the paper uses five).
    pub am_batch: usize,
    /// Puts at or below this size ride eagerly inside the LCI handshake
    /// message (§5.3.3 optimization). The direct-put backend uses the same
    /// threshold: payloads under it stay inline in the buffered message.
    pub eager_put_max: usize,
    /// Aggregate funneled AMs to the same (destination, tag) up to this many
    /// payload bytes (§4.3 duty #1). Set to 0 to disable aggregation.
    pub agg_max_bytes: usize,
    /// Engine-level AM batching: coalesce records addressed to the same
    /// `(destination, tag)` into one wire message, rate-limiting each link
    /// to one message per window under sustained traffic. A record to a
    /// link that has been quiet for at least a window flushes at the end
    /// of the current virtual instant (no added latency; a burst issued in
    /// one callback still coalesces); a record to a hot link is held until
    /// a full window has passed since the link's previous flush. `0`
    /// (the default) disables the batching layer entirely — every submission
    /// follows the classic funnel path and flushes immediately, preserving
    /// the pre-batching schedule byte for byte.
    pub batch_window_ns: u64,
    /// Byte threshold that flushes a batching buffer early (before its
    /// window expires). `0` falls back to `agg_max_bytes`. Only meaningful
    /// when `batch_window_ns > 0`.
    pub batch_bytes: usize,
    /// Per-tag overrides of `batch_window_ns`. Latency-sensitive tags
    /// (GET DATA on the critical path) tolerate less added delay than wide
    /// fan-out announces, so each `(tag, window_ns)` entry replaces the
    /// global window for that tag. An entry of `0` exempts the tag from
    /// the batching layer entirely: its records follow the classic flat
    /// funnel path byte for byte, even while other tags batch.
    pub batch_window_overrides: Vec<(u64, u64)>,
    /// Multithreaded-ACTIVATE mode: workers send AMs directly instead of
    /// funneling through the communication thread (§6.4.3).
    pub multithread_am: bool,
    /// Ablation: run `LCI_progress` on the *communication* thread's core
    /// instead of a dedicated progress thread — undoing the §5.3.1 design
    /// so its benefit can be isolated.
    pub lci_shared_progress: bool,
    /// §7 future work: number of LCI progress threads (cores). More threads
    /// drain completions concurrently under heavy load.
    pub lci_progress_threads: usize,
    /// CPU cost of dequeueing/bookkeeping one submitted command on the
    /// communication thread.
    pub cmd_overhead: SimTime,
    /// CPU cost of popping one completion-FIFO entry (LCI backend).
    pub fifo_pop: SimTime,
    /// Latency for an idle polling thread to notice new work (poll-loop
    /// granularity).
    pub wake_latency: SimTime,
    /// Record a Chrome-trace timeline of the communication/progress threads
    /// (spans, flow arrows, queue-depth counters). Off by default: when
    /// disabled every trace call is a no-op.
    pub trace: bool,
    /// Record per-stage message-lifecycle latency histograms
    /// (`submit → aggregate → inject → wire → deliver → callback`) into the
    /// engine's [`amt_simnet::MetricsRegistry`]. Off by default.
    pub metrics: bool,
    /// Self-tuning controller (see [`crate::tune`]): per-destination AIMD
    /// adaptation of the eager-put threshold, the batching window and the
    /// GET-window depth, fed by the lifecycle histograms. Off by default;
    /// when enabled the engine records lifecycle stages even with
    /// `metrics` off (the controller reads them as its congestion signal).
    pub tune: TuneConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            backend: BackendKind::Lci,
            am_recv_depth: 5,
            max_concurrent_transfers: 30,
            am_batch: 5,
            eager_put_max: 4096,
            agg_max_bytes: 8192,
            batch_window_ns: 0,
            batch_bytes: 0,
            batch_window_overrides: Vec::new(),
            multithread_am: false,
            lci_shared_progress: false,
            lci_progress_threads: 1,
            cmd_overhead: SimTime::from_ns(100),
            fifo_pop: SimTime::from_ns(40),
            wake_latency: SimTime::from_ns(100),
            trace: false,
            metrics: false,
            tune: TuneConfig::default(),
        }
    }
}

impl EngineConfig {
    pub fn mpi() -> Self {
        EngineConfig {
            backend: BackendKind::Mpi,
            ..Default::default()
        }
    }

    pub fn lci() -> Self {
        EngineConfig {
            backend: BackendKind::Lci,
            ..Default::default()
        }
    }

    /// §7 direct-put configuration: LCI with `putd` replacing the
    /// handshake emulation.
    pub fn lci_direct() -> Self {
        EngineConfig {
            backend: BackendKind::LciDirect,
            ..Default::default()
        }
    }

    /// One default configuration per backend, in `BackendKind::ALL` order.
    pub fn all_backends() -> [EngineConfig; 3] {
        BackendKind::ALL.map(|backend| EngineConfig {
            backend,
            ..Default::default()
        })
    }

    /// Build a configuration for an arbitrary backend kind.
    pub fn for_backend(backend: BackendKind) -> Self {
        EngineConfig {
            backend,
            ..Default::default()
        }
    }

    /// Enable the §6.4.3 multithreaded-ACTIVATE mode.
    pub fn with_multithread_am(mut self, on: bool) -> Self {
        self.multithread_am = on;
        self
    }

    /// Enable trace recording and/or metrics collection.
    pub fn with_observability(mut self, trace: bool, metrics: bool) -> Self {
        self.trace = trace;
        self.metrics = metrics;
        self
    }

    /// Enable the engine-level AM batching layer: hold same-destination
    /// records for up to `window_ns` of virtual time, flushing early at
    /// `bytes` payload bytes (`0` = use `agg_max_bytes`). A zero window
    /// means flush-immediately, i.e. batching disabled.
    pub fn with_batching(mut self, window_ns: u64, bytes: usize) -> Self {
        self.batch_window_ns = window_ns;
        self.batch_bytes = bytes;
        self
    }

    /// Set a per-tag batching-window override (see
    /// [`EngineConfig::batch_window_overrides`]). `0` exempts the tag from
    /// batching. Replaces any previous override for the same tag.
    pub fn with_batch_window_override(mut self, tag: u64, window_ns: u64) -> Self {
        self.batch_window_overrides.retain(|&(t, _)| t != tag);
        self.batch_window_overrides.push((tag, window_ns));
        self
    }

    /// Effective batching window for `tag`: its override when present,
    /// otherwise the global `batch_window_ns`.
    pub fn batch_window_for(&self, tag: u64) -> u64 {
        self.batch_window_overrides
            .iter()
            .find(|&&(t, _)| t == tag)
            .map_or(self.batch_window_ns, |&(_, w)| w)
    }

    /// Enable (or disable) the self-tuning controller with its default
    /// cadence and bounds.
    pub fn with_tuning(mut self, on: bool) -> Self {
        self.tune.enabled = on;
        self
    }

    /// True when the engine must record lifecycle-stage histograms: either
    /// the user asked for metrics or the controller needs them as input.
    pub fn stages_enabled(&self) -> bool {
        self.metrics || self.tune.enabled
    }

    /// Effective byte threshold of the batching layer.
    pub fn batch_flush_bytes(&self) -> usize {
        if self.batch_bytes > 0 {
            self.batch_bytes
        } else {
            self.agg_max_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::mpi();
        assert_eq!(c.am_recv_depth, 5);
        assert_eq!(c.max_concurrent_transfers, 30);
        assert_eq!(c.am_batch, 5);
        assert!(!c.multithread_am);
        // Batching is off by default: zero window = flush-immediately.
        assert_eq!(c.batch_window_ns, 0);
        assert_eq!(c.batch_bytes, 0);
    }

    #[test]
    fn batching_builder_and_threshold_fallback() {
        let c = EngineConfig::lci().with_batching(5_000, 0);
        assert_eq!(c.batch_window_ns, 5_000);
        // Zero batch_bytes falls back to the aggregation cap.
        assert_eq!(c.batch_flush_bytes(), c.agg_max_bytes);
        let c = c.with_batching(5_000, 2048);
        assert_eq!(c.batch_flush_bytes(), 2048);
    }

    #[test]
    fn per_tag_window_overrides() {
        let c = EngineConfig::lci().with_batching(5_000, 0);
        // No override: every tag sees the global window.
        assert_eq!(c.batch_window_for(7), 5_000);
        // Override replaces the window for that tag only; zero exempts it.
        let c = c
            .with_batch_window_override(7, 250)
            .with_batch_window_override(9, 0);
        assert_eq!(c.batch_window_for(7), 250);
        assert_eq!(c.batch_window_for(9), 0);
        assert_eq!(c.batch_window_for(8), 5_000);
        // Re-setting a tag replaces rather than accumulates.
        let c = c.with_batch_window_override(7, 1_000);
        assert_eq!(c.batch_window_for(7), 1_000);
        assert_eq!(
            c.batch_window_overrides.iter().filter(|t| t.0 == 7).count(),
            1
        );
    }

    #[test]
    fn builders() {
        assert_eq!(EngineConfig::lci().backend, BackendKind::Lci);
        assert_eq!(EngineConfig::lci_direct().backend, BackendKind::LciDirect);
        assert!(EngineConfig::mpi().with_multithread_am(true).multithread_am);
        assert_eq!(format!("{}", BackendKind::Lci), "LCI");
        assert_eq!(format!("{}", BackendKind::LciDirect), "LCI direct-put");
    }

    #[test]
    fn cli_names_roundtrip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.cli_name()), Some(b));
        }
        assert_eq!(
            BackendKind::parse("LCI-Direct"),
            Some(BackendKind::LciDirect)
        );
        assert_eq!(BackendKind::parse("nonsense"), None);
    }
}
