//! Deque stress suite: a multi-thread push/pop/steal hammer with an
//! order-independent checksum oracle, and a single-thread lockstep
//! property test (DetRng-driven) against a `VecDeque` reference model —
//! the same style as the matcher/scheduler lockstep suites of earlier
//! PRs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use amt_simnet::DetRng;

use crate::deque::{deque, Steal};

/// Order-independent accumulator: sum, xor and count identify a multiset
/// of u64s with overwhelming probability for test-sized inputs.
#[derive(Default)]
struct Checksum {
    sum: u64,
    xor: u64,
    count: u64,
}

impl Checksum {
    fn add(&mut self, v: u64) {
        self.sum = self.sum.wrapping_add(v);
        self.xor ^= v;
        self.count += 1;
    }
}

/// The hammer: one owner pushes `total` distinct values while popping
/// intermittently; `thieves` stealer threads drain concurrently. Every
/// value must come out exactly once, across owner pops, steals, and the
/// overflow spill — verified by the order-independent checksum.
#[test]
fn hammer_push_pop_steal_conserves_items() {
    let thieves = 4;
    let total: u64 = 200_000;
    let (worker, stealer) = deque::<u64>(256); // small cap: exercise overflow
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));
    let stolen_xor = Arc::new(AtomicU64::new(0));
    let stolen_count = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..thieves {
            let stealer = stealer.clone();
            let done = done.clone();
            let (ssum, sxor, scount) =
                (stolen_sum.clone(), stolen_xor.clone(), stolen_count.clone());
            s.spawn(move || {
                let mut local = Checksum::default();
                let mut rng = DetRng::seed_from_u64(0xface ^ t as u64);
                loop {
                    match stealer.steal() {
                        Steal::Taken(v) => local.add(*v),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(SeqCst) && stealer.is_empty() {
                                break;
                            }
                            if rng.gen_bool(0.01) {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                ssum.fetch_add(local.sum, SeqCst);
                sxor.fetch_xor(local.xor, SeqCst);
                scount.fetch_add(local.count, SeqCst);
            });
        }

        // Owner: push all values; under overflow, drain a few locally.
        let mut owner_cs = Checksum::default();
        let mut overflow: Vec<u64> = Vec::new();
        let mut rng = DetRng::seed_from_u64(0xbeef);
        for v in 1..=total {
            let mut item = Box::new(v);
            loop {
                match worker.push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        // Full: model the injector spill, then relieve
                        // pressure by popping a little.
                        overflow.push(*back);
                        for _ in 0..8 {
                            if let Some(p) = worker.pop() {
                                owner_cs.add(*p);
                            }
                        }
                        item = Box::new(overflow.pop().unwrap());
                    }
                }
            }
            if rng.gen_bool(0.2) {
                if let Some(p) = worker.pop() {
                    owner_cs.add(*p);
                }
            }
        }
        while let Some(p) = worker.pop() {
            owner_cs.add(*p);
        }
        done.store(true, SeqCst);
        // Merge owner side into the shared accumulators.
        stolen_sum.fetch_add(owner_cs.sum, SeqCst);
        stolen_xor.fetch_xor(owner_cs.xor, SeqCst);
        stolen_count.fetch_add(owner_cs.count, SeqCst);
        for v in overflow {
            stolen_sum.fetch_add(v, SeqCst);
            stolen_xor.fetch_xor(v, SeqCst);
            stolen_count.fetch_add(1, SeqCst);
        }
    });

    // The owner drained everything it could after `done`; anything left
    // was stolen. Totals must match the pushed multiset exactly.
    let expect_sum: u64 = (1..=total).fold(0u64, |a, v| a.wrapping_add(v));
    let expect_xor: u64 = (1..=total).fold(0u64, |a, v| a ^ v);
    assert_eq!(stolen_count.load(SeqCst), total, "every item exactly once");
    assert_eq!(stolen_sum.load(SeqCst), expect_sum, "sum checksum");
    assert_eq!(stolen_xor.load(SeqCst), expect_xor, "xor checksum");
}

/// Single-thread lockstep property test: drive the deque and a `VecDeque`
/// reference model with the same DetRng op stream; owner ops act on the
/// back, steals on the front. Every observable result must match, step
/// for step, across many seeds.
#[test]
fn lockstep_against_vecdeque_model() {
    for seed in 0..32u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        let (worker, stealer) = deque::<u64>(64);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for step in 0..4_000 {
            match rng.gen_usize(0..3) {
                0 => {
                    next += 1;
                    match worker.push(Box::new(next)) {
                        Ok(()) => model.push_back(next),
                        Err(back) => {
                            assert_eq!(*back, next, "rejected item returned intact");
                            assert_eq!(model.len(), 64, "full exactly at capacity");
                        }
                    }
                }
                1 => {
                    let got = worker.pop().map(|b| *b);
                    assert_eq!(got, model.pop_back(), "pop (seed {seed}, step {step})");
                }
                _ => {
                    let got = match stealer.steal() {
                        Steal::Taken(v) => Some(*v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("single-thread steal cannot race"),
                    };
                    assert_eq!(got, model.pop_front(), "steal (seed {seed}, step {step})");
                }
            }
            assert_eq!(worker.len(), model.len(), "len (seed {seed}, step {step})");
            assert_eq!(worker.is_empty(), model.is_empty());
            assert_eq!(stealer.is_empty(), model.is_empty());
        }
        // Drain and compare the final contents in steal (FIFO) order.
        while let Steal::Taken(v) = stealer.steal() {
            assert_eq!(Some(*v), model.pop_front());
        }
        assert!(
            model.is_empty(),
            "model drained with the deque (seed {seed})"
        );
    }
}

/// The deque must free un-drained items on drop (no leaks under
/// Miri/ASan-style scrutiny, and no double-free when stealers outlive the
/// owner).
#[test]
fn drop_frees_remaining_items() {
    let (worker, stealer) = deque::<Vec<u8>>(32);
    for i in 0..20u8 {
        worker.push(Box::new(vec![i; 64])).unwrap();
    }
    drop(worker);
    // The owner drained on drop; late stealers see empty, not garbage.
    assert!(matches!(stealer.steal(), Steal::Empty));
}
