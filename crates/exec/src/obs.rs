//! Pool observability: per-worker lock-free trace buffers and scheduling
//! counters.
//!
//! ## Trace buffers
//!
//! Each worker owns one fixed-capacity [`TraceBuf`]: a slot array written
//! only by the owning worker (single writer), published slot by slot with
//! a release store of the length. Recording is wait-free and allocation-
//! free; when a buffer fills, further events increment a dropped counter
//! instead of blocking or reallocating, so tracing never perturbs the
//! run's memory behavior mid-flight. Buffers are only allocated when the
//! pool is constructed traced ([`crate::Pool::new_traced`]) — an untraced
//! pool carries `None` and every record site is a single branch.
//!
//! The drain ([`crate::Pool::drain_trace`]) is a snapshot taken at
//! quiescence (after [`crate::Pool::run_until_idle`]): workers are parked,
//! so the acquire load of each length observes every published slot.
//!
//! ## Counters
//!
//! [`PoolStats`] counters are always on: per-worker relaxed atomics
//! bumped on the paths they describe (a relaxed `fetch_add` on the miss
//! or spawn path, never inside the deque fast path). They feed the
//! conservation invariant *spawns = executions* checked by the unit
//! tests and surfaced through `RunReport`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{
    AtomicU64, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release},
};

/// One recorded pool event. Timestamps are nanoseconds since pool start
/// (the real substrate's clock anchor), matching `Substrate::now`.
#[derive(Debug, Clone, Copy)]
pub enum TraceEvent {
    /// A completed task execution on this worker (recorded by the layer
    /// above through `Substrate::trace_task`).
    Span {
        /// Task class name.
        name: &'static str,
        /// Simulated node the task belongs to.
        node: u32,
        /// Span start, ns since pool start.
        start_ns: u64,
        /// Span end, ns since pool start.
        end_ns: u64,
    },
    /// A successful steal: this worker took a job from `victim`'s deque.
    /// `id` is globally unique so the victim/thief endpoints of the flow
    /// arrow pair up at export time.
    Steal {
        /// Flow-arrow id, unique across the pool.
        id: u64,
        /// Worker index the job was stolen from.
        victim: u32,
        /// Steal instant, ns since pool start.
        at_ns: u64,
    },
    /// This worker committed to parking (found no work).
    Park {
        /// Park instant, ns since pool start.
        at_ns: u64,
    },
    /// This worker woke from a park.
    Unpark {
        /// Wake instant, ns since pool start.
        at_ns: u64,
    },
    /// Own-deque depth after a local push or pop.
    DequeDepth {
        /// Sample instant, ns since pool start.
        at_ns: u64,
        /// Deque length after the operation.
        depth: u32,
    },
    /// Shared-injector depth after this worker pushed to or popped from
    /// it.
    InjectorDepth {
        /// Sample instant, ns since pool start.
        at_ns: u64,
        /// Injector length after the operation.
        depth: u32,
    },
}

/// Events each worker's trace buffer can hold before dropping.
pub(crate) const TRACE_CAP: usize = 1 << 16;

/// A single-writer, fixed-capacity event buffer (see module docs).
pub(crate) struct TraceBuf {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    len: AtomicUsize,
    dropped: AtomicU64,
}

// The owning worker is the only writer; concurrent readers only touch
// slots below the published length (release/acquire on `len`).
unsafe impl Sync for TraceBuf {}

impl TraceBuf {
    pub(crate) fn new(cap: usize) -> TraceBuf {
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        TraceBuf {
            slots,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Owner-only push. Full buffers count the event as dropped.
    pub(crate) fn push(&self, ev: TraceEvent) {
        let len = self.len.load(Relaxed);
        if len >= self.slots.len() {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        unsafe { (*self.slots[len].get()).write(ev) };
        self.len.store(len + 1, Release);
    }

    /// Snapshot of every published event (call at quiescence).
    pub(crate) fn drain(&self) -> Vec<TraceEvent> {
        let len = self.len.load(Acquire);
        (0..len)
            .map(|i| unsafe { (*self.slots[i].get()).assume_init() })
            .collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

/// Always-on per-worker scheduling counters (relaxed atomics inside the
/// pool; this is the snapshot form).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker ran to completion.
    pub executed: u64,
    /// Jobs this worker pushed onto its own deque (`Substrate::defer`).
    pub deque_pushes: u64,
    /// Deferred jobs that overflowed the bounded deque to the injector.
    pub overflow_pushes: u64,
    /// Successful steals by this worker (as the thief).
    pub steals: u64,
    /// Steal probes that found the victim empty or contended.
    pub failed_probes: u64,
    /// Times this worker parked after a fruitless scan.
    pub parks: u64,
}

/// Snapshot of pool scheduling internals ([`crate::Pool::stats`]).
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// One entry per worker, index = worker index.
    pub per_worker: Vec<WorkerStats>,
    /// Jobs spawned from outside the pool (injector pushes via
    /// `Pool::spawn` / `PoolHandle::spawn`).
    pub injector_pushes: u64,
    /// Trace events lost to full buffers (0 when untraced).
    pub trace_dropped: u64,
}

impl PoolStats {
    /// Total jobs that entered the pool: external injector pushes plus
    /// every worker-side defer (local or overflowed).
    pub fn spawns(&self) -> u64 {
        self.injector_pushes
            + self
                .per_worker
                .iter()
                .map(|w| w.deque_pushes + w.overflow_pushes)
                .sum::<u64>()
    }

    /// Total jobs run to completion.
    pub fn executions(&self) -> u64 {
        self.per_worker.iter().map(|w| w.executed).sum()
    }

    /// Total successful steals.
    pub fn steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Total failed steal probes.
    pub fn failed_probes(&self) -> u64 {
        self.per_worker.iter().map(|w| w.failed_probes).sum()
    }

    /// Total parks.
    pub fn parks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.parks).sum()
    }
}

/// The atomic originals the snapshot above is read from.
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    pub(crate) executed: AtomicU64,
    pub(crate) deque_pushes: AtomicU64,
    pub(crate) overflow_pushes: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) failed_probes: AtomicU64,
    pub(crate) parks: AtomicU64,
}

impl WorkerCounters {
    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Relaxed),
            deque_pushes: self.deque_pushes.load(Relaxed),
            overflow_pushes: self.overflow_pushes.load(Relaxed),
            steals: self.steals.load(Relaxed),
            failed_probes: self.failed_probes.load(Relaxed),
            parks: self.parks.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buf_drops_past_capacity_and_counts() {
        let b = TraceBuf::new(4);
        for i in 0..6 {
            b.push(TraceEvent::Park { at_ns: i });
        }
        let evs = b.drain();
        assert_eq!(evs.len(), 4);
        assert!(matches!(evs[3], TraceEvent::Park { at_ns: 3 }));
        assert_eq!(b.dropped(), 2);
    }

    #[test]
    fn pool_stats_totals_sum_workers() {
        let s = PoolStats {
            per_worker: vec![
                WorkerStats {
                    executed: 3,
                    deque_pushes: 2,
                    overflow_pushes: 1,
                    steals: 1,
                    failed_probes: 5,
                    parks: 2,
                },
                WorkerStats {
                    executed: 4,
                    deque_pushes: 0,
                    overflow_pushes: 0,
                    steals: 2,
                    failed_probes: 0,
                    parks: 1,
                },
            ],
            injector_pushes: 4,
            trace_dropped: 0,
        };
        assert_eq!(s.spawns(), 7);
        assert_eq!(s.executions(), 7);
        assert_eq!(s.steals(), 3);
        assert_eq!(s.failed_probes(), 5);
        assert_eq!(s.parks(), 3);
    }
}
