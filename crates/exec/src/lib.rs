//! # amt-exec
//!
//! The **real execution substrate**: a work-stealing OS-thread pool
//! implementing the [`Substrate`] seam from `amt-simnet`, so the same
//! scheduler/graph/comm stack that runs on the deterministic
//! discrete-event simulator also runs on real hardware threads
//! (`amt_core::Cluster::execute_real`).
//!
//! * [`deque`] — a bounded lock-free Chase–Lev-style deque per worker:
//!   LIFO local push/pop, FIFO stealing, overflow to a shared injector.
//! * [`Pool`] — the pool itself: randomized steal-victim probing seeded by
//!   `DetRng` (reproducible probe sequences per run seed), an epoch-based
//!   parker/wake protocol for idle workers, and quiescence detection
//!   ([`Pool::run_until_idle`]) via a pending-job counter.
//! * Observability — always-on per-worker scheduling counters
//!   ([`PoolStats`]: spawns, executions, steals, failed probes, parks)
//!   and, on a traced pool ([`Pool::new_traced`]), per-worker lock-free
//!   trace buffers recording task spans, steal flow arrows, park/unpark
//!   instants, and queue-depth samples ([`TraceEvent`]), drained at
//!   quiescence by [`Pool::drain_trace`].
//!
//! Jobs are [`SubstrateJob`] closures taking `&mut dyn Substrate`, so
//! code scheduled here is written once and also runs on the virtual
//! substrate. With `threads == 1` execution order is fully deterministic;
//! at any thread count a pure-kernel dataflow graph produces bitwise
//! identical payloads because the graph fixes all data dependencies.

#![deny(missing_docs)]

pub mod deque;
mod obs;
mod pool;

pub use amt_simnet::{Substrate, SubstrateJob, SubstrateKind};
pub use deque::{deque, Steal, Stealer, Worker};
pub use obs::{PoolStats, TraceEvent, WorkerStats};
pub use pool::{Pool, PoolHandle, WorkerCtx};

#[cfg(test)]
mod tests;
