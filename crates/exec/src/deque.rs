//! Bounded lock-free work-stealing deque (Chase–Lev style).
//!
//! One **owner** pushes and pops at the bottom (LIFO — freshly released
//! work runs while its data is hot); any number of **stealers** take from
//! the top (FIFO — thieves get the oldest, usually largest, work). The
//! ring is bounded: a full `push` hands the item back so the caller can
//! overflow into a shared injector instead of blocking.
//!
//! ## Memory-safety argument
//!
//! Items are heap-boxed; slots store raw pointers. A stealer *reads* the
//! slot pointer before publishing its claim with a `top` compare-exchange,
//! which is sound for the classic Chase–Lev reasons:
//!
//! * A pointer read is never dereferenced unless the CAS **wins**; the
//!   winning CAS transfers unique ownership of exactly that pointer.
//! * A slot at index `t` can only be *overwritten* by a push at some
//!   bottom `b'` with `b' ≡ t (mod cap)`, which the bounded-capacity check
//!   (`b - top < cap`) only admits after `top` has already advanced past
//!   `t` — and any stale CAS on the old `t` then fails, discarding the
//!   stale pointer unread.
//! * The owner's `pop` of the last element races the stealers on the same
//!   `top` CAS; whoever wins owns the item, the loser backs off.
//!
//! All atomics use `SeqCst`: this deque holds scheduler jobs whose cost
//! dwarfs fence overhead, and the strongest ordering keeps the proof
//! obligations (and the TSan run in `verify.sh`) simple.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering::SeqCst};
use std::sync::Arc;

struct Ring<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// Next slot the owner pushes into. Only the owner stores to it.
    bottom: AtomicIsize,
    /// Next slot stealers (or the owner's last-element pop) claim from.
    top: AtomicIsize,
}

impl<T> Ring<T> {
    fn slot(&self, i: isize) -> &AtomicPtr<T> {
        &self.slots[(i as usize) & (self.slots.len() - 1)]
    }
}

/// The owner-side handle: `push` / `pop` at the bottom. `Send` (the owner
/// may be handed to its worker thread at startup) but deliberately not
/// `Sync`/`Clone` — there is exactly one owner.
pub struct Worker<T> {
    ring: Arc<Ring<T>>,
    /// `Cell` marker: keep `Send`, drop `Sync`.
    _single_owner: PhantomData<std::cell::Cell<()>>,
}

/// A thief-side handle: `steal` from the top. Clone freely across threads.
pub struct Stealer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            ring: self.ring.clone(),
        }
    }
}

/// Create a deque with capacity `cap` (rounded up to a power of two).
pub fn deque<T>(cap: usize) -> (Worker<T>, Stealer<T>) {
    let cap = cap.next_power_of_two().max(2);
    let slots = (0..cap)
        .map(|_| AtomicPtr::new(std::ptr::null_mut()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
    });
    (
        Worker {
            ring: ring.clone(),
            _single_owner: PhantomData,
        },
        Stealer { ring },
    )
}

impl<T> Worker<T> {
    /// Push at the bottom. Returns the item back when the ring is full
    /// (the caller overflows into the shared injector).
    pub fn push(&self, item: Box<T>) -> Result<(), Box<T>> {
        let r = &*self.ring;
        let b = r.bottom.load(SeqCst);
        let t = r.top.load(SeqCst);
        if b - t >= r.slots.len() as isize {
            return Err(item);
        }
        r.slot(b).store(Box::into_raw(item), SeqCst);
        r.bottom.store(b + 1, SeqCst);
        Ok(())
    }

    /// Pop at the bottom (LIFO). `None` when empty (possibly because
    /// stealers drained it).
    pub fn pop(&self) -> Option<Box<T>> {
        let r = &*self.ring;
        let b = r.bottom.load(SeqCst) - 1;
        r.bottom.store(b, SeqCst);
        let t = r.top.load(SeqCst);
        if t > b {
            // Empty: undo the reservation.
            r.bottom.store(b + 1, SeqCst);
            return None;
        }
        let ptr = r.slot(b).load(SeqCst);
        if t == b {
            // Last element: race the stealers on `top`.
            let won = r.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            r.bottom.store(b + 1, SeqCst);
            return won.then(|| unsafe { Box::from_raw(ptr) });
        }
        Some(unsafe { Box::from_raw(ptr) })
    }

    /// Number of items currently in the deque (racy, advisory).
    pub fn len(&self) -> usize {
        let r = &*self.ring;
        (r.bottom.load(SeqCst) - r.top.load(SeqCst)).max(0) as usize
    }

    /// Whether the deque is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// Got the oldest item.
    Taken(T),
    /// Deque observed empty.
    Empty,
    /// Lost a race (another thief or the owner's last-element pop); worth
    /// retrying on a different victim.
    Retry,
}

impl<T> Stealer<T> {
    /// Try to take the oldest item (FIFO end).
    pub fn steal(&self) -> Steal<Box<T>> {
        let r = &*self.ring;
        let t = r.top.load(SeqCst);
        let b = r.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Read before claiming; never dereferenced unless the CAS wins
        // (see module docs).
        let ptr = r.slot(t).load(SeqCst);
        if r.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            Steal::Taken(unsafe { Box::from_raw(ptr) })
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque is currently empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        let r = &*self.ring;
        r.top.load(SeqCst) >= r.bottom.load(SeqCst)
    }
}

impl<T> Drop for Worker<T> {
    fn drop(&mut self) {
        // The owner drains what is left; stealers only hold the ring
        // alive, they never free slots on drop.
        while self.pop().is_some() {}
    }
}

// The ring shares raw pointers to `T` across threads; ownership transfer
// is mediated by the top/bottom protocol above.
unsafe impl<T: Send> Send for Worker<T> {}
unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}
