//! The work-stealing thread pool: the **real substrate**.
//!
//! `threads` OS workers each own one [`deque`](crate::deque) (LIFO local
//! push/pop); spawns from outside the pool land in a shared FIFO injector.
//! An idle worker tries, in order: its own deque, the injector, then
//! stealing from victims chosen by a [`DetRng`] seeded from
//! `seed ^ worker-index` — so the victim *sequence* each worker probes is
//! reproducible per run seed even though which probe wins depends on
//! wall-clock interleaving. With `threads == 1` there is no interleaving
//! at all and execution order is fully deterministic.
//!
//! ## Parker / wake protocol
//!
//! Workers that find nothing park on a condvar. Lost wakeups are prevented
//! with an epoch: a worker snapshots the epoch *before* scanning for work;
//! every spawn bumps the epoch (under the same mutex) and wakes a sleeper;
//! a worker only commits to sleeping if the epoch is still its snapshot —
//! otherwise work may have arrived mid-scan and it rescans.
//!
//! ## Quiescence
//!
//! A `pending` counter is incremented at spawn and decremented after a job
//! finishes, so `pending == 0` means "no job queued anywhere and none
//! running" — jobs only enter through spawns, and a job's own spawns are
//! counted before it decrements itself. [`Pool::run_until_idle`] blocks on
//! exactly that condition.

use std::collections::VecDeque;
use std::sync::atomic::{
    AtomicU64, AtomicUsize,
    Ordering::{Relaxed, SeqCst},
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use amt_simnet::{DetRng, SimTime, Substrate, SubstrateJob, SubstrateKind};

use crate::deque::{self, Steal, Stealer, Worker};
use crate::obs::{PoolStats, TraceBuf, TraceEvent, WorkerCounters, TRACE_CAP};

struct PoolSync {
    /// Bumped on every spawn; parking workers re-check it (see module
    /// docs).
    epoch: u64,
    /// Workers currently parked on `wake`.
    idle: usize,
    shutdown: bool,
}

struct PoolShared {
    stealers: Vec<Stealer<SubstrateJob>>,
    injector: Mutex<VecDeque<SubstrateJob>>,
    sync: Mutex<PoolSync>,
    wake: Condvar,
    /// Signalled (under `sync`) when `pending` reaches zero.
    quiet: Condvar,
    pending: AtomicUsize,
    start: Instant,
    seed: u64,
    /// Always-on per-worker scheduling counters (relaxed atomics).
    counters: Vec<WorkerCounters>,
    /// Jobs injected from outside the pool.
    injector_pushes: AtomicU64,
    /// Globally-unique steal flow-arrow ids.
    steal_seq: AtomicU64,
    /// Per-worker trace buffers; `None` on an untraced pool, making
    /// every record site a single branch (zero-cost when disabled).
    trace: Option<Vec<TraceBuf>>,
}

impl PoolShared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The trace buffer of worker `index`, if tracing is on.
    fn buf(&self, index: usize) -> Option<&TraceBuf> {
        self.trace.as_ref().map(|bufs| &bufs[index])
    }

    fn notify_spawn(&self) {
        let mut s = self.sync.lock().expect("pool sync");
        s.epoch += 1;
        if s.idle > 0 {
            self.wake.notify_one();
        }
    }

    fn spawn_injected(&self, job: SubstrateJob) {
        self.pending.fetch_add(1, SeqCst);
        self.injector_pushes.fetch_add(1, Relaxed);
        self.injector.lock().expect("pool injector").push_back(job);
        self.notify_spawn();
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, SeqCst) == 1 {
            let _s = self.sync.lock().expect("pool sync");
            self.quiet.notify_all();
        }
    }
}

/// Capacity of each worker's bounded deque; overflow spills to the
/// injector.
const DEQUE_CAP: usize = 8192;

/// A running work-stealing pool. Dropping it shuts the workers down
/// (outstanding jobs are still completed first if you call
/// [`Pool::run_until_idle`] before dropping).
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// A cloneable spawn handle usable from outside the pool.
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<PoolShared>,
}

impl PoolHandle {
    /// Enqueue `job` on the shared injector.
    pub fn spawn(&self, job: SubstrateJob) {
        self.shared.spawn_injected(job);
    }
}

/// The per-worker execution context jobs run against: the real
/// implementation of [`Substrate`].
pub struct WorkerCtx<'a> {
    shared: &'a Arc<PoolShared>,
    local: &'a Worker<SubstrateJob>,
    index: usize,
}

impl WorkerCtx<'_> {
    /// How many workers the pool runs.
    pub fn pool_threads(&self) -> usize {
        self.shared.stealers.len()
    }
}

impl Substrate for WorkerCtx<'_> {
    fn kind(&self) -> SubstrateKind {
        SubstrateKind::Real
    }

    fn now(&self) -> SimTime {
        SimTime::from_ns(self.shared.start.elapsed().as_nanos() as u64)
    }

    fn worker(&self) -> Option<usize> {
        Some(self.index)
    }

    fn defer(&mut self, job: SubstrateJob) {
        self.shared.pending.fetch_add(1, SeqCst);
        let c = &self.shared.counters[self.index];
        // LIFO local push; a full deque overflows to the injector.
        if let Err(job) = self.local.push(Box::new(job)) {
            c.overflow_pushes.fetch_add(1, Relaxed);
            let depth = {
                let mut inj = self.shared.injector.lock().expect("pool injector");
                inj.push_back(*job);
                inj.len()
            };
            if let Some(buf) = self.shared.buf(self.index) {
                buf.push(TraceEvent::InjectorDepth {
                    at_ns: self.shared.now_ns(),
                    depth: depth as u32,
                });
            }
        } else {
            c.deque_pushes.fetch_add(1, Relaxed);
            if let Some(buf) = self.shared.buf(self.index) {
                buf.push(TraceEvent::DequeDepth {
                    at_ns: self.shared.now_ns(),
                    depth: self.local.len() as u32,
                });
            }
        }
        self.shared.notify_spawn();
    }

    fn trace_task(&mut self, name: &'static str, node: usize, start: SimTime, end: SimTime) {
        if let Some(buf) = self.shared.buf(self.index) {
            buf.push(TraceEvent::Span {
                name,
                node: node as u32,
                start_ns: start.as_ns(),
                end_ns: end.as_ns(),
            });
        }
    }
}

impl Pool {
    /// Start `threads` workers (`0` = one per available core). `seed`
    /// derives each worker's steal-victim sequence.
    pub fn new(threads: usize, seed: u64) -> Pool {
        Pool::with_trace(threads, seed, false)
    }

    /// [`Pool::new`] with per-worker trace buffers allocated, so the run
    /// records task spans, steal arrows, park instants, and queue-depth
    /// samples (drained with [`Pool::drain_trace`]).
    pub fn new_traced(threads: usize, seed: u64) -> Pool {
        Pool::with_trace(threads, seed, true)
    }

    fn with_trace(threads: usize, seed: u64, traced: bool) -> Pool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let mut workers = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = deque::deque::<SubstrateJob>(DEQUE_CAP);
            workers.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(PoolShared {
            stealers,
            injector: Mutex::new(VecDeque::new()),
            sync: Mutex::new(PoolSync {
                epoch: 0,
                idle: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            quiet: Condvar::new(),
            pending: AtomicUsize::new(0),
            start: Instant::now(),
            seed,
            counters: (0..threads).map(|_| WorkerCounters::default()).collect(),
            injector_pushes: AtomicU64::new(0),
            steal_seq: AtomicU64::new(0),
            trace: traced.then(|| (0..threads).map(|_| TraceBuf::new(TRACE_CAP)).collect()),
        });
        let threads = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("amt-exec-{index}"))
                    .spawn(move || worker_loop(index, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.stealers.len()
    }

    /// A cloneable external spawn handle.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: self.shared.clone(),
        }
    }

    /// Enqueue `job` from outside the pool.
    pub fn spawn(&self, job: SubstrateJob) {
        self.shared.spawn_injected(job);
    }

    /// Wall-clock time since the pool started (the real substrate's
    /// [`Substrate::now`] anchor).
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.shared.start.elapsed().as_nanos() as u64)
    }

    /// Block until every spawned job (including jobs they spawned) has
    /// finished.
    pub fn run_until_idle(&self) {
        let mut s = self.shared.sync.lock().expect("pool sync");
        while self.shared.pending.load(SeqCst) > 0 {
            s = self.shared.quiet.wait(s).expect("pool quiet wait");
        }
    }

    /// Snapshot the pool's scheduling counters. Stable once the pool is
    /// quiescent ([`Pool::run_until_idle`]); advisory while jobs run.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            per_worker: self.shared.counters.iter().map(|c| c.snapshot()).collect(),
            injector_pushes: self.shared.injector_pushes.load(Relaxed),
            trace_dropped: self
                .shared
                .trace
                .as_ref()
                .map(|bufs| bufs.iter().map(|b| b.dropped()).sum())
                .unwrap_or(0),
        }
    }

    /// Drain the per-worker trace buffers: one event vector per worker,
    /// in worker-index order. `None` on an untraced pool. Call at
    /// quiescence — events recorded while the snapshot runs may be
    /// missed (never torn).
    pub fn drain_trace(&self) -> Option<Vec<Vec<TraceEvent>>> {
        self.shared
            .trace
            .as_ref()
            .map(|bufs| bufs.iter().map(|b| b.drain()).collect())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.sync.lock().expect("pool sync");
            s.shutdown = true;
            self.shared.wake.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(index: usize, local: Worker<SubstrateJob>, shared: Arc<PoolShared>) {
    let mut rng = DetRng::seed_from_u64(shared.seed ^ (index as u64).wrapping_mul(0x9e3779b9));
    let n = shared.stealers.len();
    loop {
        // Snapshot the epoch before scanning so a spawn racing the scan
        // forces a rescan instead of a lost wakeup.
        let epoch = shared.sync.lock().expect("pool sync").epoch;
        if let Some(job) = find_job(index, &local, &shared, &mut rng, n) {
            let mut ctx = WorkerCtx {
                shared: &shared,
                local: &local,
                index,
            };
            job(&mut ctx);
            shared.counters[index].executed.fetch_add(1, Relaxed);
            shared.finish_one();
            continue;
        }
        let mut s = shared.sync.lock().expect("pool sync");
        if s.shutdown {
            return;
        }
        if s.epoch != epoch {
            continue; // work arrived mid-scan; rescan
        }
        s.idle += 1;
        shared.counters[index].parks.fetch_add(1, Relaxed);
        if let Some(buf) = shared.buf(index) {
            buf.push(TraceEvent::Park {
                at_ns: shared.now_ns(),
            });
        }
        // Park until any spawn bumps the epoch (or shutdown).
        while s.epoch == epoch && !s.shutdown {
            s = shared.wake.wait(s).expect("pool wake wait");
        }
        s.idle -= 1;
        if let Some(buf) = shared.buf(index) {
            buf.push(TraceEvent::Unpark {
                at_ns: shared.now_ns(),
            });
        }
    }
}

fn find_job(
    index: usize,
    local: &Worker<SubstrateJob>,
    shared: &PoolShared,
    rng: &mut DetRng,
    n: usize,
) -> Option<SubstrateJob> {
    if let Some(job) = local.pop() {
        if let Some(buf) = shared.buf(index) {
            buf.push(TraceEvent::DequeDepth {
                at_ns: shared.now_ns(),
                depth: local.len() as u32,
            });
        }
        return Some(*job);
    }
    {
        let mut inj = shared.injector.lock().expect("pool injector");
        if let Some(job) = inj.pop_front() {
            let depth = inj.len();
            drop(inj);
            if let Some(buf) = shared.buf(index) {
                buf.push(TraceEvent::InjectorDepth {
                    at_ns: shared.now_ns(),
                    depth: depth as u32,
                });
            }
            return Some(job);
        }
    }
    if n > 1 {
        // Randomized victim probing: up to 4 sweeps over the other
        // workers, DetRng-ordered; `Retry` results keep a sweep alive.
        for _ in 0..4 * (n - 1) {
            let victim = {
                let v = rng.gen_usize(0..n - 1);
                if v >= index {
                    v + 1
                } else {
                    v
                }
            };
            match shared.stealers[victim].steal() {
                Steal::Taken(job) => {
                    shared.counters[index].steals.fetch_add(1, Relaxed);
                    if let Some(buf) = shared.buf(index) {
                        buf.push(TraceEvent::Steal {
                            id: shared.steal_seq.fetch_add(1, Relaxed),
                            victim: victim as u32,
                            at_ns: shared.now_ns(),
                        });
                    }
                    return Some(*job);
                }
                Steal::Empty | Steal::Retry => {
                    shared.counters[index].failed_probes.fetch_add(1, Relaxed);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_spawned_jobs_to_quiescence() {
        let pool = Pool::new(2, 7);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = hits.clone();
            pool.spawn(Box::new(move |sub| {
                assert_eq!(sub.kind(), SubstrateKind::Real);
                assert!(sub.worker().is_some());
                // Fan out one nested job from inside the pool.
                let hits2 = hits.clone();
                sub.defer(Box::new(move |_| {
                    hits2.fetch_add(1, SeqCst);
                }));
                hits.fetch_add(1, SeqCst);
            }));
        }
        pool.run_until_idle();
        assert_eq!(hits.load(SeqCst), 200);
    }

    #[test]
    fn single_thread_pool_is_deterministic() {
        let order = |seed| {
            let pool = Pool::new(1, seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..50u64 {
                let log = log.clone();
                pool.spawn(Box::new(move |sub| {
                    log.lock().unwrap().push(i);
                    if i % 10 == 0 {
                        let log = log.clone();
                        sub.defer(Box::new(move |_| {
                            log.lock().unwrap().push(1000 + i);
                        }));
                    }
                }));
            }
            pool.run_until_idle();
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let a = order(1);
        assert_eq!(a, order(2), "thread count 1 ignores the steal seed");
        assert_eq!(a.len(), 55);
    }

    #[test]
    fn run_until_idle_with_no_work_returns() {
        let pool = Pool::new(3, 0);
        pool.run_until_idle();
        assert_eq!(pool.threads(), 3);
        assert!(pool.now() >= SimTime::ZERO);
    }

    #[test]
    fn pool_stats_conserve_spawns_and_executions() {
        let pool = Pool::new(3, 11);
        for _ in 0..200 {
            pool.spawn(Box::new(move |sub| {
                // Two generations of nested defers exercise the local
                // deque path alongside the injector path.
                sub.defer(Box::new(move |sub| {
                    sub.defer(Box::new(|_| {}));
                }));
            }));
        }
        pool.run_until_idle();
        let s = pool.stats();
        assert_eq!(s.injector_pushes, 200);
        assert_eq!(s.spawns(), 600, "200 roots + 200 + 200 nested");
        assert_eq!(s.executions(), s.spawns(), "every spawned job ran");
        assert_eq!(s.trace_dropped, 0, "untraced pool drops nothing");
        assert_eq!(s.per_worker.len(), 3);
        // With 3 workers racing over one injector, the scan path runs;
        // parks are guaranteed at least at the end of the run for the
        // workers that finish early and find nothing.
        assert!(s.parks() > 0);
    }

    #[test]
    fn traced_pool_records_spans_and_drains_at_quiescence() {
        let pool = Pool::new_traced(2, 5);
        for i in 0..10u64 {
            pool.spawn(Box::new(move |sub| {
                let t0 = sub.now();
                sub.trace_task("unit", i as usize % 2, t0, sub.now());
            }));
        }
        pool.run_until_idle();
        let per_worker = pool.drain_trace().expect("traced pool");
        assert_eq!(per_worker.len(), 2);
        let spans: Vec<_> = per_worker
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Span { .. }))
            .collect();
        assert_eq!(spans.len(), 10);
        for ev in per_worker.iter().flatten() {
            if let TraceEvent::Span {
                name,
                start_ns,
                end_ns,
                ..
            } = ev
            {
                assert_eq!(*name, "unit");
                assert!(end_ns >= start_ns);
            }
        }
        assert_eq!(pool.stats().trace_dropped, 0);
    }

    #[test]
    fn untraced_pool_has_no_trace() {
        let pool = Pool::new(2, 5);
        pool.spawn(Box::new(|sub| {
            let t = sub.now();
            sub.trace_task("x", 0, t, t); // must be a cheap no-op
        }));
        pool.run_until_idle();
        assert!(pool.drain_trace().is_none());
    }

    #[test]
    fn external_handle_spawns_after_idle_phase() {
        let pool = Pool::new(2, 3);
        let handle = pool.handle();
        pool.run_until_idle();
        // Workers are parked now; the handle must wake them.
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let hits = hits.clone();
            handle.spawn(Box::new(move |_| {
                hits.fetch_add(1, SeqCst);
            }));
        }
        pool.run_until_idle();
        assert_eq!(hits.load(SeqCst), 8);
    }
}
