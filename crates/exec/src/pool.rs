//! The work-stealing thread pool: the **real substrate**.
//!
//! `threads` OS workers each own one [`deque`](crate::deque) (LIFO local
//! push/pop); spawns from outside the pool land in a shared FIFO injector.
//! An idle worker tries, in order: its own deque, the injector, then
//! stealing from victims chosen by a [`DetRng`] seeded from
//! `seed ^ worker-index` — so the victim *sequence* each worker probes is
//! reproducible per run seed even though which probe wins depends on
//! wall-clock interleaving. With `threads == 1` there is no interleaving
//! at all and execution order is fully deterministic.
//!
//! ## Parker / wake protocol
//!
//! Workers that find nothing park on a condvar. Lost wakeups are prevented
//! with an epoch: a worker snapshots the epoch *before* scanning for work;
//! every spawn bumps the epoch (under the same mutex) and wakes a sleeper;
//! a worker only commits to sleeping if the epoch is still its snapshot —
//! otherwise work may have arrived mid-scan and it rescans.
//!
//! ## Quiescence
//!
//! A `pending` counter is incremented at spawn and decremented after a job
//! finishes, so `pending == 0` means "no job queued anywhere and none
//! running" — jobs only enter through spawns, and a job's own spawns are
//! counted before it decrements itself. [`Pool::run_until_idle`] blocks on
//! exactly that condition.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use amt_simnet::{DetRng, SimTime, Substrate, SubstrateJob, SubstrateKind};

use crate::deque::{self, Steal, Stealer, Worker};

struct PoolSync {
    /// Bumped on every spawn; parking workers re-check it (see module
    /// docs).
    epoch: u64,
    /// Workers currently parked on `wake`.
    idle: usize,
    shutdown: bool,
}

struct PoolShared {
    stealers: Vec<Stealer<SubstrateJob>>,
    injector: Mutex<VecDeque<SubstrateJob>>,
    sync: Mutex<PoolSync>,
    wake: Condvar,
    /// Signalled (under `sync`) when `pending` reaches zero.
    quiet: Condvar,
    pending: AtomicUsize,
    start: Instant,
    seed: u64,
}

impl PoolShared {
    fn notify_spawn(&self) {
        let mut s = self.sync.lock().expect("pool sync");
        s.epoch += 1;
        if s.idle > 0 {
            self.wake.notify_one();
        }
    }

    fn spawn_injected(&self, job: SubstrateJob) {
        self.pending.fetch_add(1, SeqCst);
        self.injector.lock().expect("pool injector").push_back(job);
        self.notify_spawn();
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, SeqCst) == 1 {
            let _s = self.sync.lock().expect("pool sync");
            self.quiet.notify_all();
        }
    }
}

/// Capacity of each worker's bounded deque; overflow spills to the
/// injector.
const DEQUE_CAP: usize = 8192;

/// A running work-stealing pool. Dropping it shuts the workers down
/// (outstanding jobs are still completed first if you call
/// [`Pool::run_until_idle`] before dropping).
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// A cloneable spawn handle usable from outside the pool.
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<PoolShared>,
}

impl PoolHandle {
    /// Enqueue `job` on the shared injector.
    pub fn spawn(&self, job: SubstrateJob) {
        self.shared.spawn_injected(job);
    }
}

/// The per-worker execution context jobs run against: the real
/// implementation of [`Substrate`].
pub struct WorkerCtx<'a> {
    shared: &'a Arc<PoolShared>,
    local: &'a Worker<SubstrateJob>,
    index: usize,
}

impl WorkerCtx<'_> {
    /// How many workers the pool runs.
    pub fn pool_threads(&self) -> usize {
        self.shared.stealers.len()
    }
}

impl Substrate for WorkerCtx<'_> {
    fn kind(&self) -> SubstrateKind {
        SubstrateKind::Real
    }

    fn now(&self) -> SimTime {
        SimTime::from_ns(self.shared.start.elapsed().as_nanos() as u64)
    }

    fn worker(&self) -> Option<usize> {
        Some(self.index)
    }

    fn defer(&mut self, job: SubstrateJob) {
        self.shared.pending.fetch_add(1, SeqCst);
        // LIFO local push; a full deque overflows to the injector.
        if let Err(job) = self.local.push(Box::new(job)) {
            self.shared
                .injector
                .lock()
                .expect("pool injector")
                .push_back(*job);
        }
        self.shared.notify_spawn();
    }
}

impl Pool {
    /// Start `threads` workers (`0` = one per available core). `seed`
    /// derives each worker's steal-victim sequence.
    pub fn new(threads: usize, seed: u64) -> Pool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let mut workers = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = deque::deque::<SubstrateJob>(DEQUE_CAP);
            workers.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(PoolShared {
            stealers,
            injector: Mutex::new(VecDeque::new()),
            sync: Mutex::new(PoolSync {
                epoch: 0,
                idle: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            quiet: Condvar::new(),
            pending: AtomicUsize::new(0),
            start: Instant::now(),
            seed,
        });
        let threads = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("amt-exec-{index}"))
                    .spawn(move || worker_loop(index, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.stealers.len()
    }

    /// A cloneable external spawn handle.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: self.shared.clone(),
        }
    }

    /// Enqueue `job` from outside the pool.
    pub fn spawn(&self, job: SubstrateJob) {
        self.shared.spawn_injected(job);
    }

    /// Wall-clock time since the pool started (the real substrate's
    /// [`Substrate::now`] anchor).
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.shared.start.elapsed().as_nanos() as u64)
    }

    /// Block until every spawned job (including jobs they spawned) has
    /// finished.
    pub fn run_until_idle(&self) {
        let mut s = self.shared.sync.lock().expect("pool sync");
        while self.shared.pending.load(SeqCst) > 0 {
            s = self.shared.quiet.wait(s).expect("pool quiet wait");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.sync.lock().expect("pool sync");
            s.shutdown = true;
            self.shared.wake.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(index: usize, local: Worker<SubstrateJob>, shared: Arc<PoolShared>) {
    let mut rng = DetRng::seed_from_u64(shared.seed ^ (index as u64).wrapping_mul(0x9e3779b9));
    let n = shared.stealers.len();
    loop {
        // Snapshot the epoch before scanning so a spawn racing the scan
        // forces a rescan instead of a lost wakeup.
        let epoch = shared.sync.lock().expect("pool sync").epoch;
        if let Some(job) = find_job(index, &local, &shared, &mut rng, n) {
            let mut ctx = WorkerCtx {
                shared: &shared,
                local: &local,
                index,
            };
            job(&mut ctx);
            shared.finish_one();
            continue;
        }
        let mut s = shared.sync.lock().expect("pool sync");
        if s.shutdown {
            return;
        }
        if s.epoch != epoch {
            continue; // work arrived mid-scan; rescan
        }
        s.idle += 1;
        // Park until any spawn bumps the epoch (or shutdown).
        while s.epoch == epoch && !s.shutdown {
            s = shared.wake.wait(s).expect("pool wake wait");
        }
        s.idle -= 1;
    }
}

fn find_job(
    index: usize,
    local: &Worker<SubstrateJob>,
    shared: &PoolShared,
    rng: &mut DetRng,
    n: usize,
) -> Option<SubstrateJob> {
    if let Some(job) = local.pop() {
        return Some(*job);
    }
    if let Some(job) = shared.injector.lock().expect("pool injector").pop_front() {
        return Some(job);
    }
    if n > 1 {
        // Randomized victim probing: up to 4 sweeps over the other
        // workers, DetRng-ordered; `Retry` results keep a sweep alive.
        for _ in 0..4 * (n - 1) {
            let victim = {
                let v = rng.gen_usize(0..n - 1);
                if v >= index {
                    v + 1
                } else {
                    v
                }
            };
            match shared.stealers[victim].steal() {
                Steal::Taken(job) => return Some(*job),
                Steal::Empty | Steal::Retry => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_spawned_jobs_to_quiescence() {
        let pool = Pool::new(2, 7);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = hits.clone();
            pool.spawn(Box::new(move |sub| {
                assert_eq!(sub.kind(), SubstrateKind::Real);
                assert!(sub.worker().is_some());
                // Fan out one nested job from inside the pool.
                let hits2 = hits.clone();
                sub.defer(Box::new(move |_| {
                    hits2.fetch_add(1, SeqCst);
                }));
                hits.fetch_add(1, SeqCst);
            }));
        }
        pool.run_until_idle();
        assert_eq!(hits.load(SeqCst), 200);
    }

    #[test]
    fn single_thread_pool_is_deterministic() {
        let order = |seed| {
            let pool = Pool::new(1, seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..50u64 {
                let log = log.clone();
                pool.spawn(Box::new(move |sub| {
                    log.lock().unwrap().push(i);
                    if i % 10 == 0 {
                        let log = log.clone();
                        sub.defer(Box::new(move |_| {
                            log.lock().unwrap().push(1000 + i);
                        }));
                    }
                }));
            }
            pool.run_until_idle();
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let a = order(1);
        assert_eq!(a, order(2), "thread count 1 ignores the steal seed");
        assert_eq!(a.len(), 55);
    }

    #[test]
    fn run_until_idle_with_no_work_returns() {
        let pool = Pool::new(3, 0);
        pool.run_until_idle();
        assert_eq!(pool.threads(), 3);
        assert!(pool.now() >= SimTime::ZERO);
    }

    #[test]
    fn external_handle_spawns_after_idle_phase() {
        let pool = Pool::new(2, 3);
        let handle = pool.handle();
        pool.run_until_idle();
        // Workers are parked now; the handle must wake them.
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let hits = hits.clone();
            handle.spawn(Box::new(move |_| {
                hits.fetch_add(1, SeqCst);
            }));
        }
        pool.run_until_idle();
        assert_eq!(hits.load(SeqCst), 8);
    }
}
