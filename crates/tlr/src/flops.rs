//! Flop counts for the TLR Cholesky kernels, driving the virtual-time cost
//! model. Formulas follow the HiCMA kernel papers; the paper's observation
//! that low-rank GEMMs are "far less compute-intense than traditional GEMM
//! kernels" (§6.4.1) shows up both in the counts and the efficiency factors.

/// Flop counts parameterized by tile size `ts` and the ranks involved.
#[derive(Debug, Clone, Copy)]
pub struct KernelFlops {
    pub ts: f64,
}

impl KernelFlops {
    pub fn new(tile_size: usize) -> Self {
        KernelFlops {
            ts: tile_size as f64,
        }
    }

    /// Dense Cholesky of the diagonal tile: ts³/3.
    pub fn potrf(&self) -> f64 {
        self.ts.powi(3) / 3.0
    }

    /// Triangular solve applied to the `V` factor (ts × k RHS): ts²·k.
    pub fn trsm(&self, k: usize) -> f64 {
        self.ts * self.ts * k as f64
    }

    /// Low-rank SYRK onto the dense diagonal:
    /// VᵀV (ts·k²) + U·(VᵀV) (ts·k²) + (U(VᵀV))·Uᵀ (ts²·k).
    pub fn syrk(&self, k: usize) -> f64 {
        let k = k as f64;
        2.0 * self.ts * k * k + self.ts * self.ts * k
    }

    /// Low-rank GEMM update with rounded recompression:
    /// the small product V_ikᵀV_jk and its application (2·ts·k_a·k_b), two
    /// stacked QRs (≈ 4·ts·(k_c + k)²), the small core SVD, and rebuilding
    /// the factors.
    pub fn gemm(&self, k_a: usize, k_b: usize, k_c: usize) -> f64 {
        let (ka, kb, kc) = (k_a as f64, k_b as f64, k_c as f64);
        let kk = kc + ka.min(kb);
        2.0 * self.ts * ka * kb
            + 4.0 * self.ts * kk * kk
            + 20.0 * kk.powi(3)
            + 2.0 * self.ts * kk * kc.max(1.0)
    }

    /// Dense GEMM for comparison (what a non-TLR factorization would pay).
    pub fn gemm_dense(&self) -> f64 {
        2.0 * self.ts.powi(3)
    }
}

/// Efficiency factors (fraction of peak FLOP rate) per kernel class.
/// Dense BLAS-3 runs at a healthy fraction of peak; the skinny low-rank
/// kernels (rank ~10 panels of thousands of rows, QR-based recompression)
/// are severely memory-bound — single-digit percent of peak, consistent
/// with HiCMA's measured per-task times (~3-4 ms low-rank GEMMs at
/// ts = 1200-2400) and with the paper's remark that low-rank GEMMs are
/// "far less compute-intense than traditional GEMM kernels" (§6.4.1).
pub mod efficiency {
    pub const POTRF: f64 = 0.55;
    pub const TRSM: f64 = 0.20;
    pub const SYRK: f64 = 0.10;
    pub const GEMM_LR: f64 = 0.03;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_rank_gemm_is_much_cheaper_than_dense() {
        let f = KernelFlops::new(2400);
        let lr = f.gemm(15, 15, 15);
        let dense = f.gemm_dense();
        assert!(
            lr < dense / 50.0,
            "LR GEMM ({lr:.2e}) should be ≫ cheaper than dense ({dense:.2e})"
        );
    }

    #[test]
    fn potrf_dominates_at_small_rank() {
        let f = KernelFlops::new(1200);
        assert!(f.potrf() > f.trsm(10));
        assert!(f.potrf() > f.syrk(10));
        assert!(f.potrf() > f.gemm(10, 10, 10));
    }

    #[test]
    fn flops_scale_with_rank() {
        let f = KernelFlops::new(1200);
        assert!(f.trsm(20) > f.trsm(10));
        assert!(f.syrk(20) > f.syrk(10));
        assert!(f.gemm(20, 20, 20) > f.gemm(10, 10, 10));
    }
}
