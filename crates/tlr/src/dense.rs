//! Dense tile Cholesky — the DPLASMA-style baseline HiCMA builds on
//! (the paper's HiCMA depends on DPLASMA [3]; TLR compression is motivated
//! by how much cheaper it is than this dense factorization).
//!
//! Classic right-looking tile algorithm, one dense tile per dataflow:
//!
//! ```text
//! POTRF(k)          : A[k,k] ← chol(A[k,k])
//! TRSM(i,k)   i>k   : A[i,k] ← A[i,k] · L[k,k]⁻ᵀ
//! SYRK(i,k)   i>k   : A[i,i] ← A[i,i] − A[i,k]·A[i,k]ᵀ
//! GEMM(i,j,k) i>j>k : A[i,j] ← A[i,j] − A[i,k]·A[j,k]ᵀ
//! ```

use std::collections::HashMap;

use amt_core::{
    Cluster, DataDist, DataKey, GraphBuilder, TaskDesc, TaskGraph, TileDist2d, VersionId,
};
use amt_linalg::{
    cholesky_residual, gemm, potrf, sqexp_covariance, syrk_lower, trsm_right_lower_t, Grid2d,
    Matrix, Trans,
};

/// Dense-kernel efficiency (large BLAS-3 tiles run near peak).
const DENSE_EFF: f64 = 0.85;

/// Builder for dense tile Cholesky task graphs.
pub struct DenseCholesky {
    pub n: usize,
    pub tile_size: usize,
    pub dist: TileDist2d,
    /// Final version per lower tile (i, j), i ≥ j.
    pub out: HashMap<(u64, u64), VersionId>,
    pub dense_a: Option<Matrix>,
    pub total_flops: f64,
    pub tasks: u64,
}

fn key(nt: u64, i: u64, j: u64) -> DataKey {
    i * nt + j
}

impl DenseCholesky {
    fn nt(&self) -> u64 {
        (self.n / self.tile_size) as u64
    }

    /// Build with real kernels and real covariance data (Numeric mode).
    pub fn build_numeric(n: usize, tile_size: usize, nodes: usize) -> (DenseCholesky, TaskGraph) {
        Self::build(n, tile_size, nodes, true)
    }

    /// Build with declared sizes only (CostOnly mode).
    pub fn build_cost_only(n: usize, tile_size: usize, nodes: usize) -> (DenseCholesky, TaskGraph) {
        Self::build(n, tile_size, nodes, false)
    }

    fn build(n: usize, ts: usize, nodes: usize, numeric: bool) -> (DenseCholesky, TaskGraph) {
        assert_eq!(n % ts, 0, "n must be a multiple of tile_size");
        let nt = (n / ts) as u64;
        let dist = TileDist2d::square_grid(nt, nt, nodes);
        let dense_a = if numeric {
            let grid = Grid2d::new(n);
            Some(sqexp_covariance(&grid, 0, 0, n, n, 0.1, 1e-2))
        } else {
            None
        };

        let mut g = GraphBuilder::new(nodes);
        let tile_bytes = ts * ts * 8;
        for i in 0..nt {
            for j in 0..=i {
                let owner = dist.owner(i * nt + j);
                let bytes = dense_a.as_ref().map(|a| {
                    a.submatrix(i as usize * ts, j as usize * ts, ts, ts)
                        .to_bytes()
                });
                g.data(key(nt, i, j), tile_bytes, owner, bytes);
            }
        }

        let tsf = ts as f64;
        let fl_potrf = tsf.powi(3) / 3.0;
        let fl_trsm = tsf.powi(3);
        let fl_syrk = tsf.powi(3);
        let fl_gemm = 2.0 * tsf.powi(3);
        // Same recursive-subtiling treatment as the TLR diagonal.
        let speedup = (8.0 * (tsf / 2400.0).powi(2)).clamp(2.0, 48.0);
        let prio = |k: u64, bonus: i64| ((nt - k) as i64) * 4 + bonus;
        let mut total_flops = 0.0;
        let mut tasks = 0u64;

        for k in 0..nt {
            let mut desc = TaskDesc::new("potrf")
                .on_node(dist.owner(k * nt + k))
                .flops(fl_potrf / speedup)
                .efficiency(DENSE_EFF)
                .priority(prio(k, 3))
                .read_key(key(nt, k, k))
                .write(key(nt, k, k), tile_bytes);
            if numeric {
                let ts2 = ts;
                desc = desc.kernel(move |ins| {
                    let a = Matrix::from_bytes(ts2, ts2, &ins[0]);
                    vec![potrf(&a).expect("tile SPD").to_bytes()]
                });
            }
            g.insert(desc);
            total_flops += fl_potrf;
            tasks += 1;

            for i in (k + 1)..nt {
                let mut desc = TaskDesc::new("trsm")
                    .on_node(dist.owner(i * nt + k))
                    .flops(fl_trsm / speedup)
                    .efficiency(DENSE_EFF)
                    .priority(prio(k, 2))
                    .read_key(key(nt, k, k))
                    .read_key(key(nt, i, k))
                    .write(key(nt, i, k), tile_bytes);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let l = Matrix::from_bytes(ts2, ts2, &ins[0]);
                        // Use only the lower triangle of the factor tile.
                        let l = Matrix::from_fn(
                            ts2,
                            ts2,
                            |r, c| if r >= c { l.get(r, c) } else { 0.0 },
                        );
                        let mut b = Matrix::from_bytes(ts2, ts2, &ins[1]);
                        trsm_right_lower_t(&l, &mut b);
                        vec![b.to_bytes()]
                    });
                }
                g.insert(desc);
                total_flops += fl_trsm;
                tasks += 1;
            }

            for i in (k + 1)..nt {
                let mut desc = TaskDesc::new("syrk")
                    .on_node(dist.owner(i * nt + i))
                    .flops(fl_syrk / speedup)
                    .efficiency(DENSE_EFF)
                    .priority(prio(k, if i == k + 1 { 2 } else { 1 }))
                    .read_key(key(nt, i, k))
                    .read_key(key(nt, i, i))
                    .write(key(nt, i, i), tile_bytes);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let a = Matrix::from_bytes(ts2, ts2, &ins[0]);
                        let mut c = Matrix::from_bytes(ts2, ts2, &ins[1]);
                        syrk_lower(-1.0, &a, 1.0, &mut c);
                        vec![c.to_bytes()]
                    });
                }
                g.insert(desc);
                total_flops += fl_syrk;
                tasks += 1;

                for j in (k + 1)..i {
                    let mut desc = TaskDesc::new("gemm")
                        .on_node(dist.owner(i * nt + j))
                        .flops(fl_gemm)
                        .efficiency(DENSE_EFF)
                        .priority(prio(k, if j == k + 1 { 1 } else { 0 }))
                        .read_key(key(nt, i, k))
                        .read_key(key(nt, j, k))
                        .read_key(key(nt, i, j))
                        .write(key(nt, i, j), tile_bytes);
                    if numeric {
                        let ts2 = ts;
                        desc = desc.kernel(move |ins| {
                            let a = Matrix::from_bytes(ts2, ts2, &ins[0]);
                            let b = Matrix::from_bytes(ts2, ts2, &ins[1]);
                            let mut c = Matrix::from_bytes(ts2, ts2, &ins[2]);
                            gemm(-1.0, &a, Trans::No, &b, Trans::Yes, 1.0, &mut c);
                            vec![c.to_bytes()]
                        });
                    }
                    g.insert(desc);
                    total_flops += fl_gemm;
                    tasks += 1;
                }
            }
        }

        let mut out = HashMap::new();
        for i in 0..nt {
            for j in 0..=i {
                out.insert((i, j), g.current(key(nt, i, j)).expect("tile version"));
            }
        }
        (
            DenseCholesky {
                n,
                tile_size: ts,
                dist,
                out,
                dense_a,
                total_flops,
                tasks,
            },
            g.build(),
        )
    }

    /// Relative residual of a completed Numeric run.
    pub fn residual(&self, cluster: &Cluster) -> f64 {
        let a = self.dense_a.as_ref().expect("numeric build");
        let nt = self.nt();
        let ts = self.tile_size;
        let mut l = Matrix::zeros(self.n, self.n);
        for i in 0..nt {
            for j in 0..=i {
                let b = cluster.data(self.out[&(i, j)]).expect("tile data");
                let tile = Matrix::from_bytes(ts, ts, &b);
                let block = if i == j {
                    Matrix::from_fn(ts, ts, |r, c| if r >= c { tile.get(r, c) } else { 0.0 })
                } else {
                    tile
                };
                l.set_submatrix(i as usize * ts, j as usize * ts, &block);
            }
        }
        cholesky_residual(a, &l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_comm::BackendKind;
    use amt_core::{Cluster, ClusterConfig, ExecMode};

    #[test]
    fn dense_cholesky_factorizes_distributed() {
        for backend in [BackendKind::Mpi, BackendKind::Lci] {
            let (chol, graph) = DenseCholesky::build_numeric(192, 48, 2);
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 2,
                workers_per_node: 4,
                backend,
                mode: ExecMode::Numeric,
                ..Default::default()
            });
            let report = cluster.execute(graph);
            assert!(report.complete(), "{backend}");
            let res = chol.residual(&cluster);
            assert!(res < 1e-12, "{backend}: dense residual {res:.2e}");
        }
    }

    #[test]
    fn task_counts_match_closed_forms() {
        let nt = 6u64;
        let (chol, graph) = DenseCholesky::build_cost_only(6 * 64, 64, 2);
        let want = nt + nt * (nt - 1) / 2 * 2 + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(chol.tasks, want);
        assert_eq!(graph.task_count() as u64, want);
        // Dense flops ≈ N³/3.
        let n = (6 * 64) as f64;
        assert!((chol.total_flops - n.powi(3) / 3.0).abs() / chol.total_flops < 0.35);
    }

    #[test]
    fn tlr_moves_far_less_data_and_flops_than_dense() {
        // HiCMA's reason to exist, quantified on this stack.
        let n = 48_000;
        let ts = 3000;
        let (dense, dgraph) = DenseCholesky::build_cost_only(n, ts, 4);
        let (tlr, tgraph) = crate::TlrCholesky::build_cost_only(crate::TlrProblem::new(n, ts), 4);
        assert!(
            tlr.stats.total_flops < dense.total_flops / 10.0,
            "TLR flops {:.2e} vs dense {:.2e}",
            tlr.stats.total_flops,
            dense.total_flops
        );
        // Remote dataflow volume: compare declared version sizes.
        let vol = |g: &amt_core::TaskGraph| -> f64 { g.versions().map(|v| v.size as f64).sum() };
        assert!(vol(&tgraph) < vol(&dgraph) / 5.0);
    }
}
