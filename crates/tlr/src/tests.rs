//! End-to-end TLR Cholesky tests: numeric verification on the distributed
//! runtime against both backends, graph-shape checks, CostOnly sizing.

use amt_comm::BackendKind;
use amt_core::{Cluster, ClusterConfig, ExecMode};

use crate::{TlrCholesky, TlrProblem};

fn cfg(backend: BackendKind, nodes: usize, mode: ExecMode) -> ClusterConfig {
    ClusterConfig {
        nodes,
        workers_per_node: 4,
        backend,
        mode,
        ..Default::default()
    }
}

#[test]
fn task_counts_match_closed_forms() {
    let problem = TlrProblem::new(256, 32); // nt = 8
    let (chol, graph) = TlrCholesky::build_cost_only(problem, 4);
    let nt = 8u64;
    assert_eq!(chol.stats.potrf, nt);
    assert_eq!(chol.stats.trsm, nt * (nt - 1) / 2);
    assert_eq!(chol.stats.syrk, nt * (nt - 1) / 2);
    assert_eq!(chol.stats.gemm, nt * (nt - 1) * (nt - 2) / 6);
    assert_eq!(graph.task_count() as u64, chol.stats.tasks());
}

#[test]
fn sequential_oracle_factorizes() {
    // The graph's kernels, run in insertion order, must produce a valid
    // factorization — independent of the runtime.
    let problem = TlrProblem::new(128, 32);
    let (chol, graph) = TlrCholesky::build_numeric(problem, 1);
    let store = graph.sequential_oracle();
    // Spot-check: every final version exists.
    for v in &chol.diag_out {
        assert!(store.contains_key(v));
    }
}

#[test]
fn distributed_factorization_is_accurate_on_both_backends() {
    for backend in [BackendKind::Mpi, BackendKind::Lci] {
        let problem = TlrProblem::new(256, 64); // nt = 4
        let nodes = 2;
        let (chol, graph) = TlrCholesky::build_numeric(problem, nodes);
        let mut cluster = Cluster::new(cfg(backend, nodes, ExecMode::Numeric));
        let report = cluster.execute(graph);
        assert!(report.complete(), "{backend}: {report:?}");
        let res = chol.residual(&cluster);
        assert!(
            res < 1e-6,
            "{backend}: TLR Cholesky residual too large: {res:.3e}"
        );
        // Remote dataflows actually happened.
        assert!(report.e2e_latency_us.count() > 0, "{backend}");
    }
}

#[test]
fn backends_agree_numerically() {
    let make = || {
        let problem = TlrProblem::new(192, 48);
        TlrCholesky::build_numeric(problem, 2)
    };
    let (chol_a, graph_a) = make();
    let mut mpi = Cluster::new(cfg(BackendKind::Mpi, 2, ExecMode::Numeric));
    mpi.execute(graph_a);
    let res_mpi = chol_a.residual(&mpi);

    let (chol_b, graph_b) = make();
    let mut lci = Cluster::new(cfg(BackendKind::Lci, 2, ExecMode::Numeric));
    lci.execute(graph_b);
    let res_lci = chol_b.residual(&lci);

    // Same task graph, same kernels, deterministic execution order per
    // backend: residuals must both be tiny (bitwise equality is not
    // required — completion order can differ — but accuracy must hold).
    assert!(
        res_mpi < 1e-6 && res_lci < 1e-6,
        "{res_mpi:.3e} vs {res_lci:.3e}"
    );
}

#[test]
fn accuracy_follows_tolerance() {
    let run = |tol: f64| {
        let mut problem = TlrProblem::new(192, 48);
        problem.tol = tol;
        let (chol, graph) = TlrCholesky::build_numeric(problem, 1);
        let mut cluster = Cluster::new(cfg(BackendKind::Lci, 1, ExecMode::Numeric));
        let report = cluster.execute(graph);
        assert!(report.complete());
        chol.residual(&cluster)
    };
    let loose = run(1e-3);
    let tight = run(1e-9);
    assert!(tight < loose, "tight {tight:.2e} !< loose {loose:.2e}");
    assert!(tight < 1e-7);
}

#[test]
fn cost_only_scales_to_many_tiles() {
    // nt = 40 → 11 480 tasks; must build and execute quickly with no
    // payloads.
    let problem = TlrProblem::new(40 * 1200, 1200);
    let (chol, graph) = TlrCholesky::build_cost_only(problem, 4);
    assert_eq!(chol.stats.tasks(), graph.task_count() as u64);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 4,
        workers_per_node: 16,
        backend: BackendKind::Lci,
        mode: ExecMode::CostOnly,
        ..Default::default()
    });
    let report = cluster.execute(graph);
    assert!(report.complete());
    assert!(report.bytes_transferred() > 0);
}

#[test]
fn smaller_tiles_mean_more_tasks_less_flops_per_task() {
    let big = TlrCholesky::build_cost_only(TlrProblem::new(24_000, 3000), 4).0;
    let small = TlrCholesky::build_cost_only(TlrProblem::new(24_000, 1200), 4).0;
    assert!(small.stats.tasks() > 5 * big.stats.tasks());
    let fpt_big = big.stats.total_flops / big.stats.tasks() as f64;
    let fpt_small = small.stats.total_flops / small.stats.tasks() as f64;
    assert!(fpt_small < fpt_big / 4.0);
}

#[test]
fn two_flow_trsm_touches_only_v() {
    let problem = TlrProblem::new(128, 32);
    let (_, graph) = TlrCholesky::build_numeric(problem, 1);
    for t in graph.tasks() {
        if t.name == "trsm" {
            assert_eq!(t.outputs.len(), 1, "TRSM writes only the V flow");
            // Its output key is odd (V keys are 2*id+1).
            let vkey = graph.version(t.outputs[0].0).key;
            assert_eq!(vkey % 2, 1, "TRSM output must be a V key");
        }
        if t.name == "gemm" {
            assert_eq!(t.outputs.len(), 2, "GEMM rewrites both flows");
        }
    }
}

#[test]
fn windowed_execution_matches_full_unroll_on_three_nodes() {
    // ISSUE 5 satellite: 3-node Numeric TLR Cholesky through the windowed
    // (bounded task discovery) path. With a window covering the whole
    // graph the run must be byte-identical to full unrolling; with a small
    // window every final payload must still match the sequential oracle.
    use crate::TlrCholeskySource;

    let problem = TlrProblem::new(192, 32); // nt = 6 → 56 tasks
    let nodes = 3;
    let (chol, graph) = TlrCholesky::build_numeric(problem.clone(), nodes);
    let oracle = graph.sequential_oracle();
    let ntasks = graph.task_count();
    let mut full = Cluster::new(cfg(BackendKind::Lci, nodes, ExecMode::Numeric));
    let full_report = full.execute(graph);
    assert!(full_report.complete());
    let full_json = full_report.to_json();

    let check_payloads = |cluster: &Cluster, label: &str| {
        // The source produces the same insertion order as the batch
        // build, so the full-unroll version ids are valid here too.
        for v in &chol.diag_out {
            assert_eq!(
                cluster.data(*v),
                oracle.get(v).cloned(),
                "{label}: diagonal tile diverged"
            );
        }
        for &(u, v) in chol.lr_out.values() {
            assert_eq!(cluster.data(u), oracle.get(&u).cloned(), "{label}");
            assert_eq!(cluster.data(v), oracle.get(&v).cloned(), "{label}");
        }
    };

    // Covering window: byte-identical scheduling and report.
    let mut win = Cluster::new(cfg(BackendKind::Lci, nodes, ExecMode::Numeric));
    let report = win.execute_windowed(
        Box::new(TlrCholeskySource::numeric(problem.clone(), nodes)),
        ntasks,
    );
    assert_eq!(
        report.to_json(),
        full_json,
        "covering window must be byte-identical"
    );
    check_payloads(&win, "covering window");

    // Small window: bounded discovery with retirement; results must still
    // verify even though scheduling may differ.
    let mut win = Cluster::new(cfg(BackendKind::Lci, nodes, ExecMode::Numeric));
    let report = win.execute_windowed(Box::new(TlrCholeskySource::numeric(problem, nodes)), 12);
    assert!(report.complete(), "window 12: {report:?}");
    assert_eq!(report.tasks_total as usize, ntasks);
    check_payloads(&win, "window 12");
}
