//! The HiCMA-style TLR Cholesky task graph (two-flow, band size 1).
//!
//! Loop structure (right-looking, step `k`):
//!
//! ```text
//! POTRF(k)        : D[k]           ← chol(D[k])                (dense)
//! TRSM(i,k)  i>k  : V[i,k]         ← L[k]⁻¹ · V[i,k]           (U untouched!)
//! SYRK(i,k)  i>k  : D[i]           ← D[i] − U·(VᵀV)·Uᵀ
//! GEMM(i,j,k) i>j>k: (U,V)[i,j]    ← trunc((U,V)[i,j] − L[i,k]·L[j,k]ᵀ)
//! ```
//!
//! The **two-flow** property: `U[i,k]` and `V[i,k]` are separate runtime
//! dataflows, so a TRSM re-announces only the `V` half of a tile — exactly
//! the communication structure of the paper's HiCMA version [7, 8].

use std::collections::HashMap;

use amt_core::{
    Cluster, DataDist, DataKey, GraphBuilder, GraphSource, TaskDesc, TaskGraph, TileDist2d,
    VersionId,
};
use amt_linalg::{
    cholesky_residual, gemm, potrf, sqexp_covariance, trsm_left_lower, Grid2d, Matrix, Trans,
};

use crate::flops::{efficiency, KernelFlops};
use crate::rankmodel::RankModel;
use crate::tile::LrTile;

/// Problem definition (defaults mirror §6.4.2: maxrank 150, accuracy 1e-8,
/// band size 1, st-2d-sqexp).
#[derive(Debug, Clone)]
pub struct TlrProblem {
    /// Matrix dimension (must be a multiple of `tile_size`).
    pub n: usize,
    pub tile_size: usize,
    /// Truncation accuracy (absolute; the covariance scale is O(1)).
    pub tol: f64,
    pub maxrank: usize,
    /// Covariance length scale.
    pub length_scale: f64,
    /// Diagonal regularization (keeps small Numeric problems SPD).
    pub nugget: f64,
    /// Internal parallelism of the dense diagonal kernels: HiCMA-PaRSEC
    /// subdivides POTRF/large dense updates recursively into subtasks that
    /// run concurrently, so the diagonal chain is not a single-core
    /// critical path. Scales with tile area (more subtiles to run in
    /// parallel); modeled as an effective speedup of the dense POTRF
    /// (virtual time only). `None` = automatic `8·(ts/2400)²`, clamped to
    /// [2, 48].
    pub potrf_parallelism: Option<f64>,
}

impl TlrProblem {
    pub fn new(n: usize, tile_size: usize) -> Self {
        assert_eq!(n % tile_size, 0, "n must be a multiple of tile_size");
        TlrProblem {
            n,
            tile_size,
            tol: 1e-8,
            maxrank: 150,
            length_scale: 0.1,
            nugget: 1e-2,
            potrf_parallelism: None,
        }
    }

    pub fn nt(&self) -> u64 {
        (self.n / self.tile_size) as u64
    }

    /// Effective internal parallelism of the dense diagonal POTRF.
    pub fn potrf_speedup(&self) -> f64 {
        self.potrf_parallelism.unwrap_or_else(|| {
            let r = self.tile_size as f64 / 2400.0;
            (8.0 * r * r).clamp(2.0, 48.0)
        })
    }
}

/// Task-graph statistics gathered during construction.
#[derive(Debug, Default, Clone)]
pub struct CholeskyStats {
    pub potrf: u64,
    pub trsm: u64,
    pub syrk: u64,
    pub gemm: u64,
    pub total_flops: f64,
    pub mean_rank: f64,
    pub lr_tile_bytes_mean: f64,
}

impl CholeskyStats {
    pub fn tasks(&self) -> u64 {
        self.potrf + self.trsm + self.syrk + self.gemm
    }
}

/// Builder for TLR Cholesky task graphs, plus the handles needed to verify
/// a Numeric run.
pub struct TlrCholesky {
    pub problem: TlrProblem,
    pub dist: TileDist2d,
    /// Final factor versions per tile (filled by the builders).
    pub diag_out: Vec<VersionId>,
    pub lr_out: HashMap<(u64, u64), (VersionId, VersionId)>,
    /// Dense original (Numeric builds only; for residual checks).
    pub dense_a: Option<Matrix>,
    pub stats: CholeskyStats,
}

// Key scheme: tile (i,j) has id i*nt+j; U rides on 2*id, V on 2*id+1;
// diagonal dense tiles use 2*id.
fn ku(nt: u64, i: u64, j: u64) -> DataKey {
    2 * (i * nt + j)
}
fn kv(nt: u64, i: u64, j: u64) -> DataKey {
    2 * (i * nt + j) + 1
}
fn kd(nt: u64, k: u64) -> DataKey {
    2 * (k * nt + k)
}

/// One task of the factorization, in exact insertion order. The cursor
/// form lets the graph be produced incrementally (windowed execution)
/// while staying task-for-task identical to the batch build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Potrf(u64),
    /// `(i, k)`.
    Trsm(u64, u64),
    /// `(i, k)`.
    Syrk(u64, u64),
    /// `(i, j, k)`.
    Gemm(u64, u64, u64),
}

impl Step {
    fn first(nt: u64) -> Option<Step> {
        (nt > 0).then_some(Step::Potrf(0))
    }

    /// Successor in insertion order: per `k`, POTRF; all TRSMs; then per
    /// row `i`, SYRK followed by its GEMMs.
    fn next(self, nt: u64) -> Option<Step> {
        let after_row = |i: u64, k: u64| {
            if i + 1 < nt {
                Some(Step::Syrk(i + 1, k))
            } else {
                Some(Step::Potrf(k + 1))
            }
        };
        match self {
            Step::Potrf(k) => (k + 1 < nt).then_some(Step::Trsm(k + 1, k)),
            Step::Trsm(i, k) => {
                if i + 1 < nt {
                    Some(Step::Trsm(i + 1, k))
                } else {
                    Some(Step::Syrk(k + 1, k))
                }
            }
            Step::Syrk(i, k) => {
                if k + 1 < i {
                    Some(Step::Gemm(i, k + 1, k))
                } else {
                    after_row(i, k)
                }
            }
            Step::Gemm(i, j, k) => {
                if j + 1 < i {
                    Some(Step::Gemm(i, j + 1, k))
                } else {
                    after_row(i, k)
                }
            }
        }
    }
}

impl TlrCholesky {
    /// Problem/distribution shell with empty stats; `dense_a` is built for
    /// Numeric mode and doubles as the mode flag.
    fn shell(problem: TlrProblem, nodes: usize, numeric: bool) -> TlrCholesky {
        let nt = problem.nt();
        let dist = TileDist2d::square_grid(nt, nt, nodes);
        let dense_a = numeric.then(|| {
            let grid = Grid2d::new(problem.n);
            sqexp_covariance(
                &grid,
                0,
                0,
                problem.n,
                problem.n,
                problem.length_scale,
                problem.nugget,
            )
        });
        TlrCholesky {
            problem,
            dist,
            diag_out: Vec::new(),
            lr_out: HashMap::new(),
            dense_a,
            stats: CholeskyStats::default(),
        }
    }

    /// Declare all initial tiles (compressing them in Numeric mode) and
    /// fill the rank/bytes statistics.
    fn declare_tiles(&mut self, g: &mut GraphBuilder) {
        let nt = self.problem.nt();
        let ts = self.problem.tile_size;
        let model = RankModel::new(ts, self.problem.maxrank);
        let mut rank_sum = 0.0;
        let mut bytes_sum = 0.0;
        let mut lr_count = 0.0;
        for i in 0..nt {
            for j in 0..=i {
                let owner = self.dist.owner(i * nt + j);
                match &self.dense_a {
                    Some(dense_a) => {
                        let r0 = (i as usize) * ts;
                        let c0 = (j as usize) * ts;
                        let block = dense_a.submatrix(r0, c0, ts, ts);
                        if i == j {
                            g.data(kd(nt, i), ts * ts * 8, owner, Some(block.to_bytes()));
                        } else {
                            let t =
                                LrTile::compress(&block, self.problem.tol, self.problem.maxrank);
                            rank_sum += t.rank() as f64;
                            bytes_sum += t.bytes() as f64;
                            lr_count += 1.0;
                            let ub = t.u_bytes();
                            let vb = t.v_bytes();
                            g.data(ku(nt, i, j), ub.len(), owner, Some(ub));
                            g.data(kv(nt, i, j), vb.len(), owner, Some(vb));
                        }
                    }
                    None => {
                        if i == j {
                            g.data(kd(nt, i), model.dense_bytes(), owner, None);
                        } else {
                            let fb = model.factor_bytes(i, j);
                            rank_sum += model.rank(i, j) as f64;
                            bytes_sum += 2.0 * fb as f64;
                            lr_count += 1.0;
                            g.data(ku(nt, i, j), fb, owner, None);
                            g.data(kv(nt, i, j), fb, owner, None);
                        }
                    }
                }
            }
        }
        if lr_count > 0.0 {
            self.stats.mean_rank = rank_sum / lr_count;
            self.stats.lr_tile_bytes_mean = bytes_sum / lr_count;
        }
    }

    /// Build the task graph with real kernels and real compressed tiles
    /// (Numeric mode). Suitable for modest `n`; verification via
    /// [`TlrCholesky::residual`].
    pub fn build_numeric(problem: TlrProblem, nodes: usize) -> (TlrCholesky, TaskGraph) {
        let mut me = Self::shell(problem, nodes, true);
        let mut g = GraphBuilder::new(nodes);
        me.declare_tiles(&mut g);
        me.insert_tasks(&mut g);
        me.collect_outputs(&g);
        (me, g.build())
    }

    /// Build the task graph from the calibrated [`RankModel`] with no
    /// payloads (CostOnly mode) — the paper-scale path.
    pub fn build_cost_only(problem: TlrProblem, nodes: usize) -> (TlrCholesky, TaskGraph) {
        let mut g = GraphBuilder::new(nodes);
        let me = Self::build_cost_only_into(problem, nodes, &mut g);
        (me, g.build())
    }

    /// [`TlrCholesky::build_cost_only`] into a caller-provided builder.
    /// The island runner and the scale bench rebuild the same graph once
    /// per island from a closure over this; the insertion order is a pure
    /// function of the problem, so every island sees the identical graph.
    pub fn build_cost_only_into(
        problem: TlrProblem,
        nodes: usize,
        g: &mut GraphBuilder,
    ) -> TlrCholesky {
        let mut me = Self::shell(problem, nodes, false);
        me.declare_tiles(g);
        me.insert_tasks(g);
        me.collect_outputs(g);
        me
    }

    fn insert_tasks(&mut self, g: &mut GraphBuilder) {
        let nt = self.problem.nt();
        let mut cursor = Step::first(nt);
        while let Some(step) = cursor {
            self.insert_step(g, step);
            cursor = step.next(nt);
        }
    }

    /// Insert one task of the factorization.
    fn insert_step(&mut self, g: &mut GraphBuilder, step: Step) {
        let nt = self.problem.nt();
        let ts = self.problem.tile_size;
        let tol = self.problem.tol;
        let maxrank = self.problem.maxrank;
        let numeric = self.dense_a.is_some();
        let flops = KernelFlops::new(ts);
        let model = RankModel::new(ts, maxrank);
        let rank_of = |i: u64, j: u64| model.rank(i, j);
        let prio = |k: u64, bonus: i64| ((nt - k) as i64) * 4 + bonus;

        match step {
            Step::Potrf(k) => {
                let owner = self.dist.owner(k * nt + k);
                let mut desc = TaskDesc::new("potrf")
                    .on_node(owner)
                    .flops(flops.potrf() / self.problem.potrf_speedup())
                    .efficiency(efficiency::POTRF)
                    .priority(prio(k, 3))
                    .read_key(kd(nt, k))
                    .write(kd(nt, k), ts * ts * 8);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let a = Matrix::from_bytes(ts2, ts2, &ins[0]);
                        let l = potrf(&a).expect("diagonal tile not SPD");
                        vec![l.to_bytes()]
                    });
                }
                self.stats.potrf += 1;
                self.stats.total_flops += flops.potrf();
                g.insert(desc);
            }
            Step::Trsm(i, k) => {
                // TRSM(i,k): touches only V (two-flow).
                let owner = self.dist.owner(i * nt + k);
                let r = rank_of(i, k);
                let mut desc = TaskDesc::new("trsm")
                    .on_node(owner)
                    .flops(flops.trsm(r))
                    .efficiency(efficiency::TRSM)
                    .priority(prio(k, 2))
                    .read_key(kd(nt, k))
                    .read_key(kv(nt, i, k))
                    .write(kv(nt, i, k), ts * r * 8);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let l = Matrix::from_bytes(ts2, ts2, &ins[0]);
                        let mut v = LrTile::factor_from_bytes(ts2, &ins[1]);
                        trsm_left_lower(&l, &mut v);
                        vec![v.to_bytes()]
                    });
                }
                self.stats.trsm += 1;
                self.stats.total_flops += flops.trsm(r);
                g.insert(desc);
            }
            Step::Syrk(i, k) => {
                // SYRK(i,k): dense diagonal update from the low-rank panel.
                let owner = self.dist.owner(i * nt + i);
                let r = rank_of(i, k);
                let mut desc = TaskDesc::new("syrk")
                    .on_node(owner)
                    .flops(flops.syrk(r))
                    .efficiency(efficiency::SYRK)
                    .priority(prio(k, if i == k + 1 { 2 } else { 1 }))
                    .read_key(ku(nt, i, k))
                    .read_key(kv(nt, i, k))
                    .read_key(kd(nt, i))
                    .write(kd(nt, i), ts * ts * 8);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let u = LrTile::factor_from_bytes(ts2, &ins[0]);
                        let v = LrTile::factor_from_bytes(ts2, &ins[1]);
                        let mut d = Matrix::from_bytes(ts2, ts2, &ins[2]);
                        let k = u.cols();
                        let mut vtv = Matrix::zeros(k, k);
                        gemm(1.0, &v, Trans::Yes, &v, Trans::No, 0.0, &mut vtv);
                        let mut uvtv = Matrix::zeros(ts2, k);
                        gemm(1.0, &u, Trans::No, &vtv, Trans::No, 0.0, &mut uvtv);
                        gemm(-1.0, &uvtv, Trans::No, &u, Trans::Yes, 1.0, &mut d);
                        vec![d.to_bytes()]
                    });
                }
                self.stats.syrk += 1;
                self.stats.total_flops += flops.syrk(r);
                g.insert(desc);
            }
            Step::Gemm(i, j, k) => {
                let owner = self.dist.owner(i * nt + j);
                let (ra, rb, rc) = (rank_of(i, k), rank_of(j, k), rank_of(i, j));
                let fl = flops.gemm(ra, rb, rc);
                let mut desc = TaskDesc::new("gemm")
                    .on_node(owner)
                    .flops(fl)
                    .efficiency(efficiency::GEMM_LR)
                    .priority(prio(k, if j == k + 1 { 1 } else { 0 }))
                    .read_key(ku(nt, i, k))
                    .read_key(kv(nt, i, k))
                    .read_key(ku(nt, j, k))
                    .read_key(kv(nt, j, k))
                    .read_key(ku(nt, i, j))
                    .read_key(kv(nt, i, j))
                    .write(ku(nt, i, j), ts * rc * 8)
                    .write(kv(nt, i, j), ts * rc * 8);
                if numeric {
                    let ts2 = ts;
                    desc = desc.kernel(move |ins| {
                        let u_ik = LrTile::factor_from_bytes(ts2, &ins[0]);
                        let v_ik = LrTile::factor_from_bytes(ts2, &ins[1]);
                        let u_jk = LrTile::factor_from_bytes(ts2, &ins[2]);
                        let v_jk = LrTile::factor_from_bytes(ts2, &ins[3]);
                        let c = LrTile {
                            u: LrTile::factor_from_bytes(ts2, &ins[4]),
                            v: LrTile::factor_from_bytes(ts2, &ins[5]),
                        };
                        // −L_ik·L_jkᵀ = −U_ik (V_ikᵀ V_jk) U_jkᵀ.
                        let mut small = Matrix::zeros(v_ik.cols(), v_jk.cols());
                        gemm(1.0, &v_ik, Trans::Yes, &v_jk, Trans::No, 0.0, &mut small);
                        let mut w = Matrix::zeros(ts2, v_jk.cols());
                        gemm(-1.0, &u_ik, Trans::No, &small, Trans::No, 0.0, &mut w);
                        let out = c.add_truncate(&w, &u_jk, tol, maxrank);
                        vec![out.u.to_bytes(), out.v.to_bytes()]
                    });
                }
                self.stats.gemm += 1;
                self.stats.total_flops += fl;
                g.insert(desc);
            }
        }
    }

    fn collect_outputs(&mut self, g: &GraphBuilder) {
        let nt = self.problem.nt();
        for k in 0..nt {
            self.diag_out
                .push(g.current(kd(nt, k)).expect("diag version"));
        }
        for i in 0..nt {
            for j in 0..i {
                let u = g.current(ku(nt, i, j)).expect("U version");
                let v = g.current(kv(nt, i, j)).expect("V version");
                self.lr_out.insert((i, j), (u, v));
            }
        }
    }

    /// Assemble the dense lower factor from a completed Numeric run and
    /// return the relative residual ‖A − L·Lᵀ‖_F / ‖A‖_F.
    pub fn residual(&self, cluster: &Cluster) -> f64 {
        let a = self
            .dense_a
            .as_ref()
            .expect("residual needs a Numeric build");
        let nt = self.problem.nt();
        let ts = self.problem.tile_size;
        let n = self.problem.n;
        let mut l = Matrix::zeros(n, n);
        for k in 0..nt {
            let b = cluster
                .data(self.diag_out[k as usize])
                .expect("diag tile data");
            let lt = Matrix::from_bytes(ts, ts, &b);
            // Keep only the lower triangle (POTRF output is lower).
            let block = Matrix::from_fn(ts, ts, |i, j| if i >= j { lt.get(i, j) } else { 0.0 });
            l.set_submatrix(k as usize * ts, k as usize * ts, &block);
        }
        for (&(i, j), &(uv, vv)) in &self.lr_out {
            let ub = cluster.data(uv).expect("U data");
            let vb = cluster.data(vv).expect("V data");
            let tile = LrTile {
                u: LrTile::factor_from_bytes(ts, &ub),
                v: LrTile::factor_from_bytes(ts, &vb),
            };
            l.set_submatrix(i as usize * ts, j as usize * ts, &tile.to_dense());
        }
        cholesky_residual(a, &l)
    }
}

/// Incremental producer of the TLR Cholesky graph for
/// [`amt_core::Cluster::execute_windowed`]: yields tasks one at a time in
/// exactly the insertion order of the batch builders, so task and version
/// numbering match a full-unroll build of the same problem. The first pull
/// also declares all initial tiles.
pub struct TlrCholeskySource {
    me: TlrCholesky,
    declared: bool,
    cursor: Option<Step>,
}

impl TlrCholeskySource {
    /// CostOnly-mode source (no payloads) — the paper-scale path.
    pub fn cost_only(problem: TlrProblem, nodes: usize) -> TlrCholeskySource {
        let cursor = Step::first(problem.nt());
        TlrCholeskySource {
            me: TlrCholesky::shell(problem, nodes, false),
            declared: false,
            cursor,
        }
    }

    /// Numeric-mode source (real kernels on real compressed tiles).
    pub fn numeric(problem: TlrProblem, nodes: usize) -> TlrCholeskySource {
        let cursor = Step::first(problem.nt());
        TlrCholeskySource {
            me: TlrCholesky::shell(problem, nodes, true),
            declared: false,
            cursor,
        }
    }

    /// Construction statistics for the tasks produced so far.
    pub fn stats(&self) -> &CholeskyStats {
        &self.me.stats
    }
}

impl GraphSource for TlrCholeskySource {
    fn next_task(&mut self, g: &mut GraphBuilder) -> bool {
        let Some(step) = self.cursor else {
            return false;
        };
        if !self.declared {
            self.declared = true;
            self.me.declare_tiles(g);
        }
        self.me.insert_step(g, step);
        self.cursor = step.next(self.me.problem.nt());
        true
    }
}
