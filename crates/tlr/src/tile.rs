//! Low-rank tiles: compression, rounded arithmetic, serialization.

use amt_linalg::{gemm, qr_thin, rank_at_abs, svd_jacobi, Matrix, Trans};
use bytes::Bytes;

/// A tile in `U·Vᵀ` form: `u` is `m × k`, `v` is `n × k`.
#[derive(Debug, Clone, PartialEq)]
pub struct LrTile {
    pub u: Matrix,
    pub v: Matrix,
}

impl LrTile {
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    pub fn rows(&self) -> usize {
        self.u.rows()
    }

    pub fn cols(&self) -> usize {
        self.v.rows()
    }

    /// Memory footprint in bytes of the packed `U`/`V` pair.
    pub fn bytes(&self) -> usize {
        (self.u.rows() * self.u.cols() + self.v.rows() * self.v.cols()) * 8
    }

    /// Compress a dense block at absolute accuracy `tol`, rank capped at
    /// `maxrank` (and never below 1 so the factor stays well-formed).
    pub fn compress(a: &Matrix, tol: f64, maxrank: usize) -> LrTile {
        let transposed = a.rows() < a.cols();
        let work = if transposed { a.transpose() } else { a.clone() };
        let (u, s, v) = svd_jacobi(&work);
        let k = rank_at_abs(&s, tol).clamp(1, maxrank.min(s.len()));
        let mut uk = Matrix::zeros(work.rows(), k);
        let mut vk = Matrix::zeros(work.cols(), k);
        for (j, &sv) in s.iter().enumerate().take(k) {
            for i in 0..work.rows() {
                uk.set(i, j, u.get(i, j) * sv);
            }
            for i in 0..work.cols() {
                vk.set(i, j, v.get(i, j));
            }
        }
        if transposed {
            LrTile { u: vk, v: uk }
        } else {
            LrTile { u: uk, v: vk }
        }
    }

    /// Reconstruct the dense block.
    pub fn to_dense(&self) -> Matrix {
        let mut d = Matrix::zeros(self.rows(), self.cols());
        gemm(1.0, &self.u, Trans::No, &self.v, Trans::Yes, 0.0, &mut d);
        d
    }

    /// Rounded addition `self + W·Zᵀ`, re-truncated at `tol`/`maxrank`:
    /// QR of the stacked factors, small SVD of the product of the R's.
    pub fn add_truncate(&self, w: &Matrix, z: &Matrix, tol: f64, maxrank: usize) -> LrTile {
        assert_eq!(w.rows(), self.rows());
        assert_eq!(z.rows(), self.cols());
        assert_eq!(w.cols(), z.cols());
        let k1 = self.rank();
        let k2 = w.cols();
        let m = self.rows();
        let n = self.cols();

        // Stack [U  W] and [V  Z].
        let mut su = Matrix::zeros(m, k1 + k2);
        su.set_submatrix(0, 0, &self.u);
        su.set_submatrix(0, k1, w);
        let mut sv = Matrix::zeros(n, k1 + k2);
        sv.set_submatrix(0, 0, &self.v);
        sv.set_submatrix(0, k1, z);

        let (qu, ru) = qr_thin(&su);
        let (qv, rv) = qr_thin(&sv);
        // Core = Ru · Rvᵀ, small square.
        let kk = ru.rows();
        let mut core = Matrix::zeros(kk, kk);
        gemm(1.0, &ru, Trans::No, &rv, Trans::Yes, 0.0, &mut core);
        let (cu, s, cv) = svd_jacobi(&core);
        let k = rank_at_abs(&s, tol).clamp(1, maxrank.min(s.len()));

        // U' = Qu · Cu[:, :k] · diag(s), V' = Qv · Cv[:, :k].
        let mut cus = Matrix::zeros(kk, k);
        let mut cvk = Matrix::zeros(kk, k);
        for (j, &sv) in s.iter().enumerate().take(k) {
            for i in 0..kk {
                cus.set(i, j, cu.get(i, j) * sv);
                cvk.set(i, j, cv.get(i, j));
            }
        }
        let mut u = Matrix::zeros(m, k);
        gemm(1.0, &qu, Trans::No, &cus, Trans::No, 0.0, &mut u);
        let mut v = Matrix::zeros(n, k);
        gemm(1.0, &qv, Trans::No, &cvk, Trans::No, 0.0, &mut v);
        LrTile { u, v }
    }

    pub fn u_bytes(&self) -> Bytes {
        self.u.to_bytes()
    }

    pub fn v_bytes(&self) -> Bytes {
        self.v.to_bytes()
    }

    /// Recover a factor matrix from bytes given the tile dimension (rank is
    /// implied by the payload length).
    pub fn factor_from_bytes(ts: usize, b: &[u8]) -> Matrix {
        assert_eq!(b.len() % (8 * ts), 0, "torn factor payload");
        let k = b.len() / (8 * ts);
        Matrix::from_bytes(ts, k, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(i: usize, j: usize) -> f64 {
        // Deterministic full-rank-ish entries (hash-based; trigonometric
        // formulas like sin(i + c*j) collapse to rank 2!).
        let h = (i as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((j as u64).wrapping_mul(0xc2b2ae3d27d4eb4f));
        ((h >> 11) % 100_000) as f64 / 100_000.0 - 0.5
    }

    fn low_rank_block(m: usize, n: usize, k: usize) -> Matrix {
        let x = Matrix::from_fn(m, k, pseudo);
        let y = Matrix::from_fn(n, k, |i, j| pseudo(i + 31, j + 7));
        let mut a = Matrix::zeros(m, n);
        gemm(1.0, &x, Trans::No, &y, Trans::Yes, 0.0, &mut a);
        a
    }

    #[test]
    fn compress_recovers_exact_low_rank() {
        let a = low_rank_block(20, 16, 3);
        let t = LrTile::compress(&a, 1e-10, 16);
        assert_eq!(t.rank(), 3);
        assert!(t.to_dense().max_diff(&a) < 1e-9);
    }

    #[test]
    fn compress_respects_maxrank() {
        let a = Matrix::from_fn(12, 12, pseudo);
        let t = LrTile::compress(&a, 1e-15, 4);
        assert_eq!(t.rank(), 4);
    }

    #[test]
    fn compress_wide_block() {
        let a = low_rank_block(8, 20, 2);
        let t = LrTile::compress(&a, 1e-10, 8);
        assert_eq!(t.rank(), 2);
        assert!(t.to_dense().max_diff(&a) < 1e-9);
    }

    #[test]
    fn add_truncate_matches_dense_sum() {
        let a = low_rank_block(16, 16, 3);
        let t = LrTile::compress(&a, 1e-12, 16);
        let w = Matrix::from_fn(16, 2, |i, j| pseudo(i + 3, j + 9));
        let z = Matrix::from_fn(16, 2, |i, j| pseudo(i + 17, j + 4));
        let sum = t.add_truncate(&w, &z, 1e-12, 16);
        let mut want = a;
        gemm(1.0, &w, Trans::No, &z, Trans::Yes, 1.0, &mut want);
        assert!(
            sum.to_dense().max_diff(&want) < 1e-9,
            "diff {}",
            sum.to_dense().max_diff(&want)
        );
        assert!(sum.rank() <= 5);
    }

    #[test]
    fn add_truncate_caps_rank_growth() {
        let a = low_rank_block(16, 16, 3);
        let mut t = LrTile::compress(&a, 1e-12, 16);
        for round in 0..6 {
            let w = Matrix::from_fn(16, 2, |i, j| ((i + j + round) as f64).sin() * 1e-12);
            let z = Matrix::from_fn(16, 2, |i, j| (i * j) as f64 + 1.0);
            t = t.add_truncate(&w, &z, 1e-8, 16);
        }
        // Tiny updates below tolerance must not inflate the rank.
        assert!(t.rank() <= 4, "rank grew to {}", t.rank());
    }

    #[test]
    fn factor_bytes_roundtrip() {
        let a = low_rank_block(10, 10, 2);
        let t = LrTile::compress(&a, 1e-10, 8);
        let u2 = LrTile::factor_from_bytes(10, &t.u_bytes());
        let v2 = LrTile::factor_from_bytes(10, &t.v_bytes());
        assert_eq!(u2, t.u);
        assert_eq!(v2, t.v);
    }
}
