//! Synthetic rank model for paper-scale CostOnly runs.
//!
//! Calibrated against the statistics the paper quotes for the
//! `st-2d-sqexp` problem at N = 360 000 (§6.4.2): at tile size 1200 the
//! average rank is ≈ 10.44, the largest low-rank tile has rank 29
//! (≈ 544 KiB in packed U×V form), and `maxrank` = 150 is never the binding
//! constraint. Ranks decay with distance from the diagonal (well-separated
//! blocks of a smooth kernel compress harder) and grow slowly with tile
//! size.

/// Rank model: `rank(i, j) = clamp(round(c(ts) · d^(−1/4)), 1, maxrank)`
/// with `d = |i − j|` and `c(ts) = 29 · (ts / 1200)^0.35`.
#[derive(Debug, Clone)]
pub struct RankModel {
    pub tile_size: usize,
    pub maxrank: usize,
}

impl RankModel {
    pub fn new(tile_size: usize, maxrank: usize) -> Self {
        RankModel { tile_size, maxrank }
    }

    fn scale(&self) -> f64 {
        29.0 * (self.tile_size as f64 / 1200.0).powf(0.35)
    }

    /// Rank of off-diagonal tile `(i, j)`, `i ≠ j`.
    pub fn rank(&self, i: u64, j: u64) -> usize {
        let d = i.abs_diff(j).max(1) as f64;
        let r = (self.scale() * d.powf(-0.25)).round() as usize;
        r.clamp(1, self.maxrank)
    }

    /// Bytes of one packed factor (`U` or `V`) of tile `(i, j)`.
    pub fn factor_bytes(&self, i: u64, j: u64) -> usize {
        self.tile_size * self.rank(i, j) * 8
    }

    /// Bytes of a dense diagonal tile.
    pub fn dense_bytes(&self) -> usize {
        self.tile_size * self.tile_size * 8
    }

    /// Mean rank over the strictly-lower tiles of an `nt × nt` tile grid.
    pub fn mean_rank(&self, nt: u64) -> f64 {
        let mut sum = 0.0;
        let mut count = 0.0;
        for d in 1..nt {
            let tiles = (nt - d) as f64;
            sum += tiles * self.rank(d, 0) as f64;
            count += tiles;
        }
        if count == 0.0 {
            0.0
        } else {
            sum / count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_statistics_at_ts_1200() {
        // N = 360 000, ts = 1200 → nt = 300.
        let m = RankModel::new(1200, 150);
        let mean = m.mean_rank(300);
        assert!(
            (mean - 10.44).abs() < 1.5,
            "mean rank {mean} should be near the paper's 10.44"
        );
        // Largest low-rank tile: rank 29 at distance 1.
        assert_eq!(m.rank(1, 0), 29);
        // Its packed size: 2 × 1200 × 29 × 8 ≈ 544 KiB.
        let tile_bytes = 2 * m.factor_bytes(1, 0);
        assert!((tile_bytes as f64 - 544.0 * 1024.0).abs() < 16.0 * 1024.0);
    }

    #[test]
    fn mean_tile_size_near_196_kib() {
        // Paper: "tiles in packed U × V format consume about 196 KiB of
        // memory on average" (at ts = 1200).
        let m = RankModel::new(1200, 150);
        let mean_bytes = 2.0 * 1200.0 * 8.0 * m.mean_rank(300);
        assert!(
            (mean_bytes - 196.0 * 1024.0).abs() < 30.0 * 1024.0,
            "mean tile {mean_bytes} bytes"
        );
    }

    #[test]
    fn rank_decays_with_distance() {
        let m = RankModel::new(1200, 150);
        assert!(m.rank(1, 0) > m.rank(10, 0));
        assert!(m.rank(10, 0) > m.rank(200, 0));
        assert!(m.rank(299, 0) >= 1);
    }

    #[test]
    fn rank_grows_gently_with_tile_size() {
        let small = RankModel::new(1200, 150);
        let big = RankModel::new(4800, 150);
        assert!(big.rank(1, 0) > small.rank(1, 0));
        assert!(big.rank(1, 0) < 2 * small.rank(1, 0));
    }

    #[test]
    fn maxrank_caps() {
        let m = RankModel::new(9600, 20);
        assert_eq!(m.rank(1, 0), 20);
    }
}
