//! # amt-tlr
//!
//! The HiCMA substitute (paper §6.4): **tile low-rank (TLR) Cholesky
//! factorization** of squared-exponential covariance matrices.
//!
//! * Off-band tiles are compressed to `U·Vᵀ` form at a fixed accuracy
//!   threshold with a rank cap (`maxrank`), exactly as HiCMA does.
//! * The factorization uses the **two-flow** variant ([7, 8] in the paper):
//!   a low-rank tile's `U` and `V` factors are separate dataflows, so the
//!   TRSM — which touches only `V` — re-communicates half a tile.
//! * The **band size is 1**: only diagonal tiles are dense.
//! * Kernels are real ([`amt_linalg`]) for Numeric-mode verification; the
//!   calibrated [`RankModel`] supplies tile ranks/sizes and flop counts for
//!   paper-scale CostOnly runs.
//!
//! [`TlrCholesky`] builds the task graph for [`amt_core::Cluster::execute`],
//! with critical-path-first priorities (panel operations feeding the dense
//! diagonal run first, §6.4.1).

mod cholesky;
mod dense;
mod flops;
mod rankmodel;
mod tile;

pub use cholesky::{CholeskyStats, TlrCholesky, TlrCholeskySource, TlrProblem};
pub use dense::DenseCholesky;
pub use flops::KernelFlops;
pub use rankmodel::RankModel;
pub use tile::LrTile;

#[cfg(test)]
mod tests;
