//! Runtime tests: dataflow correctness across nodes and backends, priority
//! scheduling, latency instrumentation, determinism.

use amt_comm::BackendKind;
use bytes::Bytes;

use crate::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc};

fn small_cfg(backend: BackendKind, nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        workers_per_node: 4,
        backend,
        ..Default::default()
    }
}

fn backends() -> [BackendKind; 3] {
    BackendKind::ALL
}

#[test]
fn single_task_runs() {
    for backend in backends() {
        let mut cluster = Cluster::new(small_cfg(backend, 1));
        let mut g = GraphBuilder::new(1);
        g.insert(TaskDesc::new("t").flops(1e6).write(0, 64));
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        assert_eq!(report.tasks_executed, 1);
        assert!(report.makespan > amt_simnet::SimTime::ZERO);
    }
}

#[test]
fn remote_dataflow_moves_real_bytes() {
    for backend in backends() {
        let mut cluster = Cluster::new(small_cfg(backend, 2));
        let mut g = GraphBuilder::new(2);
        let payload = Bytes::from((0..100u8).collect::<Vec<u8>>());
        let v = g.data(0, 100, 0, Some(payload.clone()));
        g.insert(
            TaskDesc::new("consume")
                .on_node(1)
                .flops(1e6)
                .read(v)
                .write(1, 100)
                .kernel(|ins| {
                    let doubled: Vec<u8> = ins[0].iter().map(|b| b.wrapping_mul(2)).collect();
                    vec![Bytes::from(doubled)]
                }),
        );
        let out = g.current(1).expect("output version");
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        let got = cluster.data(out).expect("output data");
        let want: Vec<u8> = payload.iter().map(|b| b.wrapping_mul(2)).collect();
        assert_eq!(&got[..], &want[..], "{backend}");
        // One remote flow happened and its latency was measured.
        assert_eq!(report.e2e_latency_us.count(), 1, "{backend}");
        assert!(report.e2e_latency_us.mean() > 0.0, "{backend}");
        assert!(report.bytes_transferred() >= 100, "{backend}");
    }
}

#[test]
fn chain_across_nodes_matches_oracle() {
    for backend in backends() {
        let mut cluster = Cluster::new(small_cfg(backend, 3));
        let mut g = GraphBuilder::new(3);
        g.data(0, 8, 0, Some(Bytes::from(vec![1u8; 8])));
        for step in 0..9u64 {
            let node = (step % 3) as usize;
            g.insert(
                TaskDesc::new("inc")
                    .on_node(node)
                    .flops(1e5)
                    .read_key(0)
                    .write(0, 8)
                    .kernel(|ins| {
                        vec![Bytes::from(
                            ins[0].iter().map(|b| b + 1).collect::<Vec<u8>>(),
                        )]
                    }),
            );
        }
        let last = g.current(0).expect("final version");
        let graph = g.build();
        let oracle = graph.sequential_oracle();
        let want = oracle[&last].clone();
        let report = cluster.execute(graph);
        assert!(report.complete(), "{backend}");
        assert_eq!(
            cluster.data(last).as_deref(),
            Some(&want[..]),
            "{backend}: distributed result diverged from sequential oracle"
        );
        assert_eq!(want[0], 10);
    }
}

#[test]
fn diamond_dependencies_fan_out_and_join() {
    for backend in backends() {
        let mut cluster = Cluster::new(small_cfg(backend, 2));
        let mut g = GraphBuilder::new(2);
        let src = g.data(0, 4, 0, Some(Bytes::from(vec![3u8; 4])));
        // Two branches on different nodes read the same version.
        g.insert(
            TaskDesc::new("left")
                .on_node(0)
                .flops(1e5)
                .read(src)
                .write(1, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b + 1).collect::<Vec<u8>>(),
                    )]
                }),
        );
        g.insert(
            TaskDesc::new("right")
                .on_node(1)
                .flops(1e5)
                .read(src)
                .write(2, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>(),
                    )]
                }),
        );
        g.insert(
            TaskDesc::new("join")
                .on_node(0)
                .flops(1e5)
                .read_key(1)
                .read_key(2)
                .write(3, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0]
                            .iter()
                            .zip(ins[1].iter())
                            .map(|(a, b)| a + b)
                            .collect::<Vec<u8>>(),
                    )]
                }),
        );
        let out = g.current(3).expect("join output");
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        // 3+1 + 3*2 = 10
        assert_eq!(cluster.data(out).as_deref(), Some(&[10u8, 10, 10, 10][..]));
    }
}

#[test]
fn wide_fanout_many_consumers() {
    for backend in backends() {
        let nodes = 4;
        let mut cluster = Cluster::new(small_cfg(backend, nodes));
        let mut g = GraphBuilder::new(nodes);
        let v = g.data(0, 64 << 10, 0, None);
        for i in 0..40u64 {
            g.insert(
                TaskDesc::new("consume")
                    .on_node((i % nodes as u64) as usize)
                    .flops(1e7)
                    .read(v)
                    .write(100 + i, 1024),
            );
        }
        let mut cfg = small_cfg(backend, nodes);
        cfg.mode = ExecMode::CostOnly;
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        // 3 remote nodes need the version: 3 flows.
        assert_eq!(report.e2e_latency_us.count(), 3, "{backend}");
        let _ = cfg;
    }
}

#[test]
fn priority_orders_execution_when_saturated() {
    // One worker, several independent ready tasks: higher priority first.
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 1,
        workers_per_node: 1,
        ..Default::default()
    });
    let mut g = GraphBuilder::new(1);
    for (i, prio) in [(0u64, 1i64), (1, 9), (2, 5)] {
        g.insert(
            TaskDesc::new("t")
                .flops(1e6)
                .priority(prio)
                .write(i, 8)
                .kernel(move |_| vec![Bytes::from(vec![prio as u8])]),
        );
    }
    // A sink depending on all three records completion order via bytes? We
    // instead verify by makespan structure: not observable directly, so use
    // executed count and rely on the ready-queue unit ordering (tested via
    // the heap in `node.rs`). Here: just assert completion.
    let report = cluster.execute(g.build());
    assert!(report.complete());
}

#[test]
fn cost_only_mode_moves_no_bytes_but_counts_them() {
    for backend in backends() {
        let mut cfg = small_cfg(backend, 2);
        cfg.mode = ExecMode::CostOnly;
        let mut cluster = Cluster::new(cfg);
        let mut g = GraphBuilder::new(2);
        let v = g.data(0, 1 << 20, 0, None);
        g.insert(TaskDesc::new("c").on_node(1).flops(1e6).read(v));
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        assert!(
            report.bytes_transferred() >= 1 << 20,
            "{backend}: declared bytes must be accounted"
        );
    }
}

#[test]
fn deterministic_replay() {
    for backend in backends() {
        let run = || {
            let mut cluster = Cluster::new(small_cfg(backend, 2));
            let mut g = GraphBuilder::new(2);
            g.data(0, 4096, 0, None);
            for i in 0..30u64 {
                g.insert(
                    TaskDesc::new("t")
                        .on_node((i % 2) as usize)
                        .flops(1e6 * (1 + i % 5) as f64)
                        .read_key(0)
                        .write(0, 4096),
                );
            }
            let report = cluster.execute(g.build());
            (report.makespan, report.tasks_executed)
        };
        assert_eq!(run(), run(), "{backend}");
    }
}

#[test]
fn multithread_am_mode_completes() {
    for backend in backends() {
        let mut cfg = small_cfg(backend, 2);
        cfg.multithread_am = true;
        cfg.mode = ExecMode::CostOnly;
        let mut cluster = Cluster::new(cfg);
        let mut g = GraphBuilder::new(2);
        g.data(0, 64 << 10, 0, None);
        for i in 0..20u64 {
            g.insert(
                TaskDesc::new("t")
                    .on_node((i % 2) as usize)
                    .flops(1e7)
                    .read_key(0)
                    .write(0, 64 << 10),
            );
        }
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend} (multithreaded ACTIVATE)");
        assert!(report.e2e_latency_us.count() > 0, "{backend}");
    }
}

#[test]
fn get_window_defers_low_priority_flows() {
    // A tiny window still completes everything.
    for backend in backends() {
        let mut cfg = small_cfg(backend, 2);
        cfg.get_window = 1;
        cfg.mode = ExecMode::CostOnly;
        let mut cluster = Cluster::new(cfg);
        let mut g = GraphBuilder::new(2);
        for i in 0..10u64 {
            let v = g.data(i, 256 << 10, 0, None);
            g.insert(
                TaskDesc::new("c")
                    .on_node(1)
                    .flops(1e6)
                    .priority(i as i64)
                    .read(v),
            );
        }
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        assert_eq!(report.e2e_latency_us.count(), 10, "{backend}");
    }
}

#[test]
fn control_dependencies_need_no_data_transfer() {
    // A size-0 version is a PaRSEC CTL flow: the ACTIVATE alone releases
    // the consumer; no GET DATA / put happens.
    for backend in backends() {
        let mut cluster = Cluster::new(small_cfg(backend, 2));
        let mut g = GraphBuilder::new(2);
        g.insert(TaskDesc::new("signal").on_node(0).flops(1e5).write(0, 0));
        g.insert(
            TaskDesc::new("waiter")
                .on_node(1)
                .flops(1e5)
                .read_key(0)
                .write(1, 16)
                .kernel(|ins| {
                    assert!(ins.is_empty(), "CTL inputs must not reach kernels");
                    vec![Bytes::from(vec![7u8; 16])]
                }),
        );
        let out = g.current(1).expect("output");
        let report = cluster.execute(g.build());
        assert!(report.complete(), "{backend}");
        assert_eq!(cluster.data(out).as_deref(), Some(&[7u8; 16][..]));
        // No put traffic at all — the dependency rode the ACTIVATE.
        assert_eq!(report.bytes_transferred(), 0, "{backend}");
        assert_eq!(report.e2e_latency_us.count(), 0, "{backend}");
        assert!(report.msg_latency_us.count() > 0, "{backend}");
    }
}

#[test]
fn multicast_tree_delivers_to_every_consumer() {
    // A wide broadcast through the binomial tree (Figure 1): every remote
    // consumer receives the data, the relay hops serve their subtrees, and
    // the end-to-end latency of leaf flows spans the whole tree.
    for backend in backends() {
        let run = |tree: Option<usize>| {
            let nodes = 8;
            let mut cfg = small_cfg(backend, nodes);
            cfg.bcast_tree_min = tree;
            let mut cluster = Cluster::new(cfg);
            let mut g = GraphBuilder::new(nodes);
            let payload = Bytes::from((0..64u8).collect::<Vec<u8>>());
            let v = g.data(0, 64, 0, Some(payload.clone()));
            for n in 1..nodes as u64 {
                g.insert(
                    TaskDesc::new("leaf")
                        .on_node(n as usize)
                        .flops(1e5)
                        .read(v)
                        .write(n, 64)
                        .kernel(|ins| vec![ins[0].clone()]),
                );
            }
            let outs: Vec<_> = (1..nodes as u64)
                .map(|n| g.current(n).expect("out"))
                .collect();
            let report = cluster.execute(g.build());
            assert!(report.complete(), "{backend} tree={tree:?}");
            for out in outs {
                assert_eq!(
                    cluster.data(out).as_deref(),
                    Some(&payload[..]),
                    "{backend} tree={tree:?}"
                );
            }
            report
        };
        let star = run(None);
        let tree = run(Some(2));
        // Both deliver 7 consumer flows; the tree sends fewer messages from
        // the root (log fan-out) but the same number of total flows.
        assert_eq!(star.e2e_latency_us.count(), 7, "{backend}");
        assert_eq!(tree.e2e_latency_us.count(), 7, "{backend}");
        let star_root_ams = star.engine_stats[0].am_sent.get();
        let tree_root_ams = tree.engine_stats[0].am_sent.get();
        assert!(
            tree_root_ams < star_root_ams,
            "{backend}: tree root must send fewer ACTIVATEs ({tree_root_ams} vs {star_root_ams})"
        );
        // Relay nodes served data (puts originate from non-root nodes too).
        let relay_puts: u64 = tree.engine_stats[1..]
            .iter()
            .map(|s| s.puts_started.get())
            .sum();
        assert!(
            relay_puts > 0,
            "{backend}: relays must serve their subtrees"
        );
    }
}

#[test]
fn multicast_tree_handles_ctl_flows() {
    for backend in backends() {
        let nodes = 8;
        let mut cfg = small_cfg(backend, nodes);
        cfg.bcast_tree_min = Some(2);
        let mut cluster = Cluster::new(cfg);
        let mut g = GraphBuilder::new(nodes);
        g.insert(TaskDesc::new("signal").on_node(0).flops(1e5).write(0, 0));
        for n in 1..nodes as u64 {
            g.insert(
                TaskDesc::new("waiter")
                    .on_node(n as usize)
                    .flops(1e5)
                    .read_key(0),
            );
        }
        let report = cluster.execute(g.build());
        assert!(
            report.complete(),
            "{backend}: CTL multicast must release all"
        );
        assert_eq!(report.bytes_transferred(), 0, "{backend}");
    }
}

#[test]
fn trace_records_task_timeline() {
    let mut cfg = small_cfg(BackendKind::Lci, 2);
    cfg.trace = true;
    let mut cluster = Cluster::new(cfg);
    let mut g = GraphBuilder::new(2);
    g.data(0, 1024, 0, None);
    for i in 0..6u64 {
        g.insert(
            TaskDesc::new(if i % 2 == 0 { "even" } else { "odd" })
                .on_node((i % 2) as usize)
                .flops(1e6)
                .read_key(0)
                .write(0, 1024),
        );
    }
    let report = cluster.execute(g.build());
    assert!(report.complete());
    let json = cluster.trace_json().expect("trace available");
    assert!(json.contains(r#""name":"even""#));
    assert!(json.contains(r#""name":"odd""#));
    assert!(json.contains("thread_name"));
    // Per-class stats agree with the 6 executions.
    let total: u64 = report.class_stats.iter().map(|(_, n, _)| n).sum();
    assert_eq!(total, 6);
    assert_eq!(report.class_stats.len(), 2);
}

#[test]
fn report_utilizations_are_sane() {
    let mut cluster = Cluster::new(small_cfg(BackendKind::Lci, 2));
    let mut g = GraphBuilder::new(2);
    g.data(0, 1 << 20, 0, None);
    for i in 0..40u64 {
        g.insert(
            TaskDesc::new("t")
                .on_node((i % 2) as usize)
                .flops(1e8)
                .read_key(0)
                .write(0, 1 << 20),
        );
    }
    let report = cluster.execute(g.build());
    assert!(report.complete());
    assert!(report.worker_util > 0.0 && report.worker_util <= 1.0);
    assert!(report.comm_util > 0.0 && report.comm_util <= 1.0);
    assert!(report.progress_util > 0.0 && report.progress_util <= 1.0);
}

/// A fan-heavy stress graph: versions with many consumers spread over the
/// nodes in interleaved insertion order (duplicate destination nodes,
/// mixed — including negative — priorities), write-after-read renaming,
/// and a final cross-node reduction. Exercises announce grouping, the
/// bucketed ready queue, and CTL flows.
fn stress_graph(nodes: usize) -> crate::TaskGraph {
    let mut g = GraphBuilder::new(nodes);
    stress_build(&mut g, nodes);
    g.build()
}

/// The body of [`stress_graph`] as a builder closure (island runs build one
/// graph per island).
fn stress_build(g: &mut GraphBuilder, nodes: usize) {
    for k in 0..4u64 {
        g.data(k, 256 + 64 * k as usize, (k as usize) % nodes, None);
    }
    let mut next_key = 100u64;
    for round in 0..6i64 {
        for k in 0..4u64 {
            // Interleaved consumers of version `k`-current across nodes,
            // several per node, priority varying with parity.
            for c in 0..7i64 {
                let node = ((c as usize) * 3 + round as usize) % nodes;
                g.insert(
                    TaskDesc::new("fan")
                        .on_node(node)
                        .flops(5e5)
                        .priority((c % 3) - 1 + round)
                        .read_key(k)
                        .write(next_key, 64),
                );
                next_key += 1;
            }
            // Rename the key: supersede the old version.
            g.insert(
                TaskDesc::new("bump")
                    .on_node((k as usize + round as usize) % nodes)
                    .flops(1e6)
                    .priority(round)
                    .read_key(k)
                    .write(k, 256),
            );
        }
    }
}

#[test]
fn island_execution_matches_on_fat_tree() {
    // Same byte-identity over the contended fat-tree fabric, with islands
    // aligned to pod boundaries (8 nodes, 4 pods of 2).
    use amt_netmodel::{FatTreeConfig, Topology};
    for backend in backends() {
        let mut cfg = ClusterConfig {
            nodes: 8,
            workers_per_node: 2,
            backend,
            mode: ExecMode::CostOnly,
            bcast_tree_min: Some(2),
            ..Default::default()
        };
        cfg.fabric.topology = Topology::FatTree(FatTreeConfig {
            pods: 4,
            ..Default::default()
        });
        let mono = {
            let mut cluster = Cluster::new(cfg.clone());
            let report = cluster.execute(stress_graph(8));
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        for islands in [2, 4] {
            let report = crate::execute_islands(&cfg, islands, |g| stress_build(g, 8));
            assert_eq!(report.to_json(), mono, "{backend} islands={islands}");
        }
    }
}

#[test]
fn fat_tree_cluster_completes_and_reports() {
    // The full protocol stack (ACTIVATE / GET DATA / put, multicast trees)
    // must run unchanged over the contended fat-tree fabric.
    use amt_netmodel::{FatTreeConfig, Topology};
    for backend in backends() {
        let mut cfg = small_cfg(backend, 4);
        cfg.mode = ExecMode::CostOnly;
        cfg.bcast_tree_min = Some(2);
        cfg.fabric.topology = Topology::FatTree(FatTreeConfig {
            pods: 2,
            link_bandwidth_gbps: 50.0, // narrower than one NIC
            spine_latency: amt_simnet::SimTime::from_ns(600),
        });
        let report = Cluster::new(cfg).execute(stress_graph(4));
        assert!(report.complete(), "{backend}");
        assert!(report.bytes_transferred() > 0, "{backend}");
    }
}

#[test]
fn flyweight_store_is_byte_identical_to_dense() {
    // The hash-backed per-node version store must make identical
    // scheduling decisions to the dense byte-per-version table — plain
    // and windowed, on every backend.
    for backend in backends() {
        let run = |flyweight: bool, windowed: bool| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 6,
                workers_per_node: 2,
                backend,
                mode: ExecMode::CostOnly,
                bcast_tree_min: Some(2),
                flyweight,
                ..Default::default()
            });
            let report = if windowed {
                cluster.execute_windowed(Box::new(ChainSource { len: 40, next: 0 }), 7)
            } else {
                cluster.execute(stress_graph(6))
            };
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        assert_eq!(run(false, false), run(true, false), "{backend}");
        assert_eq!(run(false, true), run(true, true), "{backend} windowed");
    }
}

#[test]
fn island_execution_is_byte_identical_to_monolithic() {
    // The conservative-lookahead island runner must reproduce the
    // monolithic engine's report — makespan, event count, every latency
    // statistic — byte-for-byte at any island count, on every backend.
    for backend in backends() {
        let cfg = ClusterConfig {
            nodes: 8,
            workers_per_node: 2,
            backend,
            mode: ExecMode::CostOnly,
            bcast_tree_min: Some(2),
            ..Default::default()
        };
        let mono = {
            let mut cluster = Cluster::new(cfg.clone());
            let report = cluster.execute(stress_graph(8));
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        for islands in [1, 2, 4, 8] {
            let report = crate::execute_islands(&cfg, islands, |g| stress_build(g, 8));
            assert!(report.complete(), "{backend} islands={islands}");
            assert_eq!(report.to_json(), mono, "{backend} islands={islands}");
        }
    }
}

#[test]
fn per_tag_zero_window_reproduces_flat_path() {
    // Exempting every runtime tag from the batching layer via per-tag
    // zero-window overrides must reproduce the flat funnel path byte for
    // byte — same report JSON — even though batching is globally enabled.
    use amt_comm::EngineConfig;
    const TAG_ACTIVATE: u64 = 1;
    const TAG_GETDATA: u64 = 2;
    for backend in backends() {
        let run = |engine: EngineConfig| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 6,
                workers_per_node: 2,
                backend,
                mode: ExecMode::CostOnly,
                engine,
                ..Default::default()
            });
            let report = cluster.execute(stress_graph(6));
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        let flat = run(EngineConfig::for_backend(backend));
        let exempted = run(EngineConfig::for_backend(backend)
            .with_batching(5_000, 4096)
            .with_batch_window_override(TAG_ACTIVATE, 0)
            .with_batch_window_override(TAG_GETDATA, 0));
        assert_eq!(
            exempted, flat,
            "{backend}: exempted tags diverged from flat"
        );
        // Meaningfulness guard: without the overrides the batching layer
        // engages on this workload and changes the schedule.
        let batched = run(EngineConfig::for_backend(backend).with_batching(5_000, 4096));
        assert_ne!(batched, flat, "{backend}: batching had no effect");
        // A shorter GET-only window keeps the run valid (tighter latency
        // for the critical path while announces keep the wide window).
        let tiered = run(EngineConfig::for_backend(backend)
            .with_batching(5_000, 4096)
            .with_batch_window_override(TAG_GETDATA, 250));
        assert!(!tiered.is_empty());
    }
}

#[test]
fn reference_scheduler_is_byte_identical_to_dense() {
    // The seed's HashMap/BinaryHeap structures and the dense datapath must
    // make identical scheduling decisions: same virtual time, same event
    // count, same latencies — on every backend, with multicast trees on.
    for backend in backends() {
        let run = |reference: bool| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 3,
                workers_per_node: 2,
                backend,
                mode: ExecMode::CostOnly,
                bcast_tree_min: Some(2),
                reference_sched: reference,
                ..Default::default()
            });
            let report = cluster.execute(stress_graph(3));
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        assert_eq!(run(false), run(true), "{backend}");
    }
}

#[test]
fn announce_groups_one_flow_per_remote_node() {
    // A version with many consumer tasks on few nodes must be announced
    // (and fetched) once per remote node, not once per consumer — and
    // identically under both scheduler datapaths.
    let run = |reference: bool| {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            workers_per_node: 2,
            reference_sched: reference,
            ..Default::default()
        });
        let mut g = GraphBuilder::new(3);
        let v = g.data(0, 512, 0, None);
        // 12 consumers interleaved over nodes 1 and 2 with mixed
        // priorities — the announce must group them into two dests.
        for c in 0..12i64 {
            g.insert(
                TaskDesc::new("c")
                    .on_node(1 + (c as usize) % 2)
                    .flops(1e5)
                    .priority(-(c % 4))
                    .read(v)
                    .write(100 + c as u64, 32),
            );
        }
        let report = cluster.execute(g.build());
        assert!(report.complete());
        // One remote flow per consumer node.
        assert_eq!(report.e2e_latency_us.count(), 2);
        report.to_json()
    };
    assert_eq!(run(false), run(true));
}

/// Incremental chain source for windowed tests: `len` tasks rotating over
/// 3 nodes, all reading/renaming key 0; every 5th task also reads a shared
/// initial version (whose later consumers are discovered long after its
/// init announce — the late-ACTIVATE path).
struct ChainSource {
    len: usize,
    next: usize,
}

impl crate::GraphSource for ChainSource {
    fn next_task(&mut self, g: &mut GraphBuilder) -> bool {
        if self.next >= self.len {
            return false;
        }
        if self.next == 0 {
            g.data(0, 8, 0, Some(Bytes::from(vec![1u8; 8])));
            g.data(99, 8, 0, Some(Bytes::from(vec![7u8; 8])));
        }
        let mut d = TaskDesc::new("inc")
            .on_node(self.next % 3)
            .flops(1e5)
            .read_key(0);
        if self.next.is_multiple_of(5) {
            d = d.read_key(99);
        }
        d = d.write(0, 8).kernel(|ins| {
            let extra = if ins.len() > 1 { ins[1][0] } else { 0 };
            vec![Bytes::from(
                ins[0]
                    .iter()
                    .map(|b| b.wrapping_add(1).wrapping_add(extra))
                    .collect::<Vec<u8>>(),
            )]
        });
        g.insert(d);
        self.next += 1;
        true
    }
}

fn chain_graph(len: usize) -> crate::TaskGraph {
    let mut g = GraphBuilder::new(3);
    let mut src = ChainSource { len, next: 0 };
    while crate::GraphSource::next_task(&mut src, &mut g) {}
    g.build()
}

#[test]
fn windowed_covering_window_is_byte_identical_to_full_unroll() {
    let full_graph = chain_graph(30);
    let last = crate::VersionId(full_graph.version_count() - 1);
    let oracle = full_graph.sequential_oracle();
    let mut full = Cluster::new(small_cfg(BackendKind::Lci, 3));
    let full_json = full.execute(full_graph).to_json();

    let mut win = Cluster::new(small_cfg(BackendKind::Lci, 3));
    let report = win.execute_windowed(Box::new(ChainSource { len: 30, next: 0 }), 1000);
    assert_eq!(report.to_json(), full_json);
    assert_eq!(win.data(last).as_deref(), oracle.get(&last).map(|b| &b[..]));
}

#[test]
fn windowed_small_window_completes_with_identical_payloads() {
    let full_graph = chain_graph(30);
    let last = crate::VersionId(full_graph.version_count() - 1);
    let oracle = full_graph.sequential_oracle();
    for window in [1, 3, 7] {
        let mut win = Cluster::new(small_cfg(BackendKind::Lci, 3));
        let report = win.execute_windowed(Box::new(ChainSource { len: 30, next: 0 }), window);
        assert!(report.complete(), "window {window}: {report:?}");
        assert_eq!(report.tasks_total, 30, "window {window}");
        assert_eq!(
            win.data(last).as_deref(),
            oracle.get(&last).map(|b| &b[..]),
            "window {window}: final payload diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Real substrate (execute_real): same graphs, real threads.

#[test]
fn real_exec_single_task() {
    let mut cluster = Cluster::new(small_cfg(BackendKind::Lci, 1));
    let mut g = GraphBuilder::new(1);
    g.insert(TaskDesc::new("t").flops(1e6).write(0, 64));
    let report = cluster.execute_real(g.build(), 1);
    assert!(report.complete());
    assert_eq!(report.tasks_executed, 1);
    assert_eq!(report.sim_events, 0, "no simulator under a real run");
}

#[test]
fn real_exec_chain_matches_oracle_at_multiple_thread_counts() {
    for threads in [1usize, 2, 3] {
        let mut cluster = Cluster::new(small_cfg(BackendKind::Lci, 3));
        let mut g = GraphBuilder::new(3);
        g.data(0, 8, 0, Some(Bytes::from(vec![1u8; 8])));
        for step in 0..9u64 {
            let node = (step % 3) as usize;
            g.insert(
                TaskDesc::new("inc")
                    .on_node(node)
                    .flops(1e5)
                    .read_key(0)
                    .write(0, 8)
                    .kernel(|ins| {
                        vec![Bytes::from(
                            ins[0].iter().map(|b| b + 1).collect::<Vec<u8>>(),
                        )]
                    }),
            );
        }
        let last = g.current(0).expect("final version");
        let graph = g.build();
        let oracle = graph.sequential_oracle();
        let want = oracle[&last].clone();
        let report = cluster.execute_real(graph, threads);
        assert!(report.complete(), "threads={threads}");
        assert_eq!(
            cluster.data(last).as_deref(),
            Some(&want[..]),
            "threads={threads}: real result diverged from sequential oracle"
        );
        // Steps 1..9 hop nodes: 8 flows ran the real ACTIVATE/GET/put
        // protocol (step 0 reads the initial version locally).
        assert_eq!(report.e2e_latency_us.count(), 8, "threads={threads}");
        assert!(report.bytes_transferred() >= 8 * 8, "threads={threads}");
    }
}

#[test]
fn real_exec_control_dependencies_cross_nodes_without_data() {
    let mut cluster = Cluster::new(small_cfg(BackendKind::Lci, 2));
    let mut g = GraphBuilder::new(2);
    g.insert(TaskDesc::new("produce").on_node(0).flops(1e5).write(7, 0));
    let ctl = g.current(7).expect("control version");
    g.insert(
        TaskDesc::new("gated")
            .on_node(1)
            .flops(1e5)
            .read(ctl)
            .write(8, 4)
            .kernel(|ins| {
                assert!(ins.is_empty(), "CTL inputs must not reach kernels");
                vec![Bytes::from_static(b"done")]
            }),
    );
    let out = g.current(8).expect("output");
    let report = cluster.execute_real(g.build(), 2);
    assert!(report.complete());
    assert_eq!(cluster.data(out).as_deref(), Some(&b"done"[..]));
    // The control flow completed end-to-end with zero put bytes.
    assert_eq!(report.e2e_latency_us.count(), 1);
    assert_eq!(report.bytes_transferred(), 0);
}

#[test]
fn real_exec_payloads_match_virtual_execution_bitwise() {
    let build = || {
        let mut g = GraphBuilder::new(2);
        let src = g.data(0, 4, 0, Some(Bytes::from(vec![3u8; 4])));
        g.insert(
            TaskDesc::new("left")
                .on_node(0)
                .flops(1e5)
                .read(src)
                .write(1, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b + 1).collect::<Vec<u8>>(),
                    )]
                }),
        );
        let l = g.current(1).unwrap();
        g.insert(
            TaskDesc::new("right")
                .on_node(1)
                .flops(1e5)
                .read(src)
                .write(2, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>(),
                    )]
                }),
        );
        let r = g.current(2).unwrap();
        g.insert(
            TaskDesc::new("join")
                .on_node(0)
                .flops(1e5)
                .read(l)
                .read(r)
                .write(3, 4)
                .kernel(|ins| {
                    vec![Bytes::from(
                        ins[0]
                            .iter()
                            .zip(ins[1].iter())
                            .map(|(a, b)| a ^ b)
                            .collect::<Vec<u8>>(),
                    )]
                }),
        );
        let out = g.current(3).unwrap();
        (g.build(), out)
    };
    let (vg, out) = build();
    let mut virt = Cluster::new(small_cfg(BackendKind::Lci, 2));
    assert!(virt.execute(vg).complete());
    let want = virt.data(out).expect("virtual payload");

    for threads in [1usize, 2, 4] {
        let (rg, out_r) = build();
        assert_eq!(out_r, out, "same construction, same version ids");
        let mut real = Cluster::new(small_cfg(BackendKind::Lci, 2));
        assert!(real.execute_real(rg, threads).complete());
        assert_eq!(
            real.data(out_r).as_deref(),
            Some(&want[..]),
            "threads={threads}"
        );
    }
}

#[test]
fn real_exec_source_unrolls_and_matches_windowed() {
    let full_graph = chain_graph(30);
    let last = crate::VersionId(full_graph.version_count() - 1);
    let oracle = full_graph.sequential_oracle();
    let mut real = Cluster::new(small_cfg(BackendKind::Lci, 3));
    let report = real.execute_real_source(Box::new(ChainSource { len: 30, next: 0 }), 2);
    assert!(report.complete());
    assert_eq!(report.tasks_total, 30);
    assert_eq!(
        real.data(last).as_deref(),
        oracle.get(&last).map(|b| &b[..])
    );
}

#[test]
fn real_then_virtual_data_stores_supersede_each_other() {
    let mut cluster = Cluster::new(small_cfg(BackendKind::Lci, 1));
    let build = |tag: u8| {
        let mut g = GraphBuilder::new(1);
        g.insert(
            TaskDesc::new("w")
                .flops(1e5)
                .write(0, 1)
                .kernel(move |_| vec![Bytes::from(vec![tag])]),
        );
        let out = g.current(0).unwrap();
        (g.build(), out)
    };
    let (g1, v1) = build(1);
    cluster.execute_real(g1, 1);
    assert_eq!(cluster.data(v1).as_deref(), Some(&[1u8][..]));
    let (g2, v2) = build(2);
    cluster.execute(g2);
    assert_eq!(
        cluster.data(v2).as_deref(),
        Some(&[2u8][..]),
        "virtual run must clear stale real-run data"
    );
}

// ---------------------------------------------------------------------
// Self-tuning controller (engine.tune)
// ---------------------------------------------------------------------

/// Like [`stress_build`] but with ~6 KB version payloads: above the
/// static 4 KiB eager-put ceiling, below the adaptive one — every remote
/// fetch is a near-miss until the controller raises the destination's
/// threshold mid-run.
fn adaptive_build(g: &mut GraphBuilder, nodes: usize) {
    for k in 0..4u64 {
        g.data(k, 6_000, (k as usize) % nodes, None);
    }
    let mut next_key = 100u64;
    for round in 0..6i64 {
        for k in 0..4u64 {
            for c in 0..5i64 {
                let node = ((c as usize) * 3 + round as usize) % nodes;
                g.insert(
                    TaskDesc::new("fan")
                        .on_node(node)
                        .flops(5e5)
                        .priority((c % 3) - 1 + round)
                        .read_key(k)
                        .write(next_key, 6_000),
                );
                next_key += 1;
            }
            g.insert(
                TaskDesc::new("bump")
                    .on_node((k as usize + round as usize) % nodes)
                    .flops(1e6)
                    .priority(round)
                    .read_key(k)
                    .write(k, 6_000),
            );
        }
    }
}

/// A tuning config that reaches several adaptation epochs inside a short
/// test run.
fn fast_tune() -> amt_comm::TuneConfig {
    amt_comm::TuneConfig {
        enabled: true,
        epoch_ns: 20_000,
        ..Default::default()
    }
}

#[test]
fn adaptive_runs_are_byte_identical_at_any_island_count() {
    // An adapting run must stay exactly as deterministic as a static one:
    // every controller signal is node-local and epochs are virtual-time
    // keyed, so the island runner reproduces the monolithic report
    // byte-for-byte — on every backend.
    for backend in backends() {
        let mut cfg = ClusterConfig {
            nodes: 8,
            workers_per_node: 2,
            backend,
            mode: ExecMode::CostOnly,
            bcast_tree_min: Some(2),
            ..Default::default()
        };
        cfg.engine.tune = fast_tune();
        let mono = {
            let mut cluster = Cluster::new(cfg.clone());
            let mut g = GraphBuilder::new(8);
            adaptive_build(&mut g, 8);
            let report = cluster.execute(g.build());
            assert!(report.complete(), "{backend}");
            report.to_json()
        };
        for islands in [1, 2, 4] {
            let report = crate::execute_islands(&cfg, islands, |g| adaptive_build(g, 8));
            assert_eq!(report.to_json(), mono, "{backend} islands={islands}");
        }
    }
}

#[test]
fn adaptive_thresholds_never_change_delivered_bytes() {
    // The controller moves protocol choices (eager vs rendezvous, batching,
    // fetch depth) — never payloads. Delivered put bytes must match the
    // static run on every backend, and agree across backends.
    let mut delivered = Vec::new();
    for backend in backends() {
        let run = |adaptive: bool| {
            let mut cfg = ClusterConfig {
                nodes: 4,
                workers_per_node: 2,
                backend,
                mode: ExecMode::CostOnly,
                ..Default::default()
            };
            if adaptive {
                cfg.engine.tune = fast_tune();
            }
            let mut g = GraphBuilder::new(4);
            adaptive_build(&mut g, 4);
            let report = Cluster::new(cfg).execute(g.build());
            assert!(report.complete(), "{backend} adaptive={adaptive}");
            report.bytes_transferred()
        };
        let (stat, adap) = (run(false), run(true));
        assert!(stat > 0, "{backend}");
        assert_eq!(stat, adap, "{backend}: adaptation changed delivered bytes");
        delivered.push(adap);
    }
    assert!(
        delivered.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on delivered payload bytes: {delivered:?}"
    );
}

#[test]
fn adaptive_controller_converges_on_the_6k_mode() {
    // AIMD convergence end-to-end: a producer/consumer chain of 6 KB
    // versions must raise the producer's eager threshold just past the
    // mode, visible through the metrics-report tune counters.
    let mut cfg = ClusterConfig {
        nodes: 2,
        workers_per_node: 2,
        backend: BackendKind::Lci,
        mode: ExecMode::CostOnly,
        metrics: true,
        ..Default::default()
    };
    cfg.engine.tune = fast_tune();
    let mut g = GraphBuilder::new(2);
    let mut key = 0u64;
    for _ in 0..40 {
        g.insert(
            TaskDesc::new("prod")
                .on_node(0)
                .flops(1e4)
                .write(key, 6_000),
        );
        g.insert(
            TaskDesc::new("cons")
                .on_node(1)
                .flops(1e4)
                .read_key(key)
                .write(key + 1, 0),
        );
        // Chain rounds through the zero-byte token.
        g.insert(
            TaskDesc::new("next")
                .on_node(0)
                .flops(1e4)
                .read_key(key + 1)
                .write(key + 2, 0),
        );
        key += 3;
    }
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute(g.build());
    assert!(report.complete());
    let m = cluster.metrics_report(&report);
    let counter = |name: &str| {
        m.stages
            .counters()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    assert!(counter("tune.epochs") > 0, "controller never ran an epoch");
    assert!(counter("tune.eager_raise") >= 1, "no eager raise happened");
    let threshold = counter("tune.n0.d1.eager_put_max");
    assert!(
        (6_000..=12_032).contains(&(threshold as usize)),
        "producer threshold {threshold} does not cover the 6 KB mode"
    );
}
