//! Island-parallel execution: conservative-lookahead (YAWNS-style) parallel
//! DES over contiguous node partitions.
//!
//! The cluster's nodes are split into `islands` contiguous ranges. Each
//! island is a full [`Cluster`] instance — its own [`amt_simnet::Sim`]
//! event queue, fabric partition, engines, and node runtimes for its
//! resident range — running on its own OS thread. Islands advance in
//! *rounds*: every round, the coordinator computes the global minimum next
//! event time `M` across islands, each island then processes every event
//! strictly before the horizon `H = M + L` (where `L` is the fabric's
//! conservative lookahead, [`amt_netmodel::FabricConfig::lookahead`]), and
//! the islands exchange the chunks their fabrics diverted to per-island
//! outboxes. Any chunk produced by an event at time `t ≥ M` materializes on
//! another island at `t + L ≥ H`, so exchanged chunks always land at or
//! beyond the horizon — no island ever receives an event in its past, and
//! no rollback is needed.
//!
//! **Determinism.** Results are byte-identical to a monolithic
//! [`Cluster::execute`] at any island count. Event *sequence numbers*
//! differ across island counts (they are insertion-order artifacts), but
//! the fabric's arrival calendars make every observable effect a pure
//! function of virtual time and stable per-source chunk keys: all paths
//! into a shared resource buffer chunks per `(resource, instant)` and a
//! single drain charges them in ascending `(src, chunk_seq)` order. The
//! coordinator additionally reproduces the monolithic report's merge order
//! (global node order) so even floating-point statistics match bit-for-bit
//! — [`RunReport::to_json`] is compared as one string in tests.

use std::ops::Range;
use std::sync::{Barrier, Mutex};

use amt_netmodel::{Fabric, RemoteChunk, Topology};
use amt_simnet::{OnlineStats, SimTime};

use crate::cluster::{Cluster, IslandPartial, RunReport};
use crate::config::ClusterConfig;
use crate::graph::{GraphBuilder, GraphHandle};

/// Contiguous node range of island `i` of `islands` over `nodes` nodes.
pub fn island_range(nodes: usize, islands: usize, i: usize) -> Range<usize> {
    let chunk = nodes.div_ceil(islands);
    (i * chunk).min(nodes)..((i + 1) * chunk).min(nodes)
}

/// Island index owning `node`.
fn island_of(nodes: usize, islands: usize, node: usize) -> usize {
    node / nodes.div_ceil(islands)
}

/// Shared round state: one slot per island for its next event time, and one
/// mailbox per island for chunks in flight toward it.
struct Coord {
    barrier: Barrier,
    next_times: Mutex<Vec<Option<SimTime>>>,
    mailboxes: Vec<Mutex<Vec<RemoteChunk>>>,
}

/// Execute the graph produced by `build` on `islands` parallel islands and
/// return a report byte-identical (via [`RunReport::to_json`]) to a
/// monolithic [`Cluster::execute`] of the same graph.
///
/// `build` is invoked once per island (each island unrolls its own copy of
/// the task graph — graphs are cheap relative to simulation state, and this
/// keeps every island self-contained and `Send`-free).
///
/// Panics if the configuration cannot be partitioned: windowed discovery,
/// tracing, and metrics are cluster-global (single-island only), and
/// fat-tree runs require island boundaries to align with pod boundaries so
/// the spine latency is a valid lookahead.
pub fn execute_islands(
    cfg: &ClusterConfig,
    islands: usize,
    build: impl Fn(&mut GraphBuilder) + Sync,
) -> RunReport {
    assert!(islands >= 1, "need at least one island");
    assert!(
        islands <= cfg.nodes,
        "more islands ({islands}) than nodes ({})",
        cfg.nodes
    );
    assert!(
        !cfg.trace && !cfg.metrics,
        "trace/metrics are cluster-global; run them on a single island"
    );
    let mut fabric_cfg = cfg.fabric.clone();
    fabric_cfg.nodes = cfg.nodes;
    if islands > 1 {
        if let Topology::FatTree(_) = &fabric_cfg.topology {
            for i in 1..islands {
                let b = island_range(cfg.nodes, islands, i).start;
                if b < cfg.nodes {
                    assert_ne!(
                        fabric_cfg.pod_of(b - 1),
                        fabric_cfg.pod_of(b),
                        "island boundary at node {b} splits a pod; align islands to pods \
                         so the spine latency is a valid lookahead"
                    );
                }
            }
        }
    }
    let lookahead = fabric_cfg.lookahead();
    assert!(
        lookahead > SimTime::ZERO,
        "fabric lookahead must be nonzero for island execution"
    );

    let coord = Coord {
        barrier: Barrier::new(islands),
        next_times: Mutex::new(vec![None; islands]),
        mailboxes: (0..islands).map(|_| Mutex::new(Vec::new())).collect(),
    };

    let partials: Vec<IslandPartial> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(islands);
        for i in 0..islands {
            let coord = &coord;
            let build = &build;
            handles.push(scope.spawn(move || run_island(cfg, islands, i, coord, build)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("island thread panicked"))
            .collect()
    });

    merge_partials(cfg, partials)
}

/// One island's thread body: build the world, seed it, run the round loop,
/// and collect the partial report.
fn run_island(
    cfg: &ClusterConfig,
    islands: usize,
    i: usize,
    coord: &Coord,
    build: &(impl Fn(&mut GraphBuilder) + Sync),
) -> IslandPartial {
    let local = island_range(cfg.nodes, islands, i);
    let mut cluster = Cluster::new_partition(cfg.clone(), local);
    let mut b = GraphBuilder::new(cfg.nodes);
    build(&mut b);
    let graph = GraphHandle::new(b.build());
    let start = cluster.begin_execution(&graph, None);
    let lookahead = cluster.config().fabric.lookahead();
    let fabric = cluster.fabric_handle();
    let nodes = cfg.nodes;

    loop {
        // 1. Publish this island's next event time; wait for everyone.
        let next = cluster.sim_mut().next_event_time();
        coord.next_times.lock().unwrap()[i] = next;
        coord.barrier.wait();
        // 2. Everyone reads the same global minimum.
        let m = coord
            .next_times
            .lock()
            .unwrap()
            .iter()
            .flatten()
            .min()
            .copied();
        let Some(m) = m else { break };
        let horizon = m + lookahead;
        // 3. Process every event strictly before the horizon; chunks for
        //    other islands pile up in the fabric outbox.
        cluster.sim_mut().run_before(horizon);
        // 4. Route the outbox into the destination islands' mailboxes.
        let outbox = fabric.borrow_mut().take_outbox();
        if !outbox.is_empty() {
            let mut sorted: Vec<Vec<RemoteChunk>> = (0..islands).map(|_| Vec::new()).collect();
            for rc in outbox {
                sorted[island_of(nodes, islands, rc.dst())].push(rc);
            }
            for (j, chunks) in sorted.into_iter().enumerate() {
                if !chunks.is_empty() {
                    coord.mailboxes[j].lock().unwrap().extend(chunks);
                }
            }
        }
        coord.barrier.wait();
        // 5. Inject what the other islands sent us. Injection order across
        //    sources is irrelevant: the calendars re-establish the
        //    deterministic (src, chunk_seq) drain order per instant.
        let mine = std::mem::take(&mut *coord.mailboxes[i].lock().unwrap());
        if !mine.is_empty() {
            Fabric::inject_remote(&fabric, cluster.sim_mut(), mine);
        }
        // No third barrier needed: an island writes its round-r+1 slot and
        // mailbox pushes only after barrier 2 of round r *and* its own
        // mailbox take, so no read of round-r state can race them.
    }

    cluster.collect_partial(&graph, start)
}

/// Assemble the global [`RunReport`] from per-island partials, reproducing
/// the monolithic assembly (merge order, float operations) exactly.
fn merge_partials(cfg: &ClusterConfig, partials: Vec<IslandPartial>) -> RunReport {
    let makespan = partials.iter().map(|p| p.final_now).max().unwrap();
    let now = makespan; // islands start at t=0, like a fresh monolithic run
    let tasks_total = partials[0].tasks_total;
    let sim_events = partials.iter().map(|p| p.sim_events).sum();
    let schedule_past_clamped = partials.iter().map(|p| p.schedule_past_clamped).sum();

    let mut e2e = OnlineStats::new();
    let mut msg = OnlineStats::new();
    let mut req = OnlineStats::new();
    let mut executed = 0;
    let mut worker_busy = SimTime::ZERO;
    let mut classes: std::collections::HashMap<&'static str, (u64, SimTime)> =
        std::collections::HashMap::new();
    // Per-node stats in global node order — the monolithic fold.
    for p in &partials {
        for (ex, busy, ne2e, nmsg, nreq) in &p.node_stats {
            e2e.merge(ne2e);
            msg.merge(nmsg);
            req.merge(nreq);
            executed += ex;
            worker_busy += *busy;
        }
        for (name, n, busy) in &p.classes {
            let e = classes.entry(name).or_insert((0, SimTime::ZERO));
            e.0 += n;
            e.1 += *busy;
        }
    }
    let mut class_stats: Vec<(String, u64, SimTime)> = classes
        .into_iter()
        .map(|(k, (n, b))| (k.to_string(), n, b))
        .collect();
    class_stats.sort_by_key(|c| std::cmp::Reverse(c.2));

    let total_workers = (cfg.nodes * cfg.workers_per_node) as f64;
    let span = makespan.as_secs_f64().max(1e-12);
    let worker_util = worker_busy.as_secs_f64() / (span * total_workers);
    // Utilizations at the global end time, summed in global node order —
    // the same left fold (and the same divisions) as the monolithic report.
    let utilization = |busy: SimTime| -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            busy.min(now).as_secs_f64() / now.as_secs_f64()
        }
    };
    let comm_util = partials
        .iter()
        .flat_map(|p| p.core_busy.iter())
        .map(|&(c, _)| utilization(c))
        .sum::<f64>()
        / cfg.nodes as f64;
    let progress_util = partials
        .iter()
        .flat_map(|p| p.core_busy.iter())
        .filter_map(|&(_, pb)| pb.map(&utilization))
        .sum::<f64>()
        / cfg.nodes as f64;

    RunReport {
        makespan,
        tasks_executed: executed,
        tasks_total,
        e2e_latency_us: e2e,
        msg_latency_us: msg,
        request_latency_us: req,
        worker_busy,
        worker_util,
        comm_util,
        progress_util,
        engine_stats: partials.into_iter().flat_map(|p| p.engine_stats).collect(),
        class_stats,
        sim_events,
        schedule_past_clamped,
        pool: None,
    }
}
