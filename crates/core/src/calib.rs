//! The DES-calibration loop: measured wall-clock costs from a real run,
//! packaged as a stable-JSON profile the simulator's [`CostModel`] can
//! load back (`--calibrate-out` → `--cost-model`).
//!
//! A [`CalibrationProfile`] aggregates two sample families collected by
//! `Cluster::execute_real` with metrics enabled:
//!
//! * **per task class** — kernel busy nanoseconds per execution, keyed by
//!   task name (`gemm`, `potrf`, …);
//! * **per record kind** — handler durations of the protocol records
//!   ([`REC_ACTIVATE`], [`REC_GET_REQUEST`], [`REC_ARRIVAL`]) plus the
//!   task dispatch overhead around the kernel ([`REC_TASK_OVERHEAD`]).
//!
//! Each family is summarized as `{count, median_ns, mean_ns}` — all
//! integers, BTreeMap-ordered — so serialization is **byte-stable**:
//! `from_json(to_json(p))` re-serializes to the identical string.
//! [`CostModel::from_profile`](crate::CostModel::from_profile) maps the
//! medians onto the simulator's charges, closing the loop.
//!
//! Schema identifier: [`CALIB_SCHEMA`] (`amtlc-calib-v1`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use amt_simnet::json_escape;

/// Schema identifier emitted in (and required of) every profile.
pub const CALIB_SCHEMA: &str = "amtlc-calib-v1";

/// Record-cost key: ACTIVATE handler duration at the consumer.
pub const REC_ACTIVATE: &str = "activate_record_ns";
/// Record-cost key: GET DATA handler duration at the owner.
pub const REC_GET_REQUEST: &str = "get_request_ns";
/// Record-cost key: put-arrival handler duration at the consumer.
pub const REC_ARRIVAL: &str = "arrival_ns";
/// Record-cost key: task dispatch overhead (execution wall time minus
/// kernel wall time).
pub const REC_TASK_OVERHEAD: &str = "task_overhead_ns";

/// Summary of one measured cost population (integer ns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSummary {
    /// Samples observed.
    pub count: u64,
    /// Lower median of the samples.
    pub median_ns: u64,
    /// Rounded-down arithmetic mean.
    pub mean_ns: u64,
}

impl CostSummary {
    /// Summarize a sample vector (sorted internally; lower median).
    pub fn from_samples(mut samples: Vec<u64>) -> CostSummary {
        if samples.is_empty() {
            return CostSummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        CostSummary {
            count,
            median_ns: samples[(samples.len() - 1) / 2],
            mean_ns: samples.iter().sum::<u64>() / count,
        }
    }
}

/// Measured cost profile of one real execution (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationProfile {
    /// Worker threads the measuring run used.
    pub threads: usize,
    /// Tasks the measuring run executed.
    pub tasks: u64,
    /// Per-class kernel busy times, keyed by task name.
    pub classes: BTreeMap<String, CostSummary>,
    /// Per-record handler durations, keyed by the `REC_*` constants.
    pub records: BTreeMap<String, CostSummary>,
}

fn write_family(out: &mut String, family: &BTreeMap<String, CostSummary>) {
    out.push('{');
    let mut first = true;
    for (name, c) in family {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            r#""{}":{{"count":{},"median_ns":{},"mean_ns":{}}}"#,
            json_escape(name),
            c.count,
            c.median_ns,
            c.mean_ns
        );
    }
    out.push('}');
}

impl CalibrationProfile {
    /// Stable JSON serialization: BTreeMap order, integers only —
    /// byte-identical across identical runs and across a
    /// [`CalibrationProfile::from_json`] round trip.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"schema":"{CALIB_SCHEMA}","threads":{},"tasks":{},"classes":"#,
            self.threads, self.tasks
        );
        write_family(&mut out, &self.classes);
        out.push_str(r#","records":"#);
        write_family(&mut out, &self.records);
        out.push('}');
        out
    }

    /// Parse a profile back from its JSON form (schema-checked).
    pub fn from_json(text: &str) -> Result<CalibrationProfile, String> {
        let v = parse_json(text)?;
        let obj = v.as_obj("profile")?;
        let schema = get(obj, "schema")?.as_str("schema")?;
        if schema != CALIB_SCHEMA {
            return Err(format!("schema {schema:?}, expected {CALIB_SCHEMA:?}"));
        }
        let family = |name: &str| -> Result<BTreeMap<String, CostSummary>, String> {
            let fam = get(obj, name)?.as_obj(name)?;
            fam.iter()
                .map(|(k, v)| {
                    let c = v.as_obj(k)?;
                    Ok((
                        k.clone(),
                        CostSummary {
                            count: get(c, "count")?.as_u64("count")?,
                            median_ns: get(c, "median_ns")?.as_u64("median_ns")?,
                            mean_ns: get(c, "mean_ns")?.as_u64("mean_ns")?,
                        },
                    ))
                })
                .collect()
        };
        Ok(CalibrationProfile {
            threads: get(obj, "threads")?.as_u64("threads")? as usize,
            tasks: get(obj, "tasks")?.as_u64("tasks")?,
            classes: family("classes")?,
            records: family("records")?,
        })
    }
}

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough for the profile
// schema (objects, strings, unsigned integers). No serde in this
// workspace by design.

pub(crate) enum JVal {
    Obj(Vec<(String, JVal)>),
    Num(u64),
    Str(String),
}

impl JVal {
    pub(crate) fn as_obj(&self, what: &str) -> Result<&Vec<(String, JVal)>, String> {
        match self {
            JVal::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JVal::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JVal::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected an unsigned integer")),
        }
    }
}

pub(crate) fn get<'a>(obj: &'a [(String, JVal)], key: &str) -> Result<&'a JVal, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

pub(crate) fn parse_json(text: &str) -> Result<JVal, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JVal::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JVal::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JVal::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .expect("digits are utf8")
                .parse()
                .map(JVal::Num)
                .map_err(|e| format!("number at offset {start}: {e}"))
        }
        _ => Err(format!("unexpected value at offset {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(cp).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CalibrationProfile {
        let mut classes = BTreeMap::new();
        classes.insert("gemm".to_string(), CostSummary::from_samples(vec![5, 3, 9]));
        classes.insert(
            "potrf".to_string(),
            CostSummary::from_samples(vec![100, 200]),
        );
        let mut records = BTreeMap::new();
        records.insert(
            REC_ACTIVATE.to_string(),
            CostSummary {
                count: 7,
                median_ns: 1200,
                mean_ns: 1500,
            },
        );
        records.insert(
            REC_TASK_OVERHEAD.to_string(),
            CostSummary {
                count: 5,
                median_ns: 800,
                mean_ns: 900,
            },
        );
        CalibrationProfile {
            threads: 4,
            tasks: 5,
            classes,
            records,
        }
    }

    #[test]
    fn summary_median_is_lower_median() {
        let c = CostSummary::from_samples(vec![9, 3, 5]);
        assert_eq!((c.count, c.median_ns, c.mean_ns), (3, 5, 5));
        let c = CostSummary::from_samples(vec![10, 20]);
        assert_eq!(c.median_ns, 10, "even count takes the lower median");
        assert_eq!(CostSummary::from_samples(vec![]), CostSummary::default());
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let p = sample_profile();
        let json = p.to_json();
        assert!(json.starts_with(r#"{"schema":"amtlc-calib-v1""#), "{json}");
        let q = CalibrationProfile::from_json(&json).expect("parse back");
        assert_eq!(p, q);
        assert_eq!(json, q.to_json(), "round trip is byte-identical");
    }

    #[test]
    fn parser_tolerates_whitespace_and_rejects_garbage() {
        let json = sample_profile().to_json().replace(",", " ,\n  ");
        let q = CalibrationProfile::from_json(&json).expect("whitespace ok");
        assert_eq!(q.threads, 4);
        assert!(CalibrationProfile::from_json("{}").is_err());
        assert!(CalibrationProfile::from_json("not json").is_err());
        let wrong = sample_profile().to_json().replace("calib-v1", "calib-v9");
        let err = CalibrationProfile::from_json(&wrong).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
