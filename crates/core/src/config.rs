//! Cluster and cost-model configuration.

use std::collections::BTreeMap;

use amt_comm::{BackendKind, EngineConfig};
use amt_netmodel::FabricConfig;
use amt_simnet::SimTime;

use crate::calib::{
    CalibrationProfile, REC_ACTIVATE, REC_ARRIVAL, REC_GET_REQUEST, REC_TASK_OVERHEAD,
};

/// Whether kernels really execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run real kernels on real bytes; results verifiable.
    #[default]
    Numeric,
    /// Skip kernels; move declared sizes only. Identical protocol traffic.
    CostOnly,
}

/// Task-execution cost model, calibrated to the paper's platform
/// (AMD EPYC 7742 @ 2.25 GHz: ~36 double-precision GFLOP/s per core peak).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Peak double-precision GFLOP/s per worker core.
    pub gflops_per_worker: f64,
    /// Fixed scheduling overhead charged per task execution.
    pub task_overhead: SimTime,
    /// Worker-side cost of submitting one command to the communication
    /// thread (funneled mode).
    pub submit_cost: SimTime,
    /// Communication-thread cost of processing one ACTIVATE record
    /// (unpack, iterate local descendants, decide priority — §4.3).
    pub activate_record_cost: SimTime,
    /// Communication-thread cost of serving one GET DATA request at the
    /// data owner.
    pub get_request_cost: SimTime,
    /// Communication-thread cost of emitting one GET DATA request at the
    /// consumer (queue pop + record build; the wire-send cost is charged by
    /// the engine).
    pub get_send_cost: SimTime,
    /// Communication-thread cost of releasing dependencies on data arrival.
    pub arrival_cost: SimTime,
    /// Measured kernel wall time per task class, keyed by task name.
    /// Populated by [`CostModel::from_profile`]; when a task's class is
    /// present here, [`CostModel::task_charge`] uses the measured time
    /// instead of the flops/throughput formula. Empty by default.
    pub class_cost: BTreeMap<String, SimTime>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gflops_per_worker: 36.0,
            task_overhead: SimTime::from_ns(1500),
            submit_cost: SimTime::from_ns(80),
            // The paper (§4.3) observes that ACTIVATE callbacks are long:
            // unpack each aggregated record, iterate local descendants,
            // evaluate priorities. Microsecond-class, like real PaRSEC.
            activate_record_cost: SimTime::from_ns(2800),
            get_request_cost: SimTime::from_ns(900),
            get_send_cost: SimTime::from_ns(150),
            arrival_cost: SimTime::from_ns(900),
            class_cost: BTreeMap::new(),
        }
    }
}

impl CostModel {
    /// Virtual duration of a task executing `flops` floating-point
    /// operations at `efficiency` (0, 1] of peak.
    pub fn task_duration(&self, flops: f64, efficiency: f64) -> SimTime {
        debug_assert!(efficiency > 0.0 && efficiency <= 1.0);
        self.task_overhead + SimTime::from_ns_f64(flops / (self.gflops_per_worker * efficiency))
    }

    /// Virtual duration of a task of class `name`: the measured kernel
    /// time from [`CostModel::class_cost`] when the class was calibrated
    /// (plus `task_overhead`, which calibration also replaces with its
    /// measured median), otherwise the [`CostModel::task_duration`]
    /// formula. This is the charge the scheduler applies per execution.
    pub fn task_charge(&self, name: &str, flops: f64, efficiency: f64) -> SimTime {
        match self.class_cost.get(name) {
            Some(&kernel) => self.task_overhead + kernel,
            None => self.task_duration(flops, efficiency),
        }
    }

    /// Overlay measured medians from a real-execution
    /// [`CalibrationProfile`] (`--calibrate-out` → `--cost-model`): every
    /// calibrated task class gets its measured kernel median, and the
    /// ACTIVATE / GET DATA / arrival record costs and the task dispatch
    /// overhead move to their measured medians. Charges the real path
    /// cannot observe (`get_send_cost`, `submit_cost`, throughput for
    /// uncalibrated classes) keep their current values.
    pub fn from_profile(profile: &CalibrationProfile) -> CostModel {
        let mut cost = CostModel::default();
        cost.apply_profile(profile);
        cost
    }

    /// In-place form of [`CostModel::from_profile`], overlaying onto an
    /// already-customized model.
    pub fn apply_profile(&mut self, profile: &CalibrationProfile) {
        for (name, summary) in &profile.classes {
            self.class_cost
                .insert(name.clone(), SimTime::from_ns(summary.median_ns));
        }
        let set = |slot: &mut SimTime, key: &str| {
            if let Some(s) = profile.records.get(key) {
                if s.count > 0 {
                    *slot = SimTime::from_ns(s.median_ns);
                }
            }
        };
        set(&mut self.activate_record_cost, REC_ACTIVATE);
        set(&mut self.get_request_cost, REC_GET_REQUEST);
        set(&mut self.arrival_cost, REC_ARRIVAL);
        set(&mut self.task_overhead, REC_TASK_OVERHEAD);
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker cores per node. The paper uses 128-core nodes: 127 workers
    /// with the MPI backend (1 communication thread), 126 with LCI
    /// (+1 progress thread); single-node runs use all 128 (§6.1.2).
    pub workers_per_node: usize,
    /// Which communication backend to use.
    pub backend: BackendKind,
    /// Multithreaded ACTIVATE sends (§6.4.3).
    pub multithread_am: bool,
    /// Maximum GET DATA requests in flight per node before lower-priority
    /// flows are deferred (§4.1 prioritization).
    pub get_window: usize,
    /// Byte budget for in-flight GET DATA payloads (0 = unlimited). Models
    /// PaRSEC's priority-relative deferral: fetches beyond the budget wait
    /// in the priority queue, so critical-path flows see queue-free
    /// latency instead of burst serialization. At least
    /// `get_window_min_flows` fetches proceed regardless of size.
    pub get_window_bytes: usize,
    /// Minimum concurrent fetches irrespective of the byte budget.
    pub get_window_min_flows: usize,
    /// Broadcast versions to `Some(k)` or more remote nodes through a
    /// binomial multicast tree (Figure 1): children receive the data, then
    /// forward the announcement down their subtree. `None` = always direct
    /// fan-out from the producer.
    pub bcast_tree_min: Option<usize>,
    /// Multicast tree arity: `Some(k)` splits wide fan-outs into k-way
    /// subtrees ([`crate::records::tree_children_k`]) instead of the
    /// default binomial recursive halving. Only meaningful together with
    /// [`ClusterConfig::bcast_tree_min`]; `k < 2` is rejected at cluster
    /// construction.
    pub multicast_k: Option<usize>,
    /// Record a Chrome-trace timeline of task executions, communication /
    /// progress-thread activity, message flows, and queue-depth counters
    /// (see [`crate::Cluster::trace_json`]). Adds memory proportional to
    /// event count; off by default.
    pub trace: bool,
    /// Record per-stage message-lifecycle histograms and the
    /// computation/communication overlap integrator (see
    /// [`crate::Cluster::metrics_report`]). Off by default.
    pub metrics: bool,
    /// Execution mode.
    pub mode: ExecMode,
    /// Task cost model.
    pub cost: CostModel,
    /// Fabric parameters (node count is overridden by `nodes`).
    pub fabric: FabricConfig,
    /// Engine parameters (backend/multithread fields are overridden).
    pub engine: EngineConfig,
    /// Run the scheduler on the seed's reference structures
    /// (`HashMap` data store, `BinaryHeap` ready/GET queues, per-event
    /// allocations) instead of the dense datapath. Virtual-time results are
    /// identical either way; this exists for differential tests and the
    /// `sched_overhead` benchmark baseline.
    pub reference_sched: bool,
    /// Flyweight per-node state for wide clusters: the per-node version
    /// store becomes a hash map over the versions that node actually
    /// touches instead of a byte per version cluster-wide — O(total
    /// versions × nodes) → O(total versions) across the cluster.
    /// Scheduling decisions and reports are byte-identical; dense is
    /// faster per access and remains the default at paper scale (≤ 32
    /// nodes). Ignored under `reference_sched`.
    pub flyweight: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            workers_per_node: 8,
            backend: BackendKind::Lci,
            multithread_am: false,
            get_window: 512,
            get_window_bytes: 0,
            get_window_min_flows: 4,
            bcast_tree_min: None,
            multicast_k: None,
            trace: false,
            metrics: false,
            mode: ExecMode::Numeric,
            cost: CostModel::default(),
            fabric: FabricConfig::default(),
            engine: EngineConfig::default(),
            reference_sched: false,
            flyweight: false,
        }
    }
}

impl ClusterConfig {
    /// The paper's node configuration: 128 cores, communication thread
    /// pinned (+ progress thread for LCI), remaining cores as workers.
    pub fn expanse_node_workers(backend: BackendKind, nodes: usize) -> usize {
        if nodes == 1 {
            128
        } else {
            match backend {
                BackendKind::Mpi => 127,
                BackendKind::Lci | BackendKind::LciDirect => 126,
            }
        }
    }

    /// Paper-faithful configuration for `nodes` nodes.
    pub fn expanse(backend: BackendKind, nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            workers_per_node: Self::expanse_node_workers(backend, nodes),
            backend,
            fabric: FabricConfig::expanse(nodes),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_duration_scales_with_flops() {
        let c = CostModel::default();
        // 36 GFLOP at 36 GFLOP/s = 1 s (+overhead).
        let d = c.task_duration(36e9, 1.0);
        assert!(d >= SimTime::from_s(1) && d < SimTime::from_s(1) + SimTime::from_us(10));
        // Half efficiency doubles the time.
        let d2 = c.task_duration(36e9, 0.5);
        assert!(d2 > d * 1.9);
    }

    #[test]
    fn from_profile_moves_every_charge_to_the_measured_median() {
        use crate::calib::{CalibrationProfile, CostSummary};
        let summary = |median_ns: u64| CostSummary {
            count: 3,
            median_ns,
            mean_ns: median_ns + 1,
        };
        let mut profile = CalibrationProfile {
            threads: 2,
            tasks: 10,
            ..Default::default()
        };
        profile.classes.insert("gemm".into(), summary(41_000));
        profile.classes.insert("potrf".into(), summary(7_000));
        profile.records.insert(REC_ACTIVATE.into(), summary(2_100));
        profile.records.insert(REC_GET_REQUEST.into(), summary(640));
        profile.records.insert(REC_ARRIVAL.into(), summary(880));
        profile
            .records
            .insert(REC_TASK_OVERHEAD.into(), summary(1_250));

        let c = CostModel::from_profile(&profile);
        // Record charges moved to the measured medians.
        assert_eq!(c.activate_record_cost, SimTime::from_ns(2_100));
        assert_eq!(c.get_request_cost, SimTime::from_ns(640));
        assert_eq!(c.arrival_cost, SimTime::from_ns(880));
        assert_eq!(c.task_overhead, SimTime::from_ns(1_250));
        // Calibrated classes charge overhead + measured kernel median,
        // ignoring the flops formula entirely.
        assert_eq!(
            c.task_charge("gemm", 1e12, 1.0),
            SimTime::from_ns(1_250 + 41_000)
        );
        assert_eq!(
            c.task_charge("potrf", 0.0, 1.0),
            SimTime::from_ns(1_250 + 7_000)
        );
        // Uncalibrated classes fall back to the throughput formula.
        assert_eq!(c.task_charge("syrk", 36e9, 1.0), c.task_duration(36e9, 1.0));
        // Charges the real path cannot observe keep their defaults.
        let d = CostModel::default();
        assert_eq!(c.get_send_cost, d.get_send_cost);
        assert_eq!(c.submit_cost, d.submit_cost);
    }

    #[test]
    fn expanse_worker_counts_match_paper() {
        assert_eq!(
            ClusterConfig::expanse_node_workers(BackendKind::Mpi, 16),
            127
        );
        assert_eq!(
            ClusterConfig::expanse_node_workers(BackendKind::Lci, 16),
            126
        );
        assert_eq!(
            ClusterConfig::expanse_node_workers(BackendKind::LciDirect, 16),
            126
        );
        assert_eq!(
            ClusterConfig::expanse_node_workers(BackendKind::Lci, 1),
            128
        );
    }
}
