//! Priority ready-queues for the per-node scheduler.
//!
//! The seed runtime ordered ready tasks and pending GETs with a
//! `BinaryHeap` keyed on `(priority, Reverse(seq))` — highest priority
//! first, earliest insertion first within a priority. TLR/dense workloads
//! use a *small* set of distinct priorities (the TLR builder emits
//! `4·(nt−k) + bonus`), so heap churn is pure overhead: [`BucketQueue`]
//! replaces it with one FIFO ring per priority plus a cursor over the
//! highest occupied ring, which reproduces the exact heap pop order because
//! sequence numbers are handed out monotonically — FIFO order within a
//! priority *is* ascending-seq order.
//!
//! Arbitrary priorities stay supported: when the priority span exceeds
//! [`MAX_SPAN`] buckets the queue migrates (permanently) to the seed's
//! heap. The seed structure itself survives as [`RefReadyQueue`] behind the
//! same API, selected by `ClusterConfig::reference_sched`, and the two are
//! proven order-equivalent by a randomized lockstep test below (as PR 3/4
//! did for the event engine and the MiniMPI matcher).

use std::collections::{BinaryHeap, VecDeque};

/// A queued item with its ordering key. Pop order is `(priority,
/// Reverse(seq))` max-heap order: highest priority, then lowest seq.
pub(crate) struct Entry<T> {
    pub priority: i64,
    pub seq: u64,
    pub item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed's `BinaryHeap` ready queue, kept as the reference
/// implementation (`ClusterConfig::reference_sched`).
pub(crate) struct RefReadyQueue<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> RefReadyQueue<T> {
    pub fn new() -> Self {
        RefReadyQueue {
            heap: BinaryHeap::new(),
        }
    }

    pub fn push(&mut self, priority: i64, seq: u64, item: T) {
        self.heap.push(Entry {
            priority,
            seq,
            item,
        });
    }

    pub fn pop(&mut self) -> Option<Entry<T>> {
        self.heap.pop()
    }

    pub fn peek(&mut self) -> Option<&T> {
        self.heap.peek().map(|e| &e.item)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Maximum bucket span before a [`BucketQueue`] migrates to its heap
/// fallback. Covers every priority range the in-repo workloads produce
/// (TLR uses ≤ `4·nt + 3` distinct values) with one `VecDeque` slot each.
pub(crate) const MAX_SPAN: usize = 4096;

/// Bucketed priority queue: one FIFO ring per priority level.
///
/// Push and pop are O(1) amortized — pop walks the cursor down over empty
/// rings it already drained, and each ring slot is only ever created once
/// per span extension. **Invariant**: callers push monotonically increasing
/// `seq` values (the scheduler's `next_seq` counter), which makes
/// ring-FIFO order identical to the reference heap's
/// `(priority, Reverse(seq))` order.
pub(crate) struct BucketQueue<T> {
    /// `rings[i]` holds entries of priority `base + i`.
    rings: VecDeque<VecDeque<(u64, T)>>,
    /// Priority of `rings[0]`. Meaningless while `rings` is empty.
    base: i64,
    /// Upper bound on the highest non-empty ring index.
    top: usize,
    len: usize,
    /// Permanent fallback once the priority span exceeds [`MAX_SPAN`].
    heap: Option<BinaryHeap<Entry<T>>>,
}

impl<T> BucketQueue<T> {
    pub fn new() -> Self {
        BucketQueue {
            rings: VecDeque::new(),
            base: 0,
            top: 0,
            len: 0,
            heap: None,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Move every queued entry into the heap fallback; all later
    /// operations use the heap. Heap ordering re-derives the exact pop
    /// order from the stored `(priority, seq)` keys.
    fn spill_to_heap(&mut self) {
        let mut heap = BinaryHeap::with_capacity(self.len);
        for (i, ring) in self.rings.iter_mut().enumerate() {
            let priority = self.base + i as i64;
            for (seq, item) in ring.drain(..) {
                heap.push(Entry {
                    priority,
                    seq,
                    item,
                });
            }
        }
        self.rings = VecDeque::new();
        self.heap = Some(heap);
    }

    pub fn push(&mut self, priority: i64, seq: u64, item: T) {
        self.len += 1;
        if let Some(h) = &mut self.heap {
            h.push(Entry {
                priority,
                seq,
                item,
            });
            return;
        }
        if self.rings.is_empty() {
            self.base = priority;
            self.rings.push_back(VecDeque::new());
            self.top = 0;
        }
        if priority < self.base {
            let shift = (self.base - priority) as usize;
            if shift.saturating_add(self.rings.len()) > MAX_SPAN {
                self.spill_to_heap();
                return self.push_spilled(priority, seq, item);
            }
            for _ in 0..shift {
                self.rings.push_front(VecDeque::new());
            }
            self.base = priority;
            self.top += shift;
        }
        let idx = (priority - self.base) as usize;
        if idx >= self.rings.len() {
            if idx + 1 > MAX_SPAN {
                self.spill_to_heap();
                return self.push_spilled(priority, seq, item);
            }
            while self.rings.len() <= idx {
                self.rings.push_back(VecDeque::new());
            }
        }
        self.rings[idx].push_back((seq, item));
        self.top = self.top.max(idx);
    }

    /// Continuation of a push that triggered the heap migration (`len` was
    /// already bumped).
    fn push_spilled(&mut self, priority: i64, seq: u64, item: T) {
        self.heap.as_mut().expect("just spilled").push(Entry {
            priority,
            seq,
            item,
        });
    }

    /// Lower `top` onto the highest non-empty ring. Caller guarantees
    /// `len > 0` and ring mode.
    fn settle_top(&mut self) {
        let mut i = self.top.min(self.rings.len() - 1);
        while self.rings[i].is_empty() {
            debug_assert!(i > 0, "len > 0 but all rings empty");
            i -= 1;
        }
        self.top = i;
    }

    pub fn pop(&mut self) -> Option<Entry<T>> {
        if let Some(h) = &mut self.heap {
            let e = h.pop();
            if e.is_some() {
                self.len -= 1;
            }
            return e;
        }
        if self.len == 0 {
            return None;
        }
        self.settle_top();
        let (seq, item) = self.rings[self.top]
            .pop_front()
            .expect("settled on non-empty");
        self.len -= 1;
        Some(Entry {
            priority: self.base + self.top as i64,
            seq,
            item,
        })
    }

    pub fn peek(&mut self) -> Option<&T> {
        if self.heap.is_none() {
            if self.len == 0 {
                return None;
            }
            self.settle_top();
        }
        match &self.heap {
            Some(h) => h.peek().map(|e| &e.item),
            None => self.rings[self.top].front().map(|(_, item)| item),
        }
    }
}

/// The scheduler's queue, dense by default, seed heap when
/// `reference_sched` is set.
pub(crate) enum ReadyQueue<T> {
    Bucketed(BucketQueue<T>),
    Reference(RefReadyQueue<T>),
}

impl<T> ReadyQueue<T> {
    pub fn new(reference: bool) -> Self {
        if reference {
            ReadyQueue::Reference(RefReadyQueue::new())
        } else {
            ReadyQueue::Bucketed(BucketQueue::new())
        }
    }

    pub fn push(&mut self, priority: i64, seq: u64, item: T) {
        match self {
            ReadyQueue::Bucketed(q) => q.push(priority, seq, item),
            ReadyQueue::Reference(q) => q.push(priority, seq, item),
        }
    }

    pub fn pop(&mut self) -> Option<Entry<T>> {
        match self {
            ReadyQueue::Bucketed(q) => q.pop(),
            ReadyQueue::Reference(q) => q.pop(),
        }
    }

    pub fn peek(&mut self) -> Option<&T> {
        match self {
            ReadyQueue::Bucketed(q) => q.peek(),
            ReadyQueue::Reference(q) => q.peek(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        match self {
            ReadyQueue::Bucketed(q) => q.len(),
            ReadyQueue::Reference(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_simnet::rng::DetRng;

    /// Drive both queues through an identical randomized workload
    /// (interleaved push/pop, duplicate and negative priorities, seqs from
    /// a monotone counter exactly like `NodeRt::next_seq`) and assert every
    /// pop agrees.
    fn lockstep(seed: u64, ops: usize, priorities: &[i64]) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut bucket = BucketQueue::new();
        let mut reference = RefReadyQueue::new();
        let mut seq = 0u64;
        for _ in 0..ops {
            if rng.gen_bool(0.55) || bucket.len() == 0 {
                let p = *rng.choose(priorities);
                bucket.push(p, seq, seq);
                reference.push(p, seq, seq);
                seq += 1;
            } else {
                if rng.gen_bool(0.3) {
                    assert_eq!(bucket.peek(), reference.peek(), "peek diverged");
                }
                let b = bucket.pop().expect("non-empty");
                let r = reference.pop().expect("non-empty");
                assert_eq!(
                    (b.priority, b.seq, b.item),
                    (r.priority, r.seq, r.item),
                    "pop diverged"
                );
            }
            assert_eq!(bucket.len(), reference.len());
        }
        // Drain: the full remaining order must agree too.
        while let Some(r) = reference.pop() {
            let b = bucket.pop().expect("same length");
            assert_eq!((b.priority, b.seq, b.item), (r.priority, r.seq, r.item));
        }
        assert_eq!(bucket.len(), 0);
    }

    #[test]
    fn lockstep_small_dense_priorities() {
        // The TLR shape: a handful of adjacent levels, heavy duplication.
        lockstep(0x5eed_0001, 4000, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn lockstep_negative_and_sparse_priorities() {
        lockstep(0x5eed_0002, 4000, &[-37, -2, -1, 0, 3, 800, 801, 2047]);
    }

    #[test]
    fn lockstep_across_heap_migration() {
        // Span far beyond MAX_SPAN: starts bucketed, migrates mid-stream,
        // order must be seamless across the spill.
        let priorities = [-5_000_000, -400, 0, 1, 2, 900_000, 12_345_678];
        lockstep(0x5eed_0003, 4000, &priorities);
    }

    #[test]
    fn lockstep_many_seeds() {
        for s in 0..32u64 {
            lockstep(0xbeef ^ s, 600, &[-3, -1, 0, 0, 2, 5, 9]);
        }
    }

    #[test]
    fn migration_is_permanent_and_lossless() {
        let mut q = BucketQueue::new();
        for i in 0..10 {
            q.push(i, i as u64, i);
        }
        q.push(MAX_SPAN as i64 * 3, 10, 99); // forces the spill
        assert!(q.heap.is_some());
        assert_eq!(q.len(), 11);
        let first = q.pop().expect("non-empty");
        assert_eq!((first.priority, first.item), (MAX_SPAN as i64 * 3, 99));
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 10);
        assert!(q.heap.is_some(), "fallback is permanent");
    }

    #[test]
    fn fifo_within_one_priority() {
        let mut q = BucketQueue::new();
        for s in 0..100u64 {
            q.push(7, s, s);
        }
        for s in 0..100u64 {
            assert_eq!(q.pop().expect("queued").item, s);
        }
    }
}
