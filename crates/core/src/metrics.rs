//! Derived run metrics: the paper's Fig. 3 computation/communication
//! overlap fraction and the Fig. 6 activation-latency breakdown, plus the
//! merged per-stage message-lifecycle histograms, serialized as one
//! *stable* JSON report.
//!
//! Stability contract: the report is assembled from BTreeMap-ordered
//! registries, fixed-order engine counters, and integer-nanosecond
//! integrators, so two identical simulated runs (same graph, same seed,
//! same backend) produce **byte-identical** JSON.

use std::fmt::Write as _;

use amt_comm::BackendKind;
use amt_exec::PoolStats;
use amt_simnet::{json_escape, MetricsRegistry, OnlineStats};

/// Summary of one latency distribution in the activation breakdown (µs).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub min_us: f64,
    pub max_us: f64,
}

impl LatencySummary {
    pub(crate) fn from_stats(s: &OnlineStats) -> Self {
        if s.count() == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: s.count(),
            mean_us: s.mean(),
            min_us: s.min(),
            max_us: s.max(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"count":{},"mean_us":{:.3},"min_us":{:.3},"max_us":{:.3}}}"#,
            self.count, self.mean_us, self.min_us, self.max_us
        );
    }
}

/// Cluster-wide derived metrics of one [`crate::Cluster::execute`] run
/// (enable with [`crate::ClusterConfig::metrics`]).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Backend that produced the run.
    pub backend: BackendKind,
    /// Which substrate executed: `"virtual"` (simulated time) or `"real"`
    /// (wall clock on the work-stealing pool).
    pub substrate: &'static str,
    pub nodes: usize,
    pub makespan_ns: u64,
    /// Simulator events executed by the run (engine-throughput metric).
    pub sim_events: u64,
    /// Release-mode past-scheduling clamps — non-zero flags a model bug
    /// that debug builds turn into a panic.
    pub schedule_past_clamped: u64,
    /// High-water mark of the simulator's pending-event queue over the
    /// cluster's lifetime — the queue-pressure signal for scale runs
    /// (0 on the real substrate: there is no event queue).
    pub events_peak_pending: u64,
    /// Per-stage lifecycle histograms + engine-internal counters, merged
    /// across all nodes.
    pub stages: MetricsRegistry,
    /// Engine counters merged across nodes, in a fixed order.
    pub engine: Vec<(&'static str, u64)>,
    /// Total time nodes spent receiving bulk data over the wire (ns).
    pub wire_ns: u64,
    /// Portion of `wire_ns` concurrent with local worker compute (ns).
    pub overlap_ns: u64,
    /// `overlap_ns / wire_ns` — the Fig. 3 overlap fraction. 0 when the
    /// run moved no bulk data.
    pub overlap_fraction: f64,
    /// Individual ACTIVATE message latency (§6.4.3).
    pub activation_msg: LatencySummary,
    /// Control path: ACTIVATE send → GET DATA arrival at the owner.
    pub activation_request: LatencySummary,
    /// End to end: ACTIVATE send → data arrival (§6.4.2, Fig. 6).
    pub activation_e2e: LatencySummary,
    /// Work-stealing pool scheduling counters (real-substrate runs only).
    pub pool: Option<PoolStats>,
}

fn backend_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Mpi => "mpi",
        BackendKind::Lci => "lci",
        BackendKind::LciDirect => "lci-direct",
    }
}

impl MetricsReport {
    /// Stable JSON serialization (byte-identical across identical runs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"backend":"{}","substrate":"{}","nodes":{},"makespan_ns":{},"#,
            json_escape(backend_name(self.backend)),
            json_escape(self.substrate),
            self.nodes,
            self.makespan_ns
        );
        let _ = write!(
            out,
            r#""sim":{{"events":{},"schedule_past_clamped":{},"events_peak_pending":{}}},"#,
            self.sim_events, self.schedule_past_clamped, self.events_peak_pending
        );
        let _ = write!(
            out,
            r#""overlap":{{"wire_ns":{},"overlap_ns":{},"fraction":{:.6}}},"#,
            self.wire_ns, self.overlap_ns, self.overlap_fraction
        );
        out.push_str(r#""activation_latency_us":{"msg":"#);
        self.activation_msg.write_json(&mut out);
        out.push_str(r#","request":"#);
        self.activation_request.write_json(&mut out);
        out.push_str(r#","e2e":"#);
        self.activation_e2e.write_json(&mut out);
        out.push_str(r#"},"engine":{"#);
        let mut first = true;
        for (name, v) in &self.engine {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, r#""{}":{}"#, json_escape(name), v);
        }
        out.push_str(r#"},"pool":"#);
        match &self.pool {
            None => out.push_str("null"),
            Some(p) => {
                let _ = write!(
                    out,
                    r#"{{"workers":{},"injector_pushes":{},"spawns":{},"executions":{},"steals":{},"failed_probes":{},"parks":{},"trace_dropped":{},"per_worker":["#,
                    p.per_worker.len(),
                    p.injector_pushes,
                    p.spawns(),
                    p.executions(),
                    p.steals(),
                    p.failed_probes(),
                    p.parks(),
                    p.trace_dropped
                );
                for (i, w) in p.per_worker.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        r#"{{"executed":{},"deque_pushes":{},"overflow_pushes":{},"steals":{},"failed_probes":{},"parks":{}}}"#,
                        w.executed,
                        w.deque_pushes,
                        w.overflow_pushes,
                        w.steals,
                        w.failed_probes,
                        w.parks
                    );
                }
                out.push_str("]}");
            }
        }
        out.push_str(r#","stages":"#);
        self.stages.write_json(&mut out);
        out.push('}');
        out
    }
}
