//! PaRSEC-style bounded task discovery (windowed execution).
//!
//! [`crate::Cluster::execute_windowed`] drives a [`GraphSource`] instead of
//! a fully unrolled [`crate::TaskGraph`]: at most `window` tasks are
//! unrolled ahead of the completion frontier, and completed tasks (plus
//! versions that can never be read again) are *retired* — their dependence
//! lists, kernels and payloads freed, and whole graph-storage chunks
//! returned to the allocator once every entry in them has retired. Peak
//! memory is O(window) instead of O(total tasks), which for tile Cholesky
//! means O(window) instead of O(nt³/6).
//!
//! Discovery-order bookkeeping mirrors what full-unroll `init` computes up
//! front:
//!
//! * a newly admitted local task gets its unsatisfied-input count from the
//!   node's data store;
//! * a remote input that is already present at its home node (the
//!   producer-side announce predates this consumer's discovery) triggers a
//!   *late* direct ACTIVATE from the home node, deduplicated per
//!   (version, node) through the coverage set;
//! * a remote input whose producer is still pending needs nothing — the
//!   consumer is registered in the version's consumer list, so the
//!   producer's completion announce covers it.
//!
//! A version retires when it is superseded (a later write to its key
//! exists, so no future task can read it — reads bind at insertion), its
//! producer and every discovered consumer have completed. Retirement only
//! releases memory; it never touches the simulator, so a window at least
//! as large as the full graph is byte-identical to full unrolling.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use amt_simnet::Sim;

use crate::graph::{GraphBuilder, GraphHandle, GraphSource, TaskId, GRAPH_CHUNK};
use crate::node::{NodeRt, RtHandle};

/// The windowed-discovery driver, shared by every node runtime of one
/// execution (each completion notifies it; it refills the window from the
/// source and retires what the frontier has passed).
pub(crate) struct WindowCtl {
    inner: RefCell<WindowInner>,
}

struct WindowInner {
    builder: GraphBuilder,
    source: Box<dyn GraphSource>,
    window: usize,
    /// False during prefill (before `NodeRt::init` — init does the runtime
    /// bookkeeping for everything prefilled); true once running.
    live: bool,
    exhausted: bool,
    completed: usize,
    rts: Vec<RtHandle>,
    /// Per task: completed?
    done: Vec<bool>,
    /// Per version: discovered consumers not yet completed.
    open_consumers: Vec<u32>,
    /// Per version: a later write to the same key exists (consumer set is
    /// final).
    superseded: Vec<bool>,
    retired_version: Vec<bool>,
    /// Per graph-storage chunk: retired entries (chunk freed at
    /// [`GRAPH_CHUNK`]).
    task_chunk_retired: Vec<u32>,
    version_chunk_retired: Vec<u32>,
    /// Per version chunk: freed (all entries retired, or the stragglers
    /// evacuated to the graph's side table).
    version_chunk_freed: Vec<bool>,
    /// (version, node) pairs an ACTIVATE has been sent for (or will be, by
    /// the init announce) — dedups late activations.
    covered: HashSet<(usize, usize)>,
    admitted_tasks: usize,
    seeded_versions: usize,
    /// Scratch: versions touched by the current completion.
    retire_scratch: Vec<usize>,
    /// Scratch: late activations collected under the graph borrow.
    late_scratch: Vec<(usize, usize, usize, usize, i64)>,
}

impl WindowCtl {
    pub fn new(
        nodes: usize,
        handle: GraphHandle,
        source: Box<dyn GraphSource>,
        window: usize,
    ) -> Rc<WindowCtl> {
        assert!(window >= 1, "discovery window must be at least 1");
        let mut builder = GraphBuilder::over(nodes, handle);
        builder.set_track_superseded();
        Rc::new(WindowCtl {
            inner: RefCell::new(WindowInner {
                builder,
                source,
                window,
                live: false,
                exhausted: false,
                completed: 0,
                rts: Vec::new(),
                done: Vec::new(),
                open_consumers: Vec::new(),
                superseded: Vec::new(),
                retired_version: Vec::new(),
                task_chunk_retired: Vec::new(),
                version_chunk_retired: Vec::new(),
                version_chunk_freed: Vec::new(),
                covered: HashSet::new(),
                admitted_tasks: 0,
                seeded_versions: 0,
                retire_scratch: Vec::new(),
                late_scratch: Vec::new(),
            }),
        })
    }

    pub fn attach(&self, rts: &[RtHandle]) {
        self.inner.borrow_mut().rts = rts.to_vec();
    }

    /// Unroll the first `window` tasks before `NodeRt::init` runs. Init
    /// then computes stores / dependence counts / announces for the whole
    /// prefilled graph exactly as full unrolling would.
    pub fn prefill(&self, sim: &mut Sim) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert!(!inner.rts.is_empty(), "attach() before prefill()");
        let handle = inner.builder.handle().clone();
        while !inner.exhausted && handle.get().task_count() < inner.window {
            let before = handle.get().task_count();
            if !inner.source.next_task(&mut inner.builder) {
                inner.exhausted = true;
                break;
            }
            assert!(
                handle.get().task_count() > before,
                "GraphSource returned true without inserting a task"
            );
        }
        inner.absorb_new(sim);
        inner.live = true;
        // The init announce will cover every producer-less version's
        // currently known remote consumer nodes.
        let g = handle.get();
        for i in 0..g.version_count() {
            let v = g.version(i);
            if v.producer.is_some() {
                continue;
            }
            for &c in &v.consumers {
                let n = g.task(c).node;
                if n != v.home {
                    inner.covered.insert((i, n));
                }
            }
        }
    }

    /// A task completed (its outputs are stored and announced): retire what
    /// the frontier passed and refill the discovery window.
    pub fn on_complete(ctl: &Rc<WindowCtl>, sim: &mut Sim, task: TaskId) {
        let mut inner = ctl.inner.borrow_mut();
        let inner = &mut *inner;
        inner.completed += 1;
        inner.done[task] = true;
        let handle = inner.builder.handle().clone();
        let mut candidates = std::mem::take(&mut inner.retire_scratch);
        candidates.clear();
        {
            let g = handle.get();
            let t = g.task(task);
            for &v in &t.inputs {
                debug_assert!(inner.open_consumers[v.0] > 0);
                inner.open_consumers[v.0] -= 1;
                candidates.push(v.0);
            }
            for &v in &t.outputs {
                // The completion announce (already sent by task_done)
                // covered every currently known remote consumer node.
                for &c in &g.version(v.0).consumers {
                    let n = g.task(c).node;
                    if n != t.node {
                        inner.covered.insert((v.0, n));
                    }
                }
                candidates.push(v.0);
            }
        }
        for &v in &candidates {
            inner.maybe_retire_version(&handle, v);
        }
        // This completion may have made *final* versions (its outputs, or
        // inputs whose last discovered consumer this was) permanently
        // unretirable: give their chunks an evacuation chance.
        for v in candidates.drain(..) {
            inner.maybe_evacuate_version_chunk(&handle, v / GRAPH_CHUNK);
        }
        inner.retire_scratch = candidates;
        handle.get_mut().retire_task(task);
        let chunk = task / GRAPH_CHUNK;
        inner.task_chunk_retired[chunk] += 1;
        if inner.task_chunk_retired[chunk] as usize == GRAPH_CHUNK {
            handle.get_mut().free_task_chunk(chunk);
        }
        // Refill: keep `window` discovered-but-incomplete tasks unrolled.
        while !inner.exhausted && handle.get().task_count() - inner.completed < inner.window {
            let before = handle.get().task_count();
            if !inner.source.next_task(&mut inner.builder) {
                inner.exhausted = true;
                break;
            }
            assert!(
                handle.get().task_count() > before,
                "GraphSource returned true without inserting a task"
            );
            inner.absorb_new(sim);
        }
    }
}

impl WindowInner {
    /// Sync bookkeeping (and, once live, runtime state) with everything
    /// the source inserted since the last call.
    fn absorb_new(&mut self, sim: &mut Sim) {
        let handle = self.builder.handle().clone();
        let (ntasks, nversions) = {
            let g = handle.get();
            (g.task_count(), g.version_count())
        };
        self.done.resize(ntasks, false);
        self.open_consumers.resize(nversions, 0);
        self.superseded.resize(nversions, false);
        self.retired_version.resize(nversions, false);
        self.task_chunk_retired
            .resize(ntasks.div_ceil(GRAPH_CHUNK), 0);
        self.version_chunk_retired
            .resize(nversions.div_ceil(GRAPH_CHUNK), 0);
        self.version_chunk_freed
            .resize(nversions.div_ceil(GRAPH_CHUNK), false);
        if self.live {
            for rt in &self.rts {
                rt.window_ensure(nversions);
            }
            // Seed newly declared producer-less versions at their home.
            for i in self.seeded_versions..nversions {
                let (producer_less, home, initial) = {
                    let g = handle.get();
                    let v = g.version(i);
                    (v.producer.is_none(), v.home, v.initial.clone())
                };
                if producer_less {
                    self.rts[home].window_seed_initial(i, initial);
                }
            }
        }
        self.seeded_versions = nversions;

        let mut late = std::mem::take(&mut self.late_scratch);
        for t in self.admitted_tasks..ntasks {
            late.clear();
            let (node, local_ix, priority, missing) = {
                let g = handle.get();
                let task = g.task(t);
                let node = task.node;
                let mut missing = 0u32;
                for &v in &task.inputs {
                    self.open_consumers[v.0] += 1;
                    if !self.live {
                        continue;
                    }
                    let rt = &self.rts[node];
                    if rt.store_is_present(v.0) {
                        continue;
                    }
                    missing += 1;
                    if rt.store_has(v.0) {
                        continue; // requested: the arrival releases it
                    }
                    let ver = g.version(v.0);
                    if ver.home == node {
                        continue; // local producer pending
                    }
                    if self.rts[ver.home].store_is_present(v.0) && self.covered.insert((v.0, node))
                    {
                        // Producer-side announce predates this consumer's
                        // discovery: late direct ACTIVATE from the home.
                        let size = self.rts[ver.home].announce_size(v.0, ver.size);
                        late.push((ver.home, node, v.0, size, task.priority));
                    }
                }
                (node, task.local_ix, task.priority, missing)
            };
            for &(home, dst, version, size, prio) in &late {
                NodeRt::send_late_activate(&self.rts[home], sim, dst, version, size, prio);
            }
            if self.live && self.rts[node].window_admit_local(t, local_ix, priority, missing) {
                let rt = self.rts[node].clone();
                sim.schedule_now(move |sim| NodeRt::dispatch(&rt, sim));
            }
        }
        late.clear();
        self.late_scratch = late;
        self.admitted_tasks = ntasks;

        // Versions whose `current` slot was overwritten: consumer sets are
        // final, so they become retirement candidates.
        for vid in self.builder.take_superseded() {
            self.superseded[vid.0] = true;
            if self.live {
                self.maybe_retire_version(&handle, vid.0);
            }
        }
    }

    /// Retire `v` if nothing can ever read it again: superseded, producer
    /// completed, every discovered consumer completed. Drops payload bytes
    /// on every node and frees the version's graph chunk once its whole
    /// chunk has retired.
    fn maybe_retire_version(&mut self, handle: &GraphHandle, v: usize) {
        if self.retired_version[v] || self.open_consumers[v] != 0 {
            return;
        }
        {
            let g = handle.get();
            if let Some(p) = g.version(v).producer {
                if !self.done[p] {
                    return;
                }
            }
        }
        if !self.superseded[v] {
            // Final and drained: producer done, every discovered consumer
            // completed (so its data already arrived — no in-flight
            // release will scan the list), and no later write exists.
            // The consumer list has no remaining readers; free it. A
            // consumer discovered later re-grows the list and is found by
            // `release_local` as usual.
            handle.get_mut().prune_consumers(v);
            return;
        }
        for rt in &self.rts {
            rt.window_drop_payload(v);
        }
        // The version can never be announced again: drop its coverage
        // marks so the set tracks only the live window.
        for n in 0..self.rts.len() {
            self.covered.remove(&(v, n));
        }
        handle.get_mut().retire_version(v);
        self.retired_version[v] = true;
        let chunk = v / GRAPH_CHUNK;
        if self.version_chunk_freed[chunk] {
            // The chunk was already evacuated; this version lived on in
            // the side table until a later write superseded it.
            handle.get_mut().drop_evacuated_version(v);
        } else {
            self.version_chunk_retired[chunk] += 1;
            self.maybe_evacuate_version_chunk(handle, chunk);
        }
    }

    /// Free a version chunk once every entry is either retired or *final*
    /// — producer completed, all discovered consumers completed, and not
    /// superseded, so only a future write could ever retire it. Finals
    /// relocate to the graph's side table; the chunk memory (dominated by
    /// dead intermediates) is returned. Without this, tile Cholesky's
    /// final factor tiles — interspersed through discovery order — pin
    /// every chunk forever.
    fn maybe_evacuate_version_chunk(&mut self, handle: &GraphHandle, chunk: usize) {
        if self.version_chunk_freed[chunk] {
            return;
        }
        let lo = chunk * GRAPH_CHUNK;
        let hi = lo + GRAPH_CHUNK;
        if hi > self.retired_version.len() {
            return; // tail chunk, still filling
        }
        let mut keep: Vec<usize> = Vec::new();
        {
            let g = handle.get();
            for v in lo..hi {
                if self.retired_version[v] {
                    continue;
                }
                // Superseded or consumers still open: it will retire (or
                // come back here) through the normal path — wait.
                if self.superseded[v] || self.open_consumers[v] != 0 {
                    return;
                }
                match g.version(v).producer {
                    Some(p) if !self.done[p] => return,
                    _ => keep.push(v),
                }
            }
        }
        if keep.len() == GRAPH_CHUNK {
            return; // nothing to reclaim; the side table would only add overhead
        }
        if keep.is_empty() {
            handle.get_mut().free_version_chunk(chunk);
        } else {
            handle.get_mut().evacuate_version_chunk(chunk, &keep);
        }
        self.version_chunk_freed[chunk] = true;
    }
}
