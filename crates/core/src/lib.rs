//! # amt-core
//!
//! A PaRSEC-style **asynchronous many-task runtime**: dynamic task-DAG
//! insertion with automatic dependence analysis, priority scheduling onto
//! per-node worker cores, and distributed dataflow through the
//! communication engine's ACTIVATE / GET DATA / put protocol (paper §4.1,
//! Figure 1) — over either **substrate**:
//!
//! * the deterministic single-threaded simulator ([`Cluster::execute`],
//!   [`Cluster::execute_windowed`]): virtual time, simulated fabric and
//!   engines, byte-reproducible runs;
//! * the real work-stealing thread pool ([`Cluster::execute_real`]):
//!   wall-clock time, real OS threads, the same protocol over an
//!   in-process shared-memory transport. Numeric payloads are bitwise
//!   identical across substrates and thread counts.
//!
//! ## Model
//!
//! * **Tasks** are inserted into a [`TaskGraph`] with declared data accesses
//!   (read / write by [`DataKey`]). Writes create new immutable *versions*
//!   (data renaming, like PaRSEC's data copies), so the only true
//!   dependencies are read-after-write.
//! * Each task executes on an assigned **node** (owner-computes by default);
//!   each node runs `workers` simulated cores fed from a priority ready
//!   queue.
//! * When a task completes, versions its consumers need on other nodes are
//!   announced with **ACTIVATE** active messages (aggregated per destination
//!   by the communication thread, or sent directly by workers in
//!   multithreaded mode). The receiver prioritizes each flow and replies
//!   with **GET DATA** when the flow's priority clears its in-flight window;
//!   the owner then starts a one-sided **put**. Data arrival releases the
//!   consumers (Figure 1).
//! * **End-to-end latency** is measured exactly as in the paper (§6.4.2):
//!   from the ACTIVATE send to the arrival of the data, per flow; the
//!   virtual clock is global, so no clock synchronization is needed.
//!
//! ## Execution modes
//!
//! [`ExecMode::Numeric`] runs real kernels on real bytes (results are
//! verifiable); [`ExecMode::CostOnly`] skips kernels and moves declared
//! sizes — identical protocol traffic, none of the memory. Both modes run
//! on both substrates.
//!
//! ## Example
//!
//! ```
//! use amt_core::{Cluster, ClusterConfig, GraphBuilder, TaskDesc};
//! use amt_comm::BackendKind;
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     nodes: 2,
//!     workers_per_node: 4,
//!     backend: BackendKind::Lci,
//!     ..Default::default()
//! });
//! let mut g = GraphBuilder::new(cluster.nodes());
//! let a = g.data(0, 1024, 0, None); // key 0, 1 KiB, on node 0
//! g.insert(
//!     TaskDesc::new("double")
//!         .on_node(1)
//!         .flops(1e6)
//!         .read(a)
//!         .write(1, 1024),
//! );
//! let report = cluster.execute(g.build());
//! assert_eq!(report.tasks_executed, 1);
//! ```

mod calib;
mod cluster;
mod config;
mod dist;
mod graph;
mod island;
mod metrics;
mod node;
mod queue;
mod real;
mod records;
mod tune;
mod window;

pub use calib::{
    CalibrationProfile, CostSummary, CALIB_SCHEMA, REC_ACTIVATE, REC_ARRIVAL, REC_GET_REQUEST,
    REC_TASK_OVERHEAD,
};
pub use cluster::{Cluster, RunReport};
pub use config::{ClusterConfig, CostModel, ExecMode};
pub use dist::{Cyclic1d, DataDist, TileDist2d};
pub use graph::{
    DataKey, GraphBuilder, GraphHandle, GraphSource, Kernel, TaskDesc, TaskGraph, TaskId, VersionId,
};
pub use island::{execute_islands, island_range};
pub use metrics::{LatencySummary, MetricsReport};
pub use records::{tree_children, tree_children_k};
pub use tune::{TuneProfile, TUNE_COST_DEFAULT, TUNE_SCHEMA};

#[cfg(test)]
mod tests;
