//! Autotune profiles: the best communication-knob settings found by the
//! offline sweep (`--autotune-out`), packaged as a stable-JSON profile a
//! later run can load back (`--tuned`).
//!
//! A [`TuneProfile`] is the offline half of the adaptive comm engine
//! ([`amt_comm::TuneConfig`] is the online half): the `autotune` bench
//! sweeps eager-put ceiling × batching window × GET window over the
//! deterministic parallel sweep runner, scores each candidate on the
//! Fig. 2 bandwidth-knee position and the Fig. 3 overlap fraction, and
//! emits the winner here. Serialization follows the calibration-profile
//! pattern ([`crate::CalibrationProfile`]): integers only, fixed field
//! order, so `from_json(to_json(p))` re-serializes byte-identically.
//!
//! ## `--cost-model` precedence
//!
//! The sweep searches knob space *under some simulator cost model*, and a
//! profile is only evidence about the model it was searched under. The
//! profile therefore records a `cost_model` tag (`"default"`, or the tag
//! of the calibration profile the sweep loaded). When a run passes both
//! `--tuned` and an explicit `--cost-model`, the explicit charges win —
//! the tune profile only sets knobs — and [`TuneProfile::cost_model_conflict`]
//! returns a warning to print when the tags disagree, instead of the old
//! silent drift.
//!
//! Schema identifier: [`TUNE_SCHEMA`] (`amtlc-tune-v1`).

use std::fmt::Write as _;

use crate::calib::{get, parse_json};
use crate::config::ClusterConfig;

/// Schema identifier emitted in (and required of) every profile.
pub const TUNE_SCHEMA: &str = "amtlc-tune-v1";

/// Cost-model tag of a profile searched under the built-in charges.
pub const TUNE_COST_DEFAULT: &str = "default";

/// Best-found communication knobs of one autotune sweep (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneProfile {
    /// Eager-put ceiling of the winning candidate, bytes.
    pub eager_put_max: u64,
    /// AM batching window of the winning candidate, ns (0 = no batching).
    pub batch_window_ns: u64,
    /// Consumer-side GET window of the winning candidate, flows.
    pub get_window: u64,
    /// Whether the winning candidate also ran the online controller.
    pub adaptive: bool,
    /// Cost model the sweep searched under ([`TUNE_COST_DEFAULT`] or the
    /// tag of a loaded calibration profile).
    pub cost_model: String,
    /// Fig. 2 bandwidth-knee position of the winner: smallest fragment
    /// size (bytes) reaching half of peak bandwidth. Lower is better.
    pub knee_bytes: u64,
    /// Fig. 3 overlap fraction of the winner on the wide TLR workload,
    /// in thousandths (integer, for byte-stable JSON).
    pub overlap_millis: u64,
    /// Candidates the sweep evaluated.
    pub candidates: u64,
}

impl Default for TuneProfile {
    fn default() -> Self {
        TuneProfile {
            eager_put_max: 4096,
            batch_window_ns: 0,
            get_window: 512,
            adaptive: false,
            cost_model: TUNE_COST_DEFAULT.to_string(),
            knee_bytes: 0,
            overlap_millis: 0,
            candidates: 0,
        }
    }
}

impl TuneProfile {
    /// Apply the winning knobs to a cluster configuration. Only knobs —
    /// simulator charges are the cost model's business, so `--cost-model`
    /// composes with (and wins over) `--tuned` on charges.
    pub fn apply(&self, cfg: &mut ClusterConfig) {
        cfg.engine.eager_put_max = self.eager_put_max as usize;
        cfg.engine.batch_window_ns = self.batch_window_ns;
        cfg.get_window = self.get_window as usize;
        cfg.engine.tune.enabled = self.adaptive;
    }

    /// Warning text when an explicit cost model overrides the charges
    /// this profile was searched under; `None` when they agree (or no
    /// explicit model was passed).
    pub fn cost_model_conflict(&self, explicit: Option<&str>) -> Option<String> {
        match explicit {
            Some(tag) if tag != self.cost_model => Some(format!(
                "--cost-model {tag:?} overrides the charges this tuning profile \
                 was searched under ({:?}); knob choices may be stale for the \
                 explicit model — re-run the autotune sweep under it",
                self.cost_model
            )),
            _ => None,
        }
    }

    /// Stable JSON serialization: fixed field order, integers and one
    /// escaped string — byte-identical across a
    /// [`TuneProfile::from_json`] round trip.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            concat!(
                r#"{{"schema":"{schema}","eager_put_max":{},"batch_window_ns":{},"#,
                r#""get_window":{},"adaptive":{},"cost_model":"{}","knee_bytes":{},"#,
                r#""overlap_millis":{},"candidates":{}}}"#
            ),
            self.eager_put_max,
            self.batch_window_ns,
            self.get_window,
            self.adaptive as u64,
            amt_simnet::json_escape(&self.cost_model),
            self.knee_bytes,
            self.overlap_millis,
            self.candidates,
            schema = TUNE_SCHEMA,
        );
        out
    }

    /// Parse a profile back from its JSON form (schema-checked).
    pub fn from_json(text: &str) -> Result<TuneProfile, String> {
        let v = parse_json(text)?;
        let obj = v.as_obj("profile")?;
        let schema = get(obj, "schema")?.as_str("schema")?;
        if schema != TUNE_SCHEMA {
            return Err(format!("schema {schema:?}, expected {TUNE_SCHEMA:?}"));
        }
        let num = |key: &str| -> Result<u64, String> { get(obj, key)?.as_u64(key) };
        Ok(TuneProfile {
            eager_put_max: num("eager_put_max")?,
            batch_window_ns: num("batch_window_ns")?,
            get_window: num("get_window")?,
            adaptive: match num("adaptive")? {
                0 => false,
                1 => true,
                n => return Err(format!("adaptive: expected 0 or 1, got {n}")),
            },
            cost_model: get(obj, "cost_model")?.as_str("cost_model")?.to_string(),
            knee_bytes: num("knee_bytes")?,
            overlap_millis: num("overlap_millis")?,
            candidates: num("candidates")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneProfile {
        TuneProfile {
            eager_put_max: 12032,
            batch_window_ns: 200_000,
            get_window: 256,
            adaptive: true,
            cost_model: TUNE_COST_DEFAULT.to_string(),
            knee_bytes: 16_384,
            overlap_millis: 412,
            candidates: 18,
        }
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let p = sample();
        let json = p.to_json();
        assert!(json.starts_with(r#"{"schema":"amtlc-tune-v1""#), "{json}");
        let q = TuneProfile::from_json(&json).expect("parse back");
        assert_eq!(p, q);
        assert_eq!(json, q.to_json(), "round trip is byte-identical");
    }

    #[test]
    fn rejects_wrong_schema_and_bad_bool() {
        let wrong = sample().to_json().replace("tune-v1", "tune-v9");
        assert!(TuneProfile::from_json(&wrong)
            .unwrap_err()
            .contains("schema"));
        let bad = sample()
            .to_json()
            .replace(r#""adaptive":1"#, r#""adaptive":7"#);
        assert!(TuneProfile::from_json(&bad)
            .unwrap_err()
            .contains("adaptive"));
    }

    #[test]
    fn apply_sets_knobs_only() {
        let mut cfg = ClusterConfig::default();
        let baseline_charge = cfg.cost.get_send_cost;
        let p = sample();
        p.apply(&mut cfg);
        assert_eq!(cfg.engine.eager_put_max, 12032);
        assert_eq!(cfg.engine.batch_window_ns, 200_000);
        assert_eq!(cfg.get_window, 256);
        assert!(cfg.engine.tune.enabled);
        assert_eq!(
            cfg.cost.get_send_cost, baseline_charge,
            "tuning never touches simulator charges"
        );
    }

    #[test]
    fn cost_model_precedence_warns_on_mismatch_only() {
        let p = sample();
        assert!(p.cost_model_conflict(None).is_none());
        assert!(p.cost_model_conflict(Some(TUNE_COST_DEFAULT)).is_none());
        let warn = p
            .cost_model_conflict(Some("calib/run7.json"))
            .expect("mismatch warns");
        assert!(warn.contains("overrides"), "{warn}");
        assert!(warn.contains("default"), "{warn}");
    }
}
