//! The simulated cluster: Sim + fabric + engines + per-node runtimes, and
//! the run report benches consume.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use amt_comm::{CommEngine, CommWorld, EngineStats};
use amt_netmodel::{Fabric, FabricHandle};
use amt_simnet::{
    shared, CoreHandle, CoreResource, OnlineStats, OverlapTracker, Shared, Sim, SimTime, Trace,
};
use bytes::Bytes;

use crate::config::ClusterConfig;
use crate::graph::{GraphHandle, GraphSource, TaskGraph, VersionId};
use crate::metrics::{LatencySummary, MetricsReport};
use crate::node::{NodeRt, RtHandle, AM_ACTIVATE, AM_GETDATA, RTAG_DATA};
use crate::window::WindowCtl;

/// Outcome of one [`Cluster::execute`] run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time from dispatch to full drain (includes trailing
    /// communication).
    pub makespan: SimTime,
    pub tasks_executed: u64,
    pub tasks_total: u64,
    /// End-to-end latency per remote flow, µs (ACTIVATE send → data
    /// arrival), merged across nodes.
    pub e2e_latency_us: OnlineStats,
    /// Individual ACTIVATE message latency, µs.
    pub msg_latency_us: OnlineStats,
    /// Control-path latency (ACTIVATE send → GET DATA arrival at owner), µs.
    pub request_latency_us: OnlineStats,
    /// Total virtual CPU time spent executing tasks.
    pub worker_busy: SimTime,
    /// Mean worker utilization over the makespan.
    pub worker_util: f64,
    /// Mean communication-thread utilization.
    pub comm_util: f64,
    /// Mean progress-thread utilization (LCI; 0 for MPI).
    pub progress_util: f64,
    /// Per-node engine counters.
    pub engine_stats: Vec<EngineStats>,
    /// Per task-class (name, executions, total busy time), sorted by busy
    /// time descending.
    pub class_stats: Vec<(String, u64, SimTime)>,
    /// Engine events executed by this run (simulator-throughput metric).
    pub sim_events: u64,
    /// Release-mode past-scheduling clamps during this run. Non-zero means
    /// a component scheduled into the past — a model bug that debug builds
    /// turn into a panic.
    pub schedule_past_clamped: u64,
    /// Work-stealing pool scheduling counters ([`Cluster::execute_real`]
    /// runs only; `None` on the virtual substrate). Not part of
    /// [`RunReport::to_json`]: that serialization is a scheduling-decision
    /// digest compared byte-for-byte across substrates, and pool counters
    /// are wall-clock-dependent.
    pub pool: Option<amt_exec::PoolStats>,
}

impl RunReport {
    /// Did every task run?
    pub fn complete(&self) -> bool {
        self.tasks_executed == self.tasks_total
    }

    /// Total put payload bytes received across the cluster.
    pub fn bytes_transferred(&self) -> u64 {
        self.engine_stats.iter().map(|s| s.put_bytes_in.get()).sum()
    }

    /// Deterministic JSON of everything scheduling-dependent in this
    /// report. Two runs that made identical scheduling decisions serialize
    /// byte-identically, so differential tests (dense vs reference
    /// scheduler, windowed vs full unroll) compare one string.
    pub fn to_json(&self) -> String {
        fn stats(out: &mut String, name: &str, s: &OnlineStats) {
            use std::fmt::Write;
            // Zeros for empty stats: min()/max() are +/-inf with no samples.
            let (mean, min, max, sd) = if s.count() == 0 {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                (s.mean(), s.min(), s.max(), s.std_dev())
            };
            write!(
                out,
                "\"{name}\":{{\"count\":{},\"mean\":{mean:.6},\"min\":{min:.6},\"max\":{max:.6},\"std_dev\":{sd:.6}}}",
                s.count()
            )
            .unwrap();
        }
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{{\"makespan_ns\":{},\"tasks_executed\":{},\"tasks_total\":{},\"worker_busy_ns\":{},\"sim_events\":{},\"schedule_past_clamped\":{},\"bytes_transferred\":{},",
            self.makespan.as_ns(),
            self.tasks_executed,
            self.tasks_total,
            self.worker_busy.as_ns(),
            self.sim_events,
            self.schedule_past_clamped,
            self.bytes_transferred(),
        )
        .unwrap();
        stats(&mut out, "e2e_latency_us", &self.e2e_latency_us);
        out.push(',');
        stats(&mut out, "msg_latency_us", &self.msg_latency_us);
        out.push(',');
        stats(&mut out, "request_latency_us", &self.request_latency_us);
        out.push_str(",\"class_stats\":[");
        let mut classes = self.class_stats.clone();
        classes.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, n, busy)) in classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "[\"{name}\",{n},{}]", busy.as_ns()).unwrap();
        }
        out.push_str("],\"engine_counters\":[");
        let mut totals = EngineStats::default();
        for s in &self.engine_stats {
            totals.merge(s);
        }
        for (i, (name, v)) in totals.named_counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "[\"{name}\",{v}]").unwrap();
        }
        out.push_str("]}");
        out
    }
}

/// Counter snapshot taken at the start of an execution; run deltas are
/// computed against it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecBaseline {
    pub(crate) t0: SimTime,
    ev0: u64,
    clamp0: u64,
}

/// Everything one island contributes to the merged [`RunReport`]. Plain
/// `Send` data: per-node samples are kept separate so the coordinator can
/// reproduce the monolithic report's merge order (global node order)
/// bit-for-bit.
pub(crate) struct IslandPartial {
    /// The island's clock after its queue drained (global makespan is the
    /// max across islands).
    pub(crate) final_now: SimTime,
    pub(crate) sim_events: u64,
    pub(crate) schedule_past_clamped: u64,
    pub(crate) tasks_total: u64,
    /// Per resident node, in node order: (executed, worker_busy,
    /// e2e, msg, req).
    pub(crate) node_stats: Vec<(u64, SimTime, OnlineStats, OnlineStats, OnlineStats)>,
    pub(crate) classes: Vec<(&'static str, u64, SimTime)>,
    /// Per resident node: engine counters.
    pub(crate) engine_stats: Vec<EngineStats>,
    /// Per resident node: communication-core busy time and (LCI) the
    /// progress core's busy time, for utilization at the *global* end time.
    pub(crate) core_busy: Vec<(SimTime, Option<SimTime>)>,
}

/// A simulated cluster ready to execute task graphs.
pub struct Cluster {
    sim: Sim,
    fabric: FabricHandle,
    engines: Vec<Rc<CommEngine>>,
    workers: Vec<Vec<CoreHandle>>,
    cfg: ClusterConfig,
    /// Nodes resident on this instance. `0..cfg.nodes` for a monolithic
    /// cluster; a sub-range when this instance is one island of a
    /// partitioned run (see [`crate::island`]). Non-resident slots hold
    /// inert engines (their handlers never fire: the fabric diverts chunks
    /// for non-resident destinations to its outbox) and no `NodeRt`.
    local: Range<usize>,
    /// Active per-node runtimes (set during/after `execute`); indexed by
    /// global node id, `None` outside `local`.
    rts: Rc<RefCell<Option<Vec<Option<RtHandle>>>>>,
    /// Cluster-wide wire/compute concurrency integrator (Fig. 3).
    overlap: Shared<OverlapTracker>,
    /// NIC queue-depth counter samples from the fabric.
    net_trace: Shared<Trace>,
    /// Payloads of the last [`Cluster::execute_real`] run (real-substrate
    /// runs have no per-node `NodeRt` stores to query).
    real_data: Option<std::collections::HashMap<VersionId, Bytes>>,
    /// Observability artifacts of the last [`Cluster::execute_real`] run:
    /// merged wall-clock trace, lifecycle-stage histograms, calibration
    /// profile. Cleared by virtual executions.
    real_obs: Option<crate::real::RealObs>,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        let nodes = cfg.nodes;
        Self::new_partition(cfg, 0..nodes)
    }

    /// A cluster instance hosting only the nodes in `local` — one island of
    /// a partitioned run. The fabric and engines span the full cluster so
    /// global node ids stay valid end to end, but only resident nodes get
    /// runtimes, registered handlers, and init events; chunks addressed to
    /// non-resident nodes accumulate in the fabric outbox for the island
    /// coordinator to forward.
    pub(crate) fn new_partition(cfg: ClusterConfig, local: Range<usize>) -> Self {
        if let Some(k) = cfg.multicast_k {
            assert!(k >= 2, "multicast_k must be at least 2 (got {k})");
        }
        let mut fabric_cfg = cfg.fabric.clone();
        fabric_cfg.nodes = cfg.nodes;
        let mut engine_cfg = cfg.engine.clone();
        engine_cfg.backend = cfg.backend;
        engine_cfg.multithread_am = cfg.multithread_am;
        engine_cfg.trace = cfg.trace;
        engine_cfg.metrics = cfg.metrics;

        let mut sim = Sim::new();
        let fabric = Fabric::new_partition(fabric_cfg, local.clone());
        let net_trace = shared(Trace::new(cfg.trace));
        if cfg.trace {
            fabric.borrow_mut().set_trace(net_trace.clone());
        }
        let engines = CommWorld::create(&mut sim, &fabric, engine_cfg);
        let overlap = shared(OverlapTracker::new(cfg.nodes));
        if cfg.metrics {
            for engine in &engines {
                engine.set_overlap(overlap.clone());
            }
        }
        let workers: Vec<Vec<CoreHandle>> = (0..cfg.nodes)
            .map(|n| {
                (0..cfg.workers_per_node)
                    .map(|w| CoreResource::new_shared(format!("n{n}.w{w}")))
                    .collect()
            })
            .collect();

        let rts: Rc<RefCell<Option<Vec<Option<RtHandle>>>>> = Rc::new(RefCell::new(None));
        let resolve =
            |slot: &Rc<RefCell<Option<Vec<Option<RtHandle>>>>>, node: usize| -> RtHandle {
                slot.borrow().as_ref().expect("no active execution")[node]
                    .clone()
                    .expect("message delivered to non-resident node")
            };
        for node in local.clone() {
            let engine = &engines[node];
            engine.label_tag(AM_ACTIVATE, "activate");
            engine.label_tag(AM_GETDATA, "get");
            let slot = rts.clone();
            engine.register_am(
                &mut sim,
                AM_ACTIVATE,
                Rc::new(move |sim, _eng, ev| NodeRt::on_activate(&resolve(&slot, node), sim, ev)),
            );
            let slot = rts.clone();
            engine.register_am(
                &mut sim,
                AM_GETDATA,
                Rc::new(move |sim, _eng, ev| NodeRt::on_getdata(&resolve(&slot, node), sim, ev)),
            );
            let slot = rts.clone();
            engine.register_onesided(
                RTAG_DATA,
                Rc::new(move |sim, _eng, ev| NodeRt::on_data(&resolve(&slot, node), sim, ev)),
            );
        }

        Cluster {
            sim,
            fabric,
            engines,
            workers,
            cfg,
            local,
            rts,
            overlap,
            net_trace,
            real_data: None,
            real_obs: None,
        }
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Execute a task graph to completion (drains the virtual event queue)
    /// and report.
    pub fn execute(&mut self, graph: TaskGraph) -> RunReport {
        self.execute_handle(GraphHandle::new(graph), None)
    }

    /// Execute with PaRSEC-style bounded task discovery: unroll at most
    /// `window` tasks from `source` ahead of the completion frontier,
    /// retiring completed tasks and dead versions as the frontier passes,
    /// so peak memory is O(window) instead of O(total tasks). With a window
    /// at least the total task count, scheduling and the report are
    /// byte-identical to [`Cluster::execute`] on the same graph.
    pub fn execute_windowed(&mut self, source: Box<dyn GraphSource>, window: usize) -> RunReport {
        let handle = GraphHandle::new(TaskGraph::empty());
        let ctl = WindowCtl::new(self.cfg.nodes, handle.clone(), source, window);
        self.execute_handle(handle, Some(ctl))
    }

    /// Execute a task graph **for real** on `threads` work-stealing worker
    /// threads (`0` = one per core): wall-clock time, real OS threads, and
    /// the same ACTIVATE / GET DATA / put protocol over an in-process
    /// shared-memory transport. One thread is fully deterministic; at any
    /// thread count, Numeric payloads are bitwise identical to the virtual
    /// modes (kernels are pure functions of their fixed input versions).
    ///
    /// The report's times are wall-clock (`makespan`, `worker_busy`,
    /// latency stats); `comm_util` / `progress_util` / `sim_events` are 0 —
    /// there is no simulated communication core under a real run.
    pub fn execute_real(&mut self, graph: TaskGraph, threads: usize) -> RunReport {
        // A real run supersedes any virtual run's data stores and
        // observability, and vice versa (execute_handle clears both).
        *self.rts.borrow_mut() = None;
        let (report, data, obs) = crate::real::run(graph, &self.cfg, threads);
        self.real_data = Some(data);
        self.real_obs = Some(obs);
        report
    }

    /// [`Cluster::execute_real`] over a [`GraphSource`]: the source is
    /// fully unrolled first (real execution needs no discovery window —
    /// memory is bounded by the machine, not the simulator).
    pub fn execute_real_source(
        &mut self,
        mut source: Box<dyn GraphSource>,
        threads: usize,
    ) -> RunReport {
        let mut b = crate::graph::GraphBuilder::new(self.cfg.nodes);
        while source.next_task(&mut b) {}
        self.execute_real(b.build(), threads)
    }

    fn execute_handle(&mut self, graph: GraphHandle, window: Option<Rc<WindowCtl>>) -> RunReport {
        let start = self.begin_execution(&graph, window);
        self.sim.run();
        self.finish_execution(&graph, start)
    }

    /// Stand up per-node runtimes for the resident range and seed their
    /// initial events; returns the counter baseline for the run deltas.
    /// The caller drives the event loop (monolithic: [`Sim::run`] to drain;
    /// islands: horizon-bounded rounds) and then calls
    /// [`Cluster::finish_execution`] or [`Cluster::collect_partial`].
    pub(crate) fn begin_execution(
        &mut self,
        graph: &GraphHandle,
        window: Option<Rc<WindowCtl>>,
    ) -> ExecBaseline {
        self.real_data = None;
        self.real_obs = None;
        // One shared config allocation for every runtime on this instance.
        let shared_cfg = Rc::new(self.cfg.clone());
        let node_rts: Vec<Option<RtHandle>> = (0..self.cfg.nodes)
            .map(|n| {
                self.local.contains(&n).then(|| {
                    Rc::new(NodeRt::new(
                        n,
                        graph.clone(),
                        self.engines[n].clone(),
                        shared_cfg.clone(),
                        self.workers[n].clone(),
                        self.cfg.metrics.then(|| self.overlap.clone()),
                    ))
                })
            })
            .collect();
        *self.rts.borrow_mut() = Some(node_rts.clone());
        if let Some(ctl) = &window {
            assert_eq!(
                self.local,
                0..self.cfg.nodes,
                "windowed discovery is cluster-global and incompatible with island partitions"
            );
            let dense: Vec<RtHandle> = node_rts.iter().map(|rt| rt.clone().unwrap()).collect();
            ctl.attach(&dense);
            for rt in &dense {
                rt.set_window(Some(ctl.clone()));
            }
            ctl.prefill(&mut self.sim);
        }

        let baseline = ExecBaseline {
            t0: self.sim.now(),
            ev0: self.sim.events_executed(),
            clamp0: self.sim.schedule_past_clamped(),
        };
        for rt in node_rts.iter().flatten() {
            NodeRt::init(rt, &mut self.sim);
        }
        baseline
    }

    fn finish_execution(&mut self, graph: &GraphHandle, start: ExecBaseline) -> RunReport {
        let makespan = self.sim.now() - start.t0;
        let sim_events = self.sim.events_executed() - start.ev0;
        let schedule_past_clamped = self.sim.schedule_past_clamped() - start.clamp0;
        let rts = self.rts.borrow();
        let node_rts = rts.as_ref().expect("no active execution");
        // Break the NodeRt → WindowCtl → NodeRt reference cycle.
        for rt in node_rts.iter().flatten() {
            rt.set_window(None);
        }
        // After the run: in windowed mode the graph now holds every task
        // the source produced.
        let tasks_total = graph.get().task_count() as u64;

        let mut e2e = OnlineStats::new();
        let mut msg = OnlineStats::new();
        let mut req = OnlineStats::new();
        let mut executed = 0;
        let mut worker_busy = SimTime::ZERO;
        let mut classes: std::collections::HashMap<&'static str, (u64, SimTime)> =
            std::collections::HashMap::new();
        for rt in node_rts.iter().flatten() {
            rt.merge_stats(&mut e2e, &mut msg, &mut req, &mut classes);
            executed += rt.executed();
            worker_busy += rt.worker_busy();
        }
        let mut class_stats: Vec<(String, u64, SimTime)> = classes
            .into_iter()
            .map(|(k, (n, b))| (k.to_string(), n, b))
            .collect();
        class_stats.sort_by_key(|c| std::cmp::Reverse(c.2));
        let total_workers = (self.cfg.nodes * self.cfg.workers_per_node) as f64;
        let span = makespan.as_secs_f64().max(1e-12);
        let worker_util = worker_busy.as_secs_f64() / (span * total_workers);
        let now = self.sim.now();
        let comm_util = self
            .engines
            .iter()
            .map(|e| e.comm_core().borrow().utilization(now))
            .sum::<f64>()
            / self.cfg.nodes as f64;
        let progress_util = self
            .engines
            .iter()
            .filter_map(|e| e.progress_core().map(|c| c.borrow().utilization(now)))
            .sum::<f64>()
            / self.cfg.nodes as f64;

        RunReport {
            makespan,
            tasks_executed: executed,
            tasks_total,
            e2e_latency_us: e2e,
            msg_latency_us: msg,
            request_latency_us: req,
            worker_busy,
            worker_util,
            comm_util,
            progress_util,
            engine_stats: self.engines.iter().map(|e| e.stats()).collect(),
            class_stats,
            sim_events,
            schedule_past_clamped,
            pool: None,
        }
    }

    /// The island-side counterpart of [`Cluster::finish_execution`]: per-node
    /// samples kept separate (and core busy times instead of utilizations)
    /// so the coordinator can assemble a [`RunReport`] whose merge order and
    /// floating-point operations match a monolithic run exactly.
    pub(crate) fn collect_partial(
        &mut self,
        graph: &GraphHandle,
        start: ExecBaseline,
    ) -> IslandPartial {
        let rts = self.rts.borrow();
        let node_rts = rts.as_ref().expect("no active execution");
        let mut node_stats = Vec::new();
        let mut classes: std::collections::HashMap<&'static str, (u64, SimTime)> =
            std::collections::HashMap::new();
        for rt in node_rts.iter().flatten() {
            let mut e2e = OnlineStats::new();
            let mut msg = OnlineStats::new();
            let mut req = OnlineStats::new();
            rt.merge_stats(&mut e2e, &mut msg, &mut req, &mut classes);
            node_stats.push((rt.executed(), rt.worker_busy(), e2e, msg, req));
        }
        let engine_stats = self
            .local
            .clone()
            .map(|n| self.engines[n].stats())
            .collect();
        let core_busy = self
            .local
            .clone()
            .map(|n| {
                let e = &self.engines[n];
                (
                    e.comm_core().borrow().busy_time(),
                    e.progress_core().map(|c| c.borrow().busy_time()),
                )
            })
            .collect();
        IslandPartial {
            final_now: self.sim.now(),
            sim_events: self.sim.events_executed() - start.ev0,
            schedule_past_clamped: self.sim.schedule_past_clamped() - start.clamp0,
            tasks_total: graph.get().task_count() as u64,
            node_stats,
            classes: classes.into_iter().map(|(k, (n, b))| (k, n, b)).collect(),
            engine_stats,
            core_busy,
        }
    }

    pub(crate) fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    pub(crate) fn fabric_handle(&self) -> FabricHandle {
        self.fabric.clone()
    }

    /// Engine events executed over this cluster's lifetime.
    pub fn events_executed(&self) -> u64 {
        self.sim.events_executed()
    }

    /// Release-mode past-scheduling clamps over this cluster's lifetime
    /// (see [`RunReport::schedule_past_clamped`]).
    pub fn schedule_past_clamped(&self) -> u64 {
        self.sim.schedule_past_clamped()
    }

    /// Chrome-trace JSON of the last execution (enable with
    /// [`crate::ClusterConfig::trace`]); load in chrome://tracing or
    /// Perfetto. `None` before the first execution.
    ///
    /// Tracks follow a uniform naming scheme — `n{ix}.w{j}` for worker
    /// cores, `n{ix}.comm` / `n{ix}.prog` for the communication and
    /// progress threads — and merge order is irrelevant: thread ids are
    /// assigned in sorted track-name order at export time.
    pub fn trace_json(&self) -> Option<String> {
        // Real runs carry their merged wall-clock trace (task spans on the
        // same `n{ix}.w{j}` tracks, plus `pool.w{j}` steal/park activity);
        // a disabled real run serializes the same empty shell as a
        // disabled virtual run.
        if let Some(obs) = &self.real_obs {
            return Some(obs.trace.to_chrome_json());
        }
        let rts = self.rts.borrow();
        let rts = rts.as_ref()?;
        let mut merged = Trace::new(true);
        for rt in rts.iter().flatten() {
            rt.merge_trace_into(&mut merged);
        }
        for engine in &self.engines {
            merged.merge_from(&engine.trace_handle().borrow());
        }
        merged.merge_from(&self.net_trace.borrow());
        Some(merged.to_chrome_json())
    }

    /// Derived metrics of `report`'s execution (enable with
    /// [`crate::ClusterConfig::metrics`]): merged message-lifecycle stage
    /// histograms, engine counters, the Fig. 3 overlap fraction, and the
    /// Fig. 6 activation-latency breakdown. Deterministic: identical runs
    /// serialize to byte-identical JSON.
    pub fn metrics_report(&self, report: &RunReport) -> MetricsReport {
        // Real runs: wall-clock stage histograms from the shm transport
        // and per-worker pool counters. There is no overlap integrator on
        // the real path (no simulated wire), so wire/overlap are 0.
        if let Some(obs) = &self.real_obs {
            let mut engine_totals = EngineStats::default();
            for s in &report.engine_stats {
                engine_totals.merge(s);
            }
            return MetricsReport {
                backend: self.cfg.backend,
                substrate: "real",
                nodes: self.cfg.nodes,
                makespan_ns: report.makespan.as_ns(),
                sim_events: report.sim_events,
                schedule_past_clamped: report.schedule_past_clamped,
                events_peak_pending: 0,
                stages: obs.metrics.clone(),
                engine: engine_totals.named_counters().to_vec(),
                wire_ns: 0,
                overlap_ns: 0,
                overlap_fraction: 0.0,
                activation_msg: LatencySummary::from_stats(&report.msg_latency_us),
                activation_request: LatencySummary::from_stats(&report.request_latency_us),
                activation_e2e: LatencySummary::from_stats(&report.e2e_latency_us),
                pool: report.pool.clone(),
            };
        }
        let mut stages = amt_simnet::MetricsRegistry::new(true);
        for engine in &self.engines {
            stages.merge(&engine.metrics_handle().borrow());
            // Adaptive-controller state: per-node current knob values and
            // adaptation event counts. All-zero aggregates when the
            // controller is off, so consumers can key on them blindly —
            // but only when observability is on at all: a run with both
            // metrics and tuning disabled keeps its report empty.
            if self.cfg.metrics || self.cfg.engine.tune.enabled {
                for (name, v) in engine.tune_counters() {
                    stages.count(&name, v);
                }
            }
        }
        let mut engine_totals = EngineStats::default();
        for s in &report.engine_stats {
            engine_totals.merge(s);
        }
        let now = self.sim.now();
        let (wire, overlap) = self.overlap.borrow().totals(now);
        MetricsReport {
            backend: self.cfg.backend,
            substrate: "virtual",
            nodes: self.cfg.nodes,
            makespan_ns: report.makespan.as_ns(),
            sim_events: report.sim_events,
            schedule_past_clamped: report.schedule_past_clamped,
            events_peak_pending: self.sim.events_peak_pending() as u64,
            stages,
            engine: engine_totals.named_counters().to_vec(),
            wire_ns: wire.as_ns(),
            overlap_ns: overlap.as_ns(),
            overlap_fraction: self.overlap.borrow().fraction(now),
            activation_msg: LatencySummary::from_stats(&report.msg_latency_us),
            activation_request: LatencySummary::from_stats(&report.request_latency_us),
            activation_e2e: LatencySummary::from_stats(&report.e2e_latency_us),
            pool: None,
        }
    }

    /// Measured cost profile of the last [`Cluster::execute_real`] run
    /// (schema `amtlc-calib-v1`). `Some` only after a real execution with
    /// [`crate::ClusterConfig::metrics`] on. Feed it back to the simulator
    /// with [`crate::CostModel::from_profile`] to re-run with measured
    /// charges.
    pub fn calibration_profile(&self) -> Option<crate::calib::CalibrationProfile> {
        self.real_obs.as_ref().and_then(|o| o.calib.clone())
    }

    /// Payload of `version` from whichever node holds it (after a Numeric
    /// execution).
    pub fn data(&self, version: VersionId) -> Option<Bytes> {
        if let Some(real) = &self.real_data {
            return real.get(&version).cloned();
        }
        let rts = self.rts.borrow();
        let rts = rts.as_ref()?;
        rts.iter().flatten().find_map(|rt| rt.data(version))
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // The engines' registered callbacks hold the `rts` slot, and each
        // NodeRt holds its engine — an Rc cycle through the slot's
        // contents. Clear it so the node runtimes (and the task graph and
        // data store they reference) are actually freed.
        *self.rts.borrow_mut() = None;
    }
}
