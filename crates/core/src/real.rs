//! Real execution of a task graph on the `amt-exec` work-stealing pool —
//! the **real substrate** behind [`crate::Cluster::execute_real`].
//!
//! The same graph, kernels, and ACTIVATE / GET DATA / put protocol as the
//! virtual path, but with wall-clock time and real OS threads:
//!
//! * every worker thread can execute any node's tasks (one shared pool —
//!   in a single shared-memory process, node affinity governs *data
//!   placement and protocol*, not thread placement);
//! * dependence tracking is a per-task atomic countdown over the graph's
//!   consumer lists — the release that takes a count to zero spawns the
//!   task as a pool job (LIFO local, stealable);
//! * cross-node dataflows run the real protocol over the in-process
//!   shared-memory transport ([`ShmWorld`]): ACTIVATE records announce a
//!   produced version to remote consumer nodes, the consumer requests the
//!   payload with a GET DATA record, and the owner answers with a
//!   one-sided put carrying a callback descriptor — all encoded with the
//!   exact wire records of the simulated engines
//!   ([`crate::records`]), drawn from and recycled into thread-safe
//!   buffer pools.
//!
//! ## Differences from the virtual path (by design)
//!
//! * No engine-level AM aggregation: that is an engine behavior under
//!   *study* in the simulator; here every record travels as its own wire
//!   message. GETs issue immediately by default; with the adaptive
//!   controller on (`cfg.engine.tune.enabled`) a per-node gate caps
//!   concurrent fetches and AIMD-adjusts the cap from wall-clock
//!   completion rate — the same [`amt_comm::WindowState`] the virtual
//!   engines step in virtual time, fed inverse goodput here.
//! * Multicast *is* honored: with `bcast_tree_min` set, wide announces
//!   fan out over the same forward-list trees as the virtual engines
//!   (binomial halving, or k-ary under `multicast_k`). Control flows
//!   relay down the tree immediately; data flows relay only once the
//!   payload is locally present, so children always GET from a tree
//!   parent that holds the data.
//! * Startup and quiescence run on the collectives primitives
//!   ([`amt_comm::kary_children`] / [`amt_comm::TreeReduce`]): a
//!   go-token broadcast down a k-ary tree starts each node's announces
//!   and seed tasks, and per-node executed-task counts reduce back up
//!   the same tree to confirm completion at the root — no single root
//!   job touching every node's state.
//! * `e2e`/`msg`/`request` latencies are wall-clock (anchored at pool
//!   start), measured through the same record timestamps as §6.1.3.
//!
//! ## Determinism
//!
//! With one worker thread, execution order is fully deterministic. At any
//! thread count the *payloads* are bitwise identical run to run (and to
//! the virtual modes and the sequential oracle): kernels are pure
//! functions of their input versions and the graph fixes every data
//! dependence, so no floating-point reduction order ever varies — only
//! scheduling order does.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use amt_comm::{
    kary_children, EngineStats, ReduceStep, ShmMsg, ShmWorld, TreeReduce, WindowBounds, WindowState,
};
use amt_exec::{Pool, TraceEvent};
use amt_simnet::{MetricsRegistry, OnlineStats, SimTime, Substrate, Trace};
use bytes::{Buf, BufMut, Bytes, Frames};

use crate::calib::{
    CalibrationProfile, CostSummary, REC_ACTIVATE, REC_ARRIVAL, REC_GET_REQUEST, REC_TASK_OVERHEAD,
};
use crate::cluster::RunReport;
use crate::config::ClusterConfig;
use crate::graph::{TaskGraph, TaskId, VersionId};
use crate::node::{AM_ACTIVATE, AM_GETDATA, RTAG_DATA};
use crate::records::{tree_children, tree_children_k, ActivateRec, GetRec, PutCb};

/// AM tag of the startup go-token broadcast down the collective tree.
const AM_COLL_GO: u64 = 3;
/// AM tag of quiescence-reduce partial sums up the collective tree.
const AM_COLL_SUM: u64 = 4;

/// Steal-victim seed for [`crate::Cluster::execute_real`] pools; fixed so
/// probe sequences are reproducible run to run.
const STEAL_SEED: u64 = 0x5eed_ca11_ab1e;

/// Receive-buffer pool depth per node endpoint.
const SHM_POOL_BUFS: usize = 64;

/// Per-node version store: which versions have arrived here, their
/// payloads, and which GETs are already in flight.
struct NodeStore {
    present: Vec<bool>,
    requested: Vec<bool>,
    payload: HashMap<usize, Bytes>,
    /// Multicast subtrees (`(forward list, priority)`) this node must
    /// relay once the version's data arrives.
    pending_forwards: HashMap<usize, (Vec<u32>, i64)>,
}

/// Per-node adaptive GET gate (real path, controller on only): caps the
/// number of concurrent payload fetches and widens or halves the cap from
/// the wall-clock completion rate. Deferred GETs drain on completions, and
/// the window never drops below the configured floor (≥ 1), so every
/// deferred fetch eventually issues — no protocol stall.
struct GetGate {
    inflight: u64,
    deferred: VecDeque<(usize, GetRec)>,
    win: WindowState,
    epoch_start_ns: u64,
    completed: u64,
    raises: u64,
    cuts: u64,
}

impl GetGate {
    fn new(start: u64) -> Self {
        GetGate {
            inflight: 0,
            deferred: VecDeque::new(),
            win: WindowState::new(start),
            epoch_start_ns: 0,
            completed: 0,
            raises: 0,
            cuts: 0,
        }
    }
}

/// Per-worker execution accounting (merged into the report at the end).
#[derive(Default)]
struct WorkerStat {
    busy_ns: u64,
    executed: u64,
    classes: HashMap<&'static str, (u64, u64)>,
}

/// Per-node message-lifecycle latency collectors.
#[derive(Default)]
struct FlowStats {
    e2e: OnlineStats,
    msg: OnlineStats,
    req: OnlineStats,
}

/// Raw calibration samples (only collected when metrics are on): kernel
/// wall times per task class, handler wall times per record kind.
#[derive(Default)]
struct CalibSamples {
    classes: BTreeMap<&'static str, Vec<u64>>,
    records: BTreeMap<&'static str, Vec<u64>>,
}

/// Observability artifacts of one real execution, carried back to the
/// [`crate::Cluster`] so `trace_json` / `metrics_report` /
/// `calibration_profile` answer for real runs exactly like virtual ones.
pub(crate) struct RealObs {
    /// Merged wall-clock trace (the empty shell when tracing was off, so
    /// a disabled real run serializes the same `{"traceEvents":[]}` as a
    /// disabled virtual run).
    pub(crate) trace: Trace,
    /// Message-lifecycle stage histograms merged across nodes (disabled
    /// and empty when metrics were off).
    pub(crate) metrics: MetricsRegistry,
    /// Measured cost profile (`Some` only when metrics were on).
    pub(crate) calib: Option<CalibrationProfile>,
}

/// Shared state of one real execution. `Sync`: the graph is read-only
/// during the run, stores are mutex-guarded, counts are atomics.
struct RealRun {
    graph: TaskGraph,
    remaining: Vec<AtomicU32>,
    stores: Vec<Mutex<NodeStore>>,
    shm: ShmWorld,
    worker_stats: Vec<Mutex<WorkerStat>>,
    flows: Vec<Mutex<FlowStats>>,
    executed: AtomicU64,
    /// Per-node executed-task counts — the contributions of the
    /// quiescence tree reduce.
    node_executed: Vec<AtomicU64>,
    /// Quiescence reduce over the collective tree (root = node 0).
    reduce: TreeReduce,
    /// Announce over a multicast tree when a version has at least this
    /// many remote consumers (`None` = always unicast).
    bcast_tree_min: Option<usize>,
    /// Multicast tree arity (`None` = binomial halving).
    multicast_k: Option<usize>,
    /// Arity of the startup/quiescence collective trees.
    coll_k: usize,
    /// Gate for handler timing and calibration sampling; `false` keeps
    /// the unobserved hot path free of extra clock reads and locks.
    metrics_on: bool,
    /// Adaptive GET gates (`Some` only when `cfg.engine.tune.enabled`),
    /// with the shared AIMD bounds and wall-clock epoch length.
    get_gates: Option<Vec<Mutex<GetGate>>>,
    tune_bounds: WindowBounds,
    tune_epoch_ns: u64,
    calib: Mutex<CalibSamples>,
}

// Compile-time guarantee that the whole run state crosses threads.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<RealRun>();
};

impl RealRun {
    fn new(graph: TaskGraph, cfg: &ClusterConfig, pool_threads: usize) -> RealRun {
        let nodes = cfg.nodes;
        let metrics = cfg.metrics;
        let coll_k = cfg.multicast_k.unwrap_or(2);
        let nv = graph.version_count();
        let remaining = graph
            .tasks()
            .map(|t| {
                let missing = t
                    .inputs
                    .iter()
                    .filter(|v| {
                        let ver = graph.version(v.0);
                        !(ver.producer.is_none() && ver.home == t.node)
                    })
                    .count() as u32;
                AtomicU32::new(missing)
            })
            .collect();
        let stores = (0..nodes)
            .map(|n| {
                let mut s = NodeStore {
                    present: vec![false; nv],
                    requested: vec![false; nv],
                    payload: HashMap::new(),
                    pending_forwards: HashMap::new(),
                };
                for (i, v) in graph.versions().enumerate() {
                    if v.producer.is_none() && v.home == n {
                        s.present[i] = true;
                        if let Some(b) = &v.initial {
                            s.payload.insert(i, b.clone());
                        }
                    }
                }
                Mutex::new(s)
            })
            .collect();
        let shm = ShmWorld::new_observed(nodes, SHM_POOL_BUFS, metrics);
        shm.label_tag(AM_ACTIVATE, "activate");
        shm.label_tag(AM_GETDATA, "get");
        shm.label_tag(AM_COLL_GO, "coll");
        shm.label_tag(AM_COLL_SUM, "coll");
        RealRun {
            remaining,
            stores,
            shm,
            worker_stats: (0..pool_threads)
                .map(|_| Mutex::new(WorkerStat::default()))
                .collect(),
            flows: (0..nodes)
                .map(|_| Mutex::new(FlowStats::default()))
                .collect(),
            executed: AtomicU64::new(0),
            node_executed: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            reduce: TreeReduce::new(nodes, 0, coll_k),
            bcast_tree_min: cfg.bcast_tree_min,
            multicast_k: cfg.multicast_k,
            coll_k,
            metrics_on: metrics,
            get_gates: cfg.engine.tune.enabled.then(|| {
                let b = cfg.engine.tune.get_window_bounds();
                let start = (cfg.get_window as u64).clamp(b.min, b.max);
                (0..nodes)
                    .map(|_| Mutex::new(GetGate::new(start)))
                    .collect()
            }),
            tune_bounds: cfg.engine.tune.get_window_bounds(),
            tune_epoch_ns: cfg.engine.tune.epoch_ns,
            calib: Mutex::new(CalibSamples::default()),
            graph,
        }
    }

    /// Split a multicast destination list into child subtrees: k-way when
    /// the configuration names an arity, binomial recursive halving
    /// otherwise (the exact split the virtual engines use).
    fn split_subtree(&self, ids: &[u32]) -> Vec<(u32, Vec<u32>)> {
        match self.multicast_k {
            Some(k) => tree_children_k(ids, k),
            None => tree_children(ids),
        }
    }

    /// Append one record-handler duration sample (metrics mode only).
    fn record_sample(&self, key: &'static str, ns: u64) {
        self.calib
            .lock()
            .expect("calib samples")
            .records
            .entry(key)
            .or_default()
            .push(ns);
    }

    /// Append one kernel wall-time sample (metrics mode only).
    fn kernel_sample(&self, name: &'static str, ns: u64) {
        self.calib
            .lock()
            .expect("calib samples")
            .classes
            .entry(name)
            .or_default()
            .push(ns);
    }

    /// Remote consumer nodes of version `v`, deduplicated, ascending.
    fn remote_consumer_nodes(&self, v: usize) -> Vec<usize> {
        let ver = self.graph.version(v);
        let mut dests: Vec<usize> = ver
            .consumers
            .iter()
            .map(|&t| self.graph.task(t).node)
            .filter(|&n| n != ver.home)
            .collect();
        dests.sort_unstable();
        dests.dedup();
        dests
    }

    /// Mark `v` present at `node` (payload optional) and return the local
    /// consumer tasks this release made ready, in task order.
    fn fulfill_local(&self, node: usize, v: usize, payload: Option<Bytes>) -> Vec<TaskId> {
        let mut ready = Vec::new();
        {
            let mut store = self.stores[node].lock().expect("node store");
            debug_assert!(
                !store.present[v],
                "version {v} delivered twice to node {node}"
            );
            store.present[v] = true;
            if let Some(b) = payload {
                store.payload.insert(v, b);
            }
        }
        for &t in &self.graph.version(v).consumers {
            if self.graph.task(t).node == node && self.remaining[t].fetch_sub(1, SeqCst) == 1 {
                ready.push(t);
            }
        }
        ready
    }
}

/// Announce `v` to every remote consumer node and schedule their
/// progress; called once, by the producer's node (or that node's startup
/// for initial versions). Wide announces go down a multicast tree when
/// `bcast_tree_min` allows; each destination still receives exactly one
/// ACTIVATE.
fn announce(sub: &mut dyn Substrate, run: &Arc<RealRun>, v: usize) {
    let ver = run.graph.version(v);
    let home = ver.home;
    let priority = ver
        .producer
        .map(|t| run.graph.task(t).priority)
        .unwrap_or(0);
    let dests = run.remote_consumer_nodes(v);
    if run.bcast_tree_min.is_some_and(|m| dests.len() >= m) {
        let ids: Vec<u32> = dests.iter().map(|&d| d as u32).collect();
        let now_ns = sub.now().as_ns();
        relay_subtree(sub, run, home, v, &ids, priority, now_ns);
        return;
    }
    for dst in dests {
        let now_ns = sub.now().as_ns();
        let rec = ActivateRec::direct(v as u64, ver.size as u64, priority, now_ns);
        let frame = rec.encode_one_shared(run.shm.node(home).pool());
        run.shm
            .send_am(home, dst, AM_ACTIVATE, Frames::One(frame), now_ns);
        spawn_progress(sub, run, dst);
    }
}

/// Send ACTIVATEs for `v` to the tree children of `subtree`, each
/// carrying its forward list; `sent_at_ns` is the *original* announce
/// instant so downstream latencies span the whole multicast path, exactly
/// like the virtual engines' relays.
fn relay_subtree(
    sub: &mut dyn Substrate,
    run: &Arc<RealRun>,
    node: usize,
    v: usize,
    subtree: &[u32],
    priority: i64,
    sent_at_ns: u64,
) {
    let size = run.graph.version(v).size as u64;
    for (child, forward) in run.split_subtree(subtree) {
        let rec = ActivateRec {
            version: v as u64,
            size,
            priority,
            sent_at_ns,
            forward,
        };
        let frame = rec.encode_one_shared(run.shm.node(node).pool());
        run.shm.send_am(
            node,
            child as usize,
            AM_ACTIVATE,
            Frames::One(frame),
            sub.now().as_ns(),
        );
        spawn_progress(sub, run, child as usize);
    }
}

/// Spawn a task-execution job.
fn spawn_task(sub: &mut dyn Substrate, run: &Arc<RealRun>, t: TaskId) {
    let run = run.clone();
    sub.defer(Box::new(move |sub| exec_task(sub, &run, t)));
}

/// Spawn a progress job draining `node`'s shm mailbox.
fn spawn_progress(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize) {
    let run = run.clone();
    sub.defer(Box::new(move |sub| progress(sub, &run, node)));
}

/// Execute task `t` on its home node's store, then run the completion
/// protocol: mark outputs present, release local consumers, announce to
/// remote ones.
fn exec_task(sub: &mut dyn Substrate, run: &Arc<RealRun>, t: TaskId) {
    let task = run.graph.task(t);
    let node = task.node;
    // Dispatch-overhead measurement brackets the whole job (input gather,
    // kernel, completion protocol); metrics mode only.
    let t_entry = run.metrics_on.then(|| sub.now());

    // Gather input payloads (only data-carrying versions feed kernels,
    // exactly like the sequential oracle).
    let inputs: Vec<Bytes> = if task.kernel.is_some() {
        let store = run.stores[node].lock().expect("node store");
        task.inputs
            .iter()
            .filter(|v| run.graph.version(v.0).size > 0)
            .map(|v| {
                store
                    .payload
                    .get(&v.0)
                    .unwrap_or_else(|| panic!("task {t}: input {} missing at node {node}", v.0))
                    .clone()
            })
            .collect()
    } else {
        Vec::new()
    };

    let started = sub.now();
    let outs: Vec<Bytes> = match &task.kernel {
        Some(k) => k(&inputs),
        None => Vec::new(),
    };
    let ended = sub.now();
    let busy_ns = (ended - started).as_ns();
    // On a traced pool this lands in the worker's lock-free buffer; on an
    // untraced pool (and the virtual substrate) it is a no-op.
    sub.trace_task(task.name, node, started, ended);
    if task.kernel.is_some() {
        assert_eq!(outs.len(), task.outputs.len(), "kernel output arity");
    }

    // Worker accounting.
    if let Some(w) = sub.worker() {
        let mut ws = run.worker_stats[w].lock().expect("worker stat");
        ws.busy_ns += busy_ns;
        ws.executed += 1;
        let e = ws.classes.entry(task.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += busy_ns;
    }
    run.executed.fetch_add(1, SeqCst);
    run.node_executed[node].fetch_add(1, SeqCst);
    if run.metrics_on {
        run.kernel_sample(task.name, busy_ns);
    }

    // Completion: outputs become present locally; collect newly-ready
    // local tasks, then announce to remote consumers.
    let mut ready: Vec<TaskId> = Vec::new();
    let mut payloads = outs.into_iter();
    for &out in &task.outputs {
        let payload = task.kernel.is_some().then(|| {
            payloads
                .next()
                .expect("one kernel payload per declared write")
        });
        ready.extend(run.fulfill_local(node, out.0, payload));
    }
    for t in ready {
        spawn_task(sub, run, t);
    }
    for &out in &task.outputs {
        announce(sub, run, out.0);
    }
    if let Some(t_entry) = t_entry {
        let total_ns = (sub.now() - t_entry).as_ns();
        run.record_sample(REC_TASK_OVERHEAD, total_ns.saturating_sub(busy_ns));
    }
}

/// Drain and handle every message pending at `node`.
fn progress(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize) {
    while let Some(msg) = run.shm.node(node).pop() {
        let now_ns = sub.now().as_ns();
        match msg {
            ShmMsg::Am {
                src,
                tag,
                frames,
                sent_at_ns,
            } if tag == AM_ACTIVATE => {
                run.shm.delivered(node, false, 0, now_ns, sent_at_ns);
                let recs = ActivateRec::decode_frames(&frames);
                run.shm.node(node).pool().recycle_frames(frames);
                let mut callback_ns = 0u64;
                for rec in recs {
                    let t0 = run.metrics_on.then(|| sub.now());
                    on_activate(sub, run, node, src, rec);
                    if let Some(t0) = t0 {
                        let d = (sub.now() - t0).as_ns();
                        callback_ns += d;
                        run.record_sample(REC_ACTIVATE, d);
                    }
                }
                if run.metrics_on {
                    run.shm.record_stage(node, "am.callback_ns", callback_ns);
                }
            }
            ShmMsg::Am {
                src,
                tag,
                frames,
                sent_at_ns,
            } if tag == AM_GETDATA => {
                run.shm.delivered(node, false, 0, now_ns, sent_at_ns);
                let recs = GetRec::decode_frames(&frames);
                run.shm.node(node).pool().recycle_frames(frames);
                let mut callback_ns = 0u64;
                for rec in recs {
                    let t0 = run.metrics_on.then(|| sub.now());
                    on_getdata(sub, run, node, src, rec);
                    if let Some(t0) = t0 {
                        let d = (sub.now() - t0).as_ns();
                        callback_ns += d;
                        run.record_sample(REC_GET_REQUEST, d);
                    }
                }
                if run.metrics_on {
                    run.shm.record_stage(node, "am.callback_ns", callback_ns);
                }
            }
            ShmMsg::Am {
                tag,
                frames,
                sent_at_ns,
                ..
            } if tag == AM_COLL_GO => {
                run.shm.delivered(node, false, 0, now_ns, sent_at_ns);
                run.shm.node(node).pool().recycle_frames(frames);
                node_startup(sub, run, node);
            }
            ShmMsg::Am {
                tag,
                frames,
                sent_at_ns,
                ..
            } if tag == AM_COLL_SUM => {
                run.shm.delivered(node, false, 0, now_ns, sent_at_ns);
                let partials: Vec<u64> = frames
                    .iter()
                    .map(|b| {
                        let mut b = b.clone();
                        b.get_u64_le()
                    })
                    .collect();
                run.shm.node(node).pool().recycle_frames(frames);
                for p in partials {
                    let step = run.reduce.arrive(node, p);
                    coll_step(sub, run, node, step);
                }
            }
            ShmMsg::Am { tag, .. } => panic!("unregistered AM tag {tag}"),
            ShmMsg::Put {
                r_tag,
                data,
                size,
                cb,
                sent_at_ns,
                ..
            } => {
                debug_assert_eq!(r_tag, RTAG_DATA, "unexpected one-sided tag");
                run.shm.delivered(node, true, size, now_ns, sent_at_ns);
                let t0 = run.metrics_on.then(|| sub.now());
                on_data(sub, run, node, data, cb);
                if let Some(t0) = t0 {
                    let d = (sub.now() - t0).as_ns();
                    run.record_sample(REC_ARRIVAL, d);
                    run.shm.record_stage(node, "put.callback_ns", d);
                }
            }
        }
    }
}

/// Startup at `node`, triggered by the go-token reaching it: relay the
/// token to the node's collective-tree children first (subtree startups
/// overlap with this node's own work), then announce this node's initial
/// versions and seed its dependence-free tasks, in task order.
fn node_startup(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize) {
    for child in kary_children(node, 0, run.shm.len(), run.coll_k) {
        run.shm
            .send_am(node, child, AM_COLL_GO, Frames::new(), sub.now().as_ns());
        spawn_progress(sub, run, child);
    }
    for v in 0..run.graph.version_count() {
        let ver = run.graph.version(v);
        if ver.producer.is_none() && ver.home == node {
            announce(sub, run, v);
        }
    }
    // Seed only *statically* dependence-free tasks — every input a
    // pre-satisfied initial version homed here. Tasks whose counters hit
    // zero dynamically are spawned by `fulfill_local` at the releasing
    // delivery; re-checking live counters here would double-spawn any
    // task released by a remote flow that outran this node's go token.
    let ready: Vec<TaskId> = (0..run.graph.task_count())
        .filter(|&t| {
            let task = run.graph.task(t);
            task.node == node
                && task.inputs.iter().all(|v| {
                    let ver = run.graph.version(v.0);
                    ver.producer.is_none() && ver.home == node
                })
        })
        .collect();
    for t in ready {
        spawn_task(sub, run, t);
    }
}

/// Act on one quiescence-reduce transition: forward a completed partial
/// sum to the tree parent (the root's completion is read off
/// [`TreeReduce::result`] after the pool drains).
fn coll_step(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize, step: ReduceStep) {
    match step {
        ReduceStep::Send { parent, partial } => {
            let mut b = run.shm.node(node).pool().take(8);
            b.put_u64_le(partial);
            run.shm.send_am(
                node,
                parent,
                AM_COLL_SUM,
                Frames::One(b.freeze()),
                sub.now().as_ns(),
            );
            spawn_progress(sub, run, parent);
        }
        ReduceStep::Done(_) | ReduceStep::Wait => {}
    }
}

/// ACTIVATE at a consumer node: control flows complete immediately; data
/// flows request the payload from the producing node.
fn on_activate(
    sub: &mut dyn Substrate,
    run: &Arc<RealRun>,
    node: usize,
    src: usize,
    rec: ActivateRec,
) {
    let now = sub.now().as_ns();
    let lat = SimTime::from_ns(now.saturating_sub(rec.sent_at_ns));
    {
        let mut f = run.flows[node].lock().expect("flow stats");
        f.msg.record_time_us(lat);
    }
    let v = rec.version as usize;
    if rec.size == 0 {
        // Pure control dependence: no payload will follow; relay the
        // multicast subtree (if any) immediately — there is no data to
        // wait for.
        {
            let mut f = run.flows[node].lock().expect("flow stats");
            f.e2e.record_time_us(lat);
        }
        let ready = run.fulfill_local(node, v, None);
        for t in ready {
            spawn_task(sub, run, t);
        }
        if !rec.forward.is_empty() {
            relay_subtree(
                sub,
                run,
                node,
                v,
                &rec.forward,
                rec.priority,
                rec.sent_at_ns,
            );
        }
        return;
    }
    {
        let mut store = run.stores[node].lock().expect("node store");
        debug_assert!(
            !store.requested[v],
            "version {v} requested twice by node {node}"
        );
        store.requested[v] = true;
        if !rec.forward.is_empty() {
            // Data flow: relay only once the payload lands here (on_data),
            // so children GET from a parent that holds it.
            store
                .pending_forwards
                .insert(v, (rec.forward.clone(), rec.priority));
        }
    }
    let get = GetRec {
        version: rec.version,
        activate_sent_at_ns: rec.sent_at_ns,
    };
    send_get(sub, run, node, src, get);
}

/// Issue one GET DATA request, or defer it when the node's adaptive gate
/// (controller on only) is at its in-flight cap.
fn send_get(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize, src: usize, get: GetRec) {
    if let Some(gates) = &run.get_gates {
        let mut g = gates[node].lock().expect("get gate");
        if g.inflight >= g.win.window {
            g.deferred.push_back((src, get));
            return;
        }
        g.inflight += 1;
    }
    let frame = get.encode_shared(run.shm.node(node).pool());
    run.shm
        .send_am(node, src, AM_GETDATA, Frames::One(frame), sub.now().as_ns());
    spawn_progress(sub, run, src);
}

/// Account one completed GET at the node's gate: close the wall-clock
/// epoch when due (AIMD on inverse goodput — ns per completed flow) and
/// drain deferred fetches into the freed window.
fn complete_get(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize) {
    let Some(gates) = &run.get_gates else {
        return;
    };
    let now = sub.now().as_ns();
    let mut release = Vec::new();
    {
        let mut g = gates[node].lock().expect("get gate");
        g.inflight = g.inflight.saturating_sub(1);
        g.completed += 1;
        let elapsed = now.saturating_sub(g.epoch_start_ns);
        if elapsed >= run.tune_epoch_ns {
            let flows = g.completed;
            match g.win.epoch(&run.tune_bounds, flows, elapsed) {
                1 => g.raises += 1,
                -1 => g.cuts += 1,
                _ => {}
            }
            g.completed = 0;
            g.epoch_start_ns = now;
        }
        while g.inflight < g.win.window {
            match g.deferred.pop_front() {
                Some(d) => {
                    g.inflight += 1;
                    release.push(d);
                }
                None => break,
            }
        }
    }
    for (src, get) in release {
        let frame = get.encode_shared(run.shm.node(node).pool());
        run.shm
            .send_am(node, src, AM_GETDATA, Frames::One(frame), sub.now().as_ns());
        spawn_progress(sub, run, src);
    }
}

/// GET DATA at the owner: answer with a one-sided put of the payload.
fn on_getdata(sub: &mut dyn Substrate, run: &Arc<RealRun>, node: usize, src: usize, rec: GetRec) {
    let now = sub.now().as_ns();
    {
        let mut f = run.flows[node].lock().expect("flow stats");
        f.req.record_time_us(SimTime::from_ns(
            now.saturating_sub(rec.activate_sent_at_ns),
        ));
    }
    let v = rec.version as usize;
    let size = run.graph.version(v).size;
    let data = {
        let store = run.stores[node].lock().expect("node store");
        debug_assert!(
            store.present[v],
            "GET for version {v} the owner does not hold"
        );
        store.payload.get(&v).cloned()
    };
    let cb = PutCb {
        version: rec.version,
        activate_sent_at_ns: rec.activate_sent_at_ns,
    }
    .encode_shared(run.shm.node(node).pool());
    run.shm
        .put(node, src, RTAG_DATA, data, size, cb, sub.now().as_ns());
    spawn_progress(sub, run, src);
}

/// Put arrival at the consumer: the flow is complete; fulfill and release.
fn on_data(
    sub: &mut dyn Substrate,
    run: &Arc<RealRun>,
    node: usize,
    data: Option<Bytes>,
    cb: Bytes,
) {
    let cb = PutCb::decode(cb);
    let now = sub.now().as_ns();
    {
        let mut f = run.flows[node].lock().expect("flow stats");
        f.e2e
            .record_time_us(SimTime::from_ns(now.saturating_sub(cb.activate_sent_at_ns)));
    }
    let v = cb.version as usize;
    complete_get(sub, run, node);
    let ready = run.fulfill_local(node, v, data);
    for t in ready {
        spawn_task(sub, run, t);
    }
    // Multicast relay: the data is local now; announce it down the
    // subtree so children GET it from this node.
    let fwd = {
        let mut store = run.stores[node].lock().expect("node store");
        store.pending_forwards.remove(&v)
    };
    if let Some((subtree, priority)) = fwd {
        relay_subtree(
            sub,
            run,
            node,
            v,
            &subtree,
            priority,
            cb.activate_sent_at_ns,
        );
    }
}

/// Rebuild a wall-clock [`Trace`] from the pool's drained per-worker
/// event buffers. Task spans land on `n{node}.w{worker}` tracks (the
/// same vocabulary as virtual traces); steal arrows, park/unpark
/// instants, and queue-depth counters on `pool.w{worker}` tracks.
fn build_trace(drained: Option<Vec<Vec<TraceEvent>>>) -> Trace {
    let mut trace = Trace::new(drained.is_some());
    let Some(per_worker) = drained else {
        return trace;
    };
    for (w, events) in per_worker.into_iter().enumerate() {
        let worker = format!("pool.w{w}");
        for ev in events {
            match ev {
                TraceEvent::Span {
                    name,
                    node,
                    start_ns,
                    end_ns,
                } => trace.record(
                    format!("n{node}.w{w}"),
                    name,
                    SimTime::from_ns(start_ns),
                    SimTime::from_ns(end_ns),
                ),
                TraceEvent::Steal { id, victim, at_ns } => {
                    let at = SimTime::from_ns(at_ns);
                    // Zero-width anchor slices on both tracks so viewers
                    // that bind flows to enclosing slices render the
                    // arrow; `id` pairs the endpoints.
                    trace.record(format!("pool.w{victim}"), "stolen", at, at);
                    trace.record(worker.clone(), "steal", at, at);
                    trace.flow_start(format!("pool.w{victim}"), "steal", id, at);
                    trace.flow_end(worker.clone(), "steal", id, at);
                }
                TraceEvent::Park { at_ns } => {
                    trace.instant(worker.clone(), "park", SimTime::from_ns(at_ns));
                }
                TraceEvent::Unpark { at_ns } => {
                    trace.instant(worker.clone(), "unpark", SimTime::from_ns(at_ns));
                }
                TraceEvent::DequeDepth { at_ns, depth } => {
                    trace.counter(
                        format!("{worker}.deque"),
                        SimTime::from_ns(at_ns),
                        depth as f64,
                    );
                }
                TraceEvent::InjectorDepth { at_ns, depth } => {
                    trace.counter(
                        format!("{worker}.injector"),
                        SimTime::from_ns(at_ns),
                        depth as f64,
                    );
                }
            }
        }
    }
    trace
}

/// Execute `graph` for real on `threads` pool workers (`0` = one per
/// core). Returns the run report, every payload held anywhere at the
/// end (for [`crate::Cluster::data`]), and the run's observability
/// artifacts.
pub(crate) fn run(
    graph: TaskGraph,
    cfg: &ClusterConfig,
    threads: usize,
) -> (RunReport, HashMap<VersionId, Bytes>, RealObs) {
    let pool = if cfg.trace {
        Pool::new_traced(threads, STEAL_SEED)
    } else {
        Pool::new(threads, STEAL_SEED)
    };
    let threads = pool.threads();
    let nodes = cfg.nodes;
    let tasks_total = graph.task_count() as u64;
    let run = Arc::new(RealRun::new(graph, cfg, threads));

    let t0 = pool.now();
    // Startup collective: the root's startup job relays a go-token down
    // the k-ary tree; every node announces its own initial versions and
    // seeds its own dependence-free tasks when the token reaches it.
    {
        let run2 = run.clone();
        pool.spawn(Box::new(move |sub| node_startup(sub, &run2, 0)));
    }
    pool.run_until_idle();
    let makespan = pool.now() - t0;
    // Quiescence collective: every node contributes its executed-task
    // count to a tree reduce; partial sums climb to the root, which must
    // see exactly the graph's task count. Runs after the makespan clock
    // stops — it is a completion check, not part of the workload.
    {
        let run2 = run.clone();
        pool.spawn(Box::new(move |sub| {
            for node in 0..run2.shm.len() {
                let count = run2.node_executed[node].load(SeqCst);
                let step = run2.reduce.contribute(node, count);
                coll_step(sub, &run2, node, step);
            }
        }));
    }
    pool.run_until_idle();
    // Quiescence first, then the observability drains: every worker's
    // buffer publications happen-before the parked state run_until_idle
    // observed, so the snapshots are complete.
    let pool_stats = pool.stats();
    let trace = build_trace(pool.drain_trace());
    drop(pool);

    let run = Arc::try_unwrap(run).unwrap_or_else(|_| panic!("run state still shared after idle"));
    let executed = run.executed.load(SeqCst);
    assert_eq!(
        executed, tasks_total,
        "real execution drained with unexecuted tasks (protocol stall)"
    );
    let reduced = run
        .reduce
        .result()
        .expect("quiescence reduce did not complete at the root");
    assert_eq!(
        reduced, tasks_total,
        "quiescence reduce disagrees with the task count"
    );

    let mut e2e = OnlineStats::new();
    let mut msg = OnlineStats::new();
    let mut req = OnlineStats::new();
    for f in &run.flows {
        let f = f.lock().expect("flow stats");
        e2e.merge(&f.e2e);
        msg.merge(&f.msg);
        req.merge(&f.req);
    }
    let mut worker_busy_ns = 0u64;
    let mut classes: HashMap<&'static str, (u64, u64)> = HashMap::new();
    for w in &run.worker_stats {
        let w = w.lock().expect("worker stat");
        worker_busy_ns += w.busy_ns;
        for (name, (n, busy)) in &w.classes {
            let e = classes.entry(name).or_insert((0, 0));
            e.0 += n;
            e.1 += busy;
        }
    }
    let mut class_stats: Vec<(String, u64, SimTime)> = classes
        .into_iter()
        .map(|(k, (n, b))| (k.to_string(), n, SimTime::from_ns(b)))
        .collect();
    class_stats.sort_by_key(|c| std::cmp::Reverse(c.2));
    let worker_busy = SimTime::from_ns(worker_busy_ns);
    let span = makespan.as_secs_f64().max(1e-12);

    let engine_stats: Vec<EngineStats> =
        (0..nodes).map(|n| run.shm.node(n).engine_stats()).collect();

    // Merge every node's payloads for post-run data access; producers win
    // over transferred copies (they are bitwise equal anyway).
    let mut data: HashMap<VersionId, Bytes> = HashMap::new();
    for n in 0..nodes {
        let store = run.stores[n].lock().expect("node store");
        for (&v, b) in &store.payload {
            data.entry(VersionId(v)).or_insert_with(|| b.clone());
        }
    }

    // Calibration profile from the measured samples (metrics mode only):
    // lower medians, deterministic BTreeMap key order.
    let calib = cfg.metrics.then(|| {
        let samples = run.calib.lock().expect("calib samples");
        let mut profile = CalibrationProfile {
            threads,
            tasks: executed,
            ..Default::default()
        };
        for (name, v) in &samples.classes {
            profile
                .classes
                .insert((*name).to_string(), CostSummary::from_samples(v.clone()));
        }
        for (key, v) in &samples.records {
            profile
                .records
                .insert((*key).to_string(), CostSummary::from_samples(v.clone()));
        }
        profile
    });
    let mut metrics = if cfg.metrics {
        run.shm.merged_metrics()
    } else {
        MetricsRegistry::new(false)
    };
    // Controller state into the report (mirrors the virtual engines'
    // `tune.*` counters): final per-node GET window plus adaptation
    // event totals. Metrics mode with the controller off reports zeros.
    if cfg.metrics {
        let (mut raises, mut cuts) = (0u64, 0u64);
        if let Some(gates) = &run.get_gates {
            for (n, g) in gates.iter().enumerate() {
                let g = g.lock().expect("get gate");
                metrics.count(&format!("tune.real.n{n}.get_window"), g.win.window);
                raises += g.raises;
                cuts += g.cuts;
            }
        }
        metrics.count("tune.real.getwin_raise", raises);
        metrics.count("tune.real.getwin_cut", cuts);
    }

    let report = RunReport {
        makespan,
        tasks_executed: executed,
        tasks_total,
        e2e_latency_us: e2e,
        msg_latency_us: msg,
        request_latency_us: req,
        worker_busy,
        worker_util: worker_busy.as_secs_f64() / (span * threads as f64),
        comm_util: 0.0,
        progress_util: 0.0,
        engine_stats,
        class_stats,
        sim_events: 0,
        schedule_past_clamped: 0,
        pool: Some(pool_stats),
    };
    (
        report,
        data,
        RealObs {
            trace,
            metrics,
            calib,
        },
    )
}
