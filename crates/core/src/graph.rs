//! Dynamic task-graph insertion with automatic dependence analysis.
//!
//! Writes create new immutable *versions* of a datum (data renaming, like
//! PaRSEC's data copies), so the only true dependencies are
//! read-after-write: a task depends on the producer of every version it
//! reads. Insertion order defines which version a `read_key` refers to,
//! exactly like PaRSEC's dynamic task discovery interface.

use std::collections::HashMap;
use std::rc::Rc;

use amt_netmodel::NodeId;
use bytes::Bytes;

/// User-level datum identifier (e.g. a tile index).
pub type DataKey = u64;

/// Task index within a graph.
pub type TaskId = usize;

/// An immutable version of a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId(pub usize);

/// A real compute kernel: consumes input payloads, produces one payload per
/// declared output. Shared so the same graph can be executed repeatedly
/// (e.g. once per backend) and verified against a sequential oracle.
pub type Kernel = Rc<dyn Fn(&[Bytes]) -> Vec<Bytes>>;

/// Builder-style description of one task.
pub struct TaskDesc {
    pub(crate) name: &'static str,
    pub(crate) node: Option<NodeId>,
    pub(crate) flops: f64,
    pub(crate) efficiency: f64,
    pub(crate) priority: i64,
    pub(crate) reads: Vec<ReadRef>,
    pub(crate) writes: Vec<(DataKey, usize)>,
    pub(crate) kernel: Option<Kernel>,
}

pub(crate) enum ReadRef {
    Version(VersionId),
    Current(DataKey),
}

impl TaskDesc {
    pub fn new(name: &'static str) -> Self {
        TaskDesc {
            name,
            node: None,
            flops: 0.0,
            efficiency: 1.0,
            priority: 0,
            reads: Vec::new(),
            writes: Vec::new(),
            kernel: None,
        }
    }

    /// Pin execution to a node. Defaults to the home node of the first
    /// read, else node 0.
    pub fn on_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Floating-point operations this task performs (drives the virtual
    /// duration).
    pub fn flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// Fraction of peak FLOP rate this task class achieves, in (0, 1].
    pub fn efficiency(mut self, e: f64) -> Self {
        assert!(e > 0.0 && e <= 1.0, "efficiency must be in (0,1]");
        self.efficiency = e;
        self
    }

    /// Scheduling priority (higher runs first; also prioritizes its input
    /// communication, §4.1).
    pub fn priority(mut self, p: i64) -> Self {
        self.priority = p;
        self
    }

    /// Read a specific version.
    pub fn read(mut self, v: VersionId) -> Self {
        self.reads.push(ReadRef::Version(v));
        self
    }

    /// Read the current (insertion-time) version of `key`.
    pub fn read_key(mut self, key: DataKey) -> Self {
        self.reads.push(ReadRef::Current(key));
        self
    }

    /// Write `key`, producing a new version of declared `size` bytes.
    pub fn write(mut self, key: DataKey, size: usize) -> Self {
        self.writes.push((key, size));
        self
    }

    /// Attach a real kernel (Numeric mode). It receives the read payloads
    /// in declaration order and must return one payload per write.
    pub fn kernel(mut self, k: impl Fn(&[Bytes]) -> Vec<Bytes> + 'static) -> Self {
        self.kernel = Some(Rc::new(k));
        self
    }
}

/// One inserted task.
pub struct Task {
    pub id: TaskId,
    pub name: &'static str,
    pub node: NodeId,
    pub flops: f64,
    pub efficiency: f64,
    pub priority: i64,
    pub inputs: Vec<VersionId>,
    pub outputs: Vec<VersionId>,
    pub kernel: Option<Kernel>,
}

/// One version of a datum.
pub struct Version {
    pub key: DataKey,
    pub size: usize,
    /// Node where this version is produced / initially resides.
    pub home: NodeId,
    pub producer: Option<TaskId>,
    pub consumers: Vec<TaskId>,
    /// Initial payload for producer-less versions (Numeric mode).
    pub initial: Option<Bytes>,
}

/// The immutable task graph handed to [`crate::Cluster::execute`].
pub struct TaskGraph {
    pub tasks: Vec<Task>,
    pub versions: Vec<Version>,
}

impl TaskGraph {
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Versions that cross nodes (each remote consumer node counts once).
    pub fn remote_flows(&self) -> usize {
        self.versions
            .iter()
            .map(|v| {
                let mut nodes: Vec<NodeId> = v
                    .consumers
                    .iter()
                    .map(|&t| self.tasks[t].node)
                    .filter(|&n| n != v.home)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes.len()
            })
            .sum()
    }

    /// Execute every kernel sequentially in insertion order — the
    /// correctness oracle for Numeric-mode runs.
    pub fn sequential_oracle(&self) -> HashMap<VersionId, Bytes> {
        let mut store: HashMap<VersionId, Bytes> = HashMap::new();
        for (i, v) in self.versions.iter().enumerate() {
            if let Some(b) = &v.initial {
                store.insert(VersionId(i), b.clone());
            }
        }
        for t in &self.tasks {
            let Some(kernel) = &t.kernel else { continue };
            let inputs: Vec<Bytes> = t
                .inputs
                .iter()
                .filter(|v| self.versions[v.0].size > 0) // CTL flows carry no payload
                .map(|v| store.get(v).expect("oracle: input missing").clone())
                .collect();
            let outs = kernel(&inputs);
            assert_eq!(outs.len(), t.outputs.len(), "kernel output arity");
            for (vid, b) in t.outputs.iter().zip(outs) {
                store.insert(*vid, b);
            }
        }
        store
    }
}

/// Incremental graph builder.
pub struct GraphBuilder {
    nodes: usize,
    tasks: Vec<Task>,
    versions: Vec<Version>,
    current: HashMap<DataKey, VersionId>,
}

impl GraphBuilder {
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0);
        GraphBuilder {
            nodes,
            tasks: Vec::new(),
            versions: Vec::new(),
            current: HashMap::new(),
        }
    }

    /// Declare an initial datum residing on `node`. Returns its version.
    pub fn data(
        &mut self,
        key: DataKey,
        size: usize,
        node: NodeId,
        bytes: Option<Bytes>,
    ) -> VersionId {
        assert!(node < self.nodes, "node {node} out of range");
        if let Some(b) = &bytes {
            assert_eq!(b.len(), size, "declared size must match payload");
        }
        let vid = VersionId(self.versions.len());
        self.versions.push(Version {
            key,
            size,
            home: node,
            producer: None,
            consumers: Vec::new(),
            initial: bytes,
        });
        let prev = self.current.insert(key, vid);
        assert!(prev.is_none(), "initial data for key {key} declared twice");
        vid
    }

    /// Current version of `key`, if any.
    pub fn current(&self, key: DataKey) -> Option<VersionId> {
        self.current.get(&key).copied()
    }

    /// Insert a task; returns its id.
    pub fn insert(&mut self, desc: TaskDesc) -> TaskId {
        let id = self.tasks.len();
        let inputs: Vec<VersionId> = desc
            .reads
            .iter()
            .map(|r| match r {
                ReadRef::Version(v) => *v,
                ReadRef::Current(k) => *self
                    .current
                    .get(k)
                    .unwrap_or_else(|| panic!("read of key {k} with no version")),
            })
            .collect();
        let node = desc
            .node
            .unwrap_or_else(|| inputs.first().map(|v| self.versions[v.0].home).unwrap_or(0));
        assert!(node < self.nodes, "node {node} out of range");
        for &v in &inputs {
            self.versions[v.0].consumers.push(id);
        }
        let outputs: Vec<VersionId> = desc
            .writes
            .iter()
            .map(|&(key, size)| {
                let vid = VersionId(self.versions.len());
                self.versions.push(Version {
                    key,
                    size,
                    home: node,
                    producer: Some(id),
                    consumers: Vec::new(),
                    initial: None,
                });
                self.current.insert(key, vid);
                vid
            })
            .collect();
        self.tasks.push(Task {
            id,
            name: desc.name,
            node,
            flops: desc.flops,
            efficiency: desc.efficiency,
            priority: desc.priority,
            inputs,
            outputs,
            kernel: desc.kernel,
        });
        id
    }

    pub fn build(self) -> TaskGraph {
        TaskGraph {
            tasks: self.tasks,
            versions: self.versions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_chains() {
        let mut g = GraphBuilder::new(1);
        g.data(0, 8, 0, None);
        let t1 = g.insert(TaskDesc::new("w1").read_key(0).write(0, 8));
        let t2 = g.insert(TaskDesc::new("w2").read_key(0).write(0, 8));
        let graph = g.build();
        // t2 reads the version produced by t1, not the initial one.
        assert_eq!(
            graph.versions[graph.tasks[t2].inputs[0].0].producer,
            Some(t1)
        );
        // The initial version's only consumer is t1.
        assert_eq!(graph.versions[0].consumers, vec![t1]);
    }

    #[test]
    fn renaming_removes_anti_dependencies() {
        let mut g = GraphBuilder::new(1);
        let v0 = g.data(0, 8, 0, None);
        let r1 = g.insert(TaskDesc::new("reader1").read(v0));
        let r2 = g.insert(TaskDesc::new("reader2").read(v0));
        let w = g.insert(TaskDesc::new("writer").write(0, 8));
        let graph = g.build();
        // The writer has no inputs at all: no write-after-read edges.
        assert!(graph.tasks[w].inputs.is_empty());
        assert_eq!(graph.versions[v0.0].consumers, vec![r1, r2]);
    }

    #[test]
    fn default_node_follows_first_input() {
        let mut g = GraphBuilder::new(4);
        let v = g.data(0, 8, 3, None);
        let t = g.insert(TaskDesc::new("t").read(v));
        assert_eq!(g.tasks[t].node, 3);
    }

    #[test]
    fn remote_flow_count() {
        let mut g = GraphBuilder::new(3);
        let v = g.data(0, 8, 0, None);
        g.insert(TaskDesc::new("a").on_node(1).read(v));
        g.insert(TaskDesc::new("b").on_node(1).read(v));
        g.insert(TaskDesc::new("c").on_node(2).read(v));
        g.insert(TaskDesc::new("d").on_node(0).read(v));
        let graph = g.build();
        // Nodes 1 and 2 each need one flow; node 0 is local.
        assert_eq!(graph.remote_flows(), 2);
    }

    #[test]
    fn sequential_oracle_runs_kernels() {
        let mut g = GraphBuilder::new(1);
        g.data(0, 1, 0, Some(Bytes::from_static(&[1])));
        g.insert(
            TaskDesc::new("inc")
                .read_key(0)
                .write(0, 1)
                .kernel(|ins| vec![Bytes::from(vec![ins[0][0] + 1])]),
        );
        g.insert(
            TaskDesc::new("double")
                .read_key(0)
                .write(0, 1)
                .kernel(|ins| vec![Bytes::from(vec![ins[0][0] * 2])]),
        );
        let last = g.current(0).expect("current version");
        let graph = g.build();
        let store = graph.sequential_oracle();
        assert_eq!(store[&last][0], 4); // (1+1)*2
    }

    #[test]
    #[should_panic(expected = "read of key 5 with no version")]
    fn reading_unknown_key_panics() {
        let mut g = GraphBuilder::new(1);
        g.insert(TaskDesc::new("bad").read_key(5));
    }
}
