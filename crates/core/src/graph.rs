//! Dynamic task-graph insertion with automatic dependence analysis.
//!
//! Writes create new immutable *versions* of a datum (data renaming, like
//! PaRSEC's data copies), so the only true dependencies are
//! read-after-write: a task depends on the producer of every version it
//! reads. Insertion order defines which version a `read_key` refers to,
//! exactly like PaRSEC's dynamic task discovery interface.
//!
//! Tasks and versions live in chunked storage ([`ChunkVec`]): contiguous
//! indices, O(1) access, and — in windowed execution — whole 256-entry
//! chunks of *retired* tasks/versions are freed once the completion
//! frontier passes them, so peak memory tracks the discovery window
//! instead of the full unrolled graph (PaRSEC-style bounded task
//! discovery).

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use amt_netmodel::NodeId;
use bytes::Bytes;

/// User-level datum identifier (e.g. a tile index).
pub type DataKey = u64;

/// Task index within a graph.
pub type TaskId = usize;

/// An immutable version of a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId(pub usize);

/// A real compute kernel: consumes input payloads, produces one payload per
/// declared output. Shared so the same graph can be executed repeatedly
/// (e.g. once per backend) and verified against a sequential oracle.
/// `Send + Sync` so the same graph can also run on the real thread-pool
/// substrate ([`crate::Cluster::execute_real`]), where workers on different
/// OS threads invoke kernels concurrently.
pub type Kernel = Arc<dyn Fn(&[Bytes]) -> Vec<Bytes> + Send + Sync>;

/// Items per [`ChunkVec`] chunk (must be a power of two).
const CHUNK: usize = 256;
const CHUNK_SHIFT: usize = CHUNK.trailing_zeros() as usize;

/// Chunked growable storage with freeable chunks.
///
/// Semantically a `Vec<T>` whose backing memory is split into
/// [`CHUNK`]-item chunks; [`ChunkVec::free_chunk`] returns one chunk's
/// memory to the allocator once every item in it has been retired.
/// Accessing an index inside a freed chunk panics.
pub(crate) struct ChunkVec<T> {
    chunks: Vec<Option<Vec<T>>>,
    /// Long-lived survivors relocated out of freed chunks by
    /// [`ChunkVec::free_chunk_keeping`]; resolved transparently by
    /// [`ChunkVec::get`] / [`ChunkVec::get_mut`].
    evacuated: HashMap<usize, T>,
    len: usize,
}

impl<T> ChunkVec<T> {
    pub fn new() -> Self {
        ChunkVec {
            chunks: Vec::new(),
            evacuated: HashMap::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, item: T) {
        if self.len >> CHUNK_SHIFT == self.chunks.len() {
            self.chunks.push(Some(Vec::with_capacity(CHUNK)));
        }
        self.chunks[self.len >> CHUNK_SHIFT]
            .as_mut()
            .expect("push past a freed chunk")
            .push(item);
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match &self.chunks[i >> CHUNK_SHIFT] {
            Some(c) => &c[i & (CHUNK - 1)],
            None => self
                .evacuated
                .get(&i)
                .expect("access to a retired (freed) graph chunk"),
        }
    }

    /// Like [`ChunkVec::get`], but `None` for an item whose chunk has been
    /// freed (and that was not evacuated) instead of panicking.
    pub fn try_get(&self, i: usize) -> Option<&T> {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match &self.chunks[i >> CHUNK_SHIFT] {
            Some(c) => Some(&c[i & (CHUNK - 1)]),
            None => self.evacuated.get(&i),
        }
    }

    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match &mut self.chunks[i >> CHUNK_SHIFT] {
            Some(c) => &mut c[i & (CHUNK - 1)],
            None => self
                .evacuated
                .get_mut(&i)
                .expect("access to a retired (freed) graph chunk"),
        }
    }

    /// Free chunk `c` (indices `c*CHUNK .. (c+1)*CHUNK`). The caller
    /// guarantees no item in it is accessed again.
    pub fn free_chunk(&mut self, c: usize) {
        self.chunks[c] = None;
    }

    /// Free chunk `c`, relocating the listed still-live indices (sorted
    /// ascending) into the evacuation table; everything else in the chunk
    /// is dropped. The listed indices stay accessible through
    /// [`ChunkVec::get`] until [`ChunkVec::drop_evacuated`].
    pub fn free_chunk_keeping(&mut self, c: usize, keep: &[usize]) {
        let Some(chunk) = self.chunks[c].take() else {
            return;
        };
        let base = c << CHUNK_SHIFT;
        for (off, item) in chunk.into_iter().enumerate() {
            if keep.binary_search(&(base + off)).is_ok() {
                self.evacuated.insert(base + off, item);
            }
        }
    }

    /// Drop an entry previously preserved by
    /// [`ChunkVec::free_chunk_keeping`].
    pub fn drop_evacuated(&mut self, i: usize) {
        self.evacuated.remove(&i);
    }

    /// Iterate all live items in index order. Panics on freed chunks — use
    /// only on graphs that retired nothing (analysis, oracle, init).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| {
            c.as_ref()
                .expect("iteration over a partially retired graph")
                .iter()
        })
    }
}

/// Items per freeable graph-storage chunk (see [`ChunkVec`]).
pub(crate) const GRAPH_CHUNK: usize = CHUNK;

/// Builder-style description of one task.
pub struct TaskDesc {
    pub(crate) name: &'static str,
    pub(crate) node: Option<NodeId>,
    pub(crate) flops: f64,
    pub(crate) efficiency: f64,
    pub(crate) priority: i64,
    pub(crate) reads: Vec<ReadRef>,
    pub(crate) writes: Vec<(DataKey, usize)>,
    pub(crate) kernel: Option<Kernel>,
}

pub(crate) enum ReadRef {
    Version(VersionId),
    Current(DataKey),
}

impl TaskDesc {
    pub fn new(name: &'static str) -> Self {
        TaskDesc {
            name,
            node: None,
            flops: 0.0,
            efficiency: 1.0,
            priority: 0,
            reads: Vec::new(),
            writes: Vec::new(),
            kernel: None,
        }
    }

    /// Pin execution to a node. Defaults to the home node of the first
    /// read, else node 0.
    pub fn on_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Floating-point operations this task performs (drives the virtual
    /// duration).
    pub fn flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// Fraction of peak FLOP rate this task class achieves, in (0, 1].
    pub fn efficiency(mut self, e: f64) -> Self {
        assert!(e > 0.0 && e <= 1.0, "efficiency must be in (0,1]");
        self.efficiency = e;
        self
    }

    /// Scheduling priority (higher runs first; also prioritizes its input
    /// communication, §4.1).
    pub fn priority(mut self, p: i64) -> Self {
        self.priority = p;
        self
    }

    /// Read a specific version.
    pub fn read(mut self, v: VersionId) -> Self {
        self.reads.push(ReadRef::Version(v));
        self
    }

    /// Read the current (insertion-time) version of `key`.
    pub fn read_key(mut self, key: DataKey) -> Self {
        self.reads.push(ReadRef::Current(key));
        self
    }

    /// Write `key`, producing a new version of declared `size` bytes.
    pub fn write(mut self, key: DataKey, size: usize) -> Self {
        self.writes.push((key, size));
        self
    }

    /// Attach a real kernel (Numeric mode). It receives the read payloads
    /// in declaration order and must return one payload per write.
    /// `Send + Sync` so the graph stays executable on the real-thread
    /// substrate; kernels normally capture only `Copy` parameters.
    pub fn kernel(mut self, k: impl Fn(&[Bytes]) -> Vec<Bytes> + Send + Sync + 'static) -> Self {
        self.kernel = Some(Arc::new(k));
        self
    }
}

/// One inserted task.
pub struct Task {
    pub id: TaskId,
    pub name: &'static str,
    pub node: NodeId,
    /// Index of this task among the tasks assigned to its node (insertion
    /// order). Per-node runtime tables (dependence counters) are indexed by
    /// this instead of the global id, so each node's table is
    /// O(tasks-on-node), not O(total tasks) — the difference between 4 GB
    /// and 4 MB of counters at a million tasks on 1024 nodes.
    pub local_ix: u32,
    pub flops: f64,
    pub efficiency: f64,
    pub priority: i64,
    pub inputs: Vec<VersionId>,
    pub outputs: Vec<VersionId>,
    pub kernel: Option<Kernel>,
}

/// One version of a datum.
pub struct Version {
    pub key: DataKey,
    pub size: usize,
    /// Node where this version is produced / initially resides.
    pub home: NodeId,
    pub producer: Option<TaskId>,
    pub consumers: Vec<TaskId>,
    /// Initial payload for producer-less versions (Numeric mode).
    pub initial: Option<Bytes>,
}

/// The task graph executed by [`crate::Cluster::execute`]. Fully built up
/// front by [`GraphBuilder::build`], or grown incrementally during a
/// windowed execution (see [`GraphSource`]).
pub struct TaskGraph {
    tasks: ChunkVec<Task>,
    versions: ChunkVec<Version>,
    /// Tasks assigned to each node so far (source of [`Task::local_ix`];
    /// survives windowed growth because the windowed driver appends through
    /// the same shared graph).
    local_counts: Vec<u32>,
}

impl TaskGraph {
    pub(crate) fn empty() -> TaskGraph {
        TaskGraph {
            tasks: ChunkVec::new(),
            versions: ChunkVec::new(),
            local_counts: Vec::new(),
        }
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks assigned to `node` (so far, under windowed growth).
    pub fn local_task_count(&self, node: NodeId) -> usize {
        self.local_counts.get(node).copied().unwrap_or(0) as usize
    }

    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    pub fn task(&self, id: TaskId) -> &Task {
        self.tasks.get(id)
    }

    /// `None` once `id`'s storage chunk has been freed by windowed
    /// retirement — which can only happen after the task completed.
    pub fn task_if_live(&self, id: TaskId) -> Option<&Task> {
        self.tasks.try_get(id)
    }

    pub fn version(&self, id: usize) -> &Version {
        self.versions.get(id)
    }

    /// All tasks in insertion order (panics on graphs with retired chunks).
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// All versions in creation order (panics on graphs with retired
    /// chunks).
    pub fn versions(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter()
    }

    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Versions that cross nodes (each remote consumer node counts once).
    pub fn remote_flows(&self) -> usize {
        // One scratch buffer across the whole sweep instead of a fresh
        // `Vec<NodeId>` per version.
        let mut scratch: Vec<NodeId> = Vec::new();
        let mut total = 0;
        for v in self.versions.iter() {
            scratch.clear();
            scratch.extend(
                v.consumers
                    .iter()
                    .map(|&t| self.tasks.get(t).node)
                    .filter(|&n| n != v.home),
            );
            scratch.sort_unstable();
            scratch.dedup();
            total += scratch.len();
        }
        total
    }

    /// Execute every kernel sequentially in insertion order — the
    /// correctness oracle for Numeric-mode runs.
    pub fn sequential_oracle(&self) -> HashMap<VersionId, Bytes> {
        let mut store: HashMap<VersionId, Bytes> = HashMap::new();
        for (i, v) in self.versions.iter().enumerate() {
            if let Some(b) = &v.initial {
                store.insert(VersionId(i), b.clone());
            }
        }
        for t in self.tasks.iter() {
            let Some(kernel) = &t.kernel else { continue };
            let inputs: Vec<Bytes> = t
                .inputs
                .iter()
                .filter(|v| self.versions.get(v.0).size > 0) // CTL flows carry no payload
                .map(|v| store.get(v).expect("oracle: input missing").clone())
                .collect();
            let outs = kernel(&inputs);
            assert_eq!(outs.len(), t.outputs.len(), "kernel output arity");
            for (vid, b) in t.outputs.iter().zip(outs) {
                store.insert(*vid, b);
            }
        }
        store
    }

    /// Drop a completed task's heap payload (dependence lists and kernel).
    /// Windowed-mode retirement; the inline struct stays until its whole
    /// chunk retires.
    pub(crate) fn retire_task(&mut self, id: TaskId) {
        let t = self.tasks.get_mut(id);
        t.inputs = Vec::new();
        t.outputs = Vec::new();
        t.kernel = None;
    }

    /// Drop a dead version's heap payload (consumer list and initial
    /// bytes).
    pub(crate) fn retire_version(&mut self, id: usize) {
        let v = self.versions.get_mut(id);
        v.consumers = Vec::new();
        v.initial = None;
    }

    /// Drop a version's consumer list without retiring it. Windowed-mode
    /// only, once the producer's completion announce has been sent and its
    /// coverage recorded: every later-discovered consumer is handled
    /// through the store-presence check and the coverage set, never this
    /// list. For tile Cholesky the never-superseded final tiles otherwise
    /// keep O(nt³) consumer entries live to the end of the run.
    pub(crate) fn prune_consumers(&mut self, id: usize) {
        self.versions.get_mut(id).consumers = Vec::new();
    }

    pub(crate) fn free_task_chunk(&mut self, c: usize) {
        self.tasks.free_chunk(c);
    }

    pub(crate) fn free_version_chunk(&mut self, c: usize) {
        self.versions.free_chunk(c);
    }

    /// Free a version chunk whose only unretired entries are *final*
    /// versions (never superseded): the finals move to a side table and
    /// the chunk's memory — dominated by dead intermediates — is
    /// returned.
    pub(crate) fn evacuate_version_chunk(&mut self, c: usize, keep: &[usize]) {
        self.versions.free_chunk_keeping(c, keep);
    }

    /// A previously evacuated version got superseded after all and
    /// retired: drop its side-table entry.
    pub(crate) fn drop_evacuated_version(&mut self, id: usize) {
        self.versions.drop_evacuated(id);
    }
}

/// Shared, interiorly-mutable handle to a [`TaskGraph`]. The per-node
/// runtimes hold one; in windowed execution the discovery driver appends
/// tasks and retires completed ones through the same handle.
#[derive(Clone)]
pub struct GraphHandle {
    inner: Rc<RefCell<TaskGraph>>,
}

impl GraphHandle {
    pub fn new(graph: TaskGraph) -> GraphHandle {
        GraphHandle {
            inner: Rc::new(RefCell::new(graph)),
        }
    }

    pub fn get(&self) -> Ref<'_, TaskGraph> {
        self.inner.borrow()
    }

    pub(crate) fn get_mut(&self) -> RefMut<'_, TaskGraph> {
        self.inner.borrow_mut()
    }

    fn try_unwrap(self) -> Option<TaskGraph> {
        Rc::try_unwrap(self.inner).ok().map(RefCell::into_inner)
    }
}

/// Produces a task graph incrementally, for windowed execution
/// ([`crate::Cluster::execute_windowed`]): the runtime pulls one task at a
/// time so at most `window` tasks are unrolled ahead of the completion
/// frontier.
pub trait GraphSource {
    /// Insert the next task into `g` (declaring any initial data it needs
    /// first) and return `true`; return `false` — without inserting —
    /// when the graph is complete. Must insert at least one task per
    /// `true` return.
    fn next_task(&mut self, g: &mut GraphBuilder) -> bool;
}

/// Incremental graph builder.
pub struct GraphBuilder {
    nodes: usize,
    graph: GraphHandle,
    current: HashMap<DataKey, VersionId>,
    /// When enabled, versions whose `current` slot was overwritten by a
    /// later write are logged here (windowed-mode retirement feed).
    track_superseded: bool,
    superseded: Vec<VersionId>,
}

impl GraphBuilder {
    pub fn new(nodes: usize) -> Self {
        Self::over(nodes, GraphHandle::new(TaskGraph::empty()))
    }

    /// Build into an existing (shared) graph handle — the windowed driver
    /// appends to the graph the runtimes are already executing.
    pub(crate) fn over(nodes: usize, graph: GraphHandle) -> Self {
        assert!(nodes > 0);
        GraphBuilder {
            nodes,
            graph,
            current: HashMap::new(),
            track_superseded: false,
            superseded: Vec::new(),
        }
    }

    pub(crate) fn set_track_superseded(&mut self) {
        self.track_superseded = true;
    }

    pub(crate) fn take_superseded(&mut self) -> Vec<VersionId> {
        std::mem::take(&mut self.superseded)
    }

    pub(crate) fn handle(&self) -> &GraphHandle {
        &self.graph
    }

    pub fn task_count(&self) -> usize {
        self.graph.get().task_count()
    }

    /// Declare an initial datum residing on `node`. Returns its version.
    pub fn data(
        &mut self,
        key: DataKey,
        size: usize,
        node: NodeId,
        bytes: Option<Bytes>,
    ) -> VersionId {
        assert!(node < self.nodes, "node {node} out of range");
        if let Some(b) = &bytes {
            assert_eq!(b.len(), size, "declared size must match payload");
        }
        let mut g = self.graph.get_mut();
        let vid = VersionId(g.versions.len());
        g.versions.push(Version {
            key,
            size,
            home: node,
            producer: None,
            consumers: Vec::new(),
            initial: bytes,
        });
        let prev = self.current.insert(key, vid);
        assert!(prev.is_none(), "initial data for key {key} declared twice");
        vid
    }

    /// Current version of `key`, if any.
    pub fn current(&self, key: DataKey) -> Option<VersionId> {
        self.current.get(&key).copied()
    }

    /// Insert a task; returns its id.
    pub fn insert(&mut self, desc: TaskDesc) -> TaskId {
        let mut g = self.graph.get_mut();
        let id = g.tasks.len();
        let inputs: Vec<VersionId> = desc
            .reads
            .iter()
            .map(|r| match r {
                ReadRef::Version(v) => *v,
                ReadRef::Current(k) => *self
                    .current
                    .get(k)
                    .unwrap_or_else(|| panic!("read of key {k} with no version")),
            })
            .collect();
        let node = desc.node.unwrap_or_else(|| {
            inputs
                .first()
                .map(|v| g.versions.get(v.0).home)
                .unwrap_or(0)
        });
        assert!(node < self.nodes, "node {node} out of range");
        for &v in &inputs {
            g.versions.get_mut(v.0).consumers.push(id);
        }
        let outputs: Vec<VersionId> = desc
            .writes
            .iter()
            .map(|&(key, size)| {
                let vid = VersionId(g.versions.len());
                g.versions.push(Version {
                    key,
                    size,
                    home: node,
                    producer: Some(id),
                    consumers: Vec::new(),
                    initial: None,
                });
                if let Some(old) = self.current.insert(key, vid) {
                    if self.track_superseded {
                        self.superseded.push(old);
                    }
                }
                vid
            })
            .collect();
        if g.local_counts.len() <= node {
            g.local_counts.resize(node + 1, 0);
        }
        let local_ix = g.local_counts[node];
        g.local_counts[node] += 1;
        g.tasks.push(Task {
            id,
            name: desc.name,
            node,
            local_ix,
            flops: desc.flops,
            efficiency: desc.efficiency,
            priority: desc.priority,
            inputs,
            outputs,
            kernel: desc.kernel,
        });
        id
    }

    pub fn build(self) -> TaskGraph {
        self.graph
            .try_unwrap()
            .expect("build() on a builder whose graph handle is shared")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_chains() {
        let mut g = GraphBuilder::new(1);
        g.data(0, 8, 0, None);
        let t1 = g.insert(TaskDesc::new("w1").read_key(0).write(0, 8));
        let t2 = g.insert(TaskDesc::new("w2").read_key(0).write(0, 8));
        let graph = g.build();
        // t2 reads the version produced by t1, not the initial one.
        assert_eq!(graph.version(graph.task(t2).inputs[0].0).producer, Some(t1));
        // The initial version's only consumer is t1.
        assert_eq!(graph.version(0).consumers, vec![t1]);
    }

    #[test]
    fn renaming_removes_anti_dependencies() {
        let mut g = GraphBuilder::new(1);
        let v0 = g.data(0, 8, 0, None);
        let r1 = g.insert(TaskDesc::new("reader1").read(v0));
        let r2 = g.insert(TaskDesc::new("reader2").read(v0));
        let w = g.insert(TaskDesc::new("writer").write(0, 8));
        let graph = g.build();
        // The writer has no inputs at all: no write-after-read edges.
        assert!(graph.task(w).inputs.is_empty());
        assert_eq!(graph.version(v0.0).consumers, vec![r1, r2]);
    }

    #[test]
    fn default_node_follows_first_input() {
        let mut g = GraphBuilder::new(4);
        let v = g.data(0, 8, 3, None);
        let t = g.insert(TaskDesc::new("t").read(v));
        let graph = g.build();
        assert_eq!(graph.task(t).node, 3);
    }

    #[test]
    fn remote_flow_count() {
        let mut g = GraphBuilder::new(3);
        let v = g.data(0, 8, 0, None);
        g.insert(TaskDesc::new("a").on_node(1).read(v));
        g.insert(TaskDesc::new("b").on_node(1).read(v));
        g.insert(TaskDesc::new("c").on_node(2).read(v));
        g.insert(TaskDesc::new("d").on_node(0).read(v));
        let graph = g.build();
        // Nodes 1 and 2 each need one flow; node 0 is local.
        assert_eq!(graph.remote_flows(), 2);
    }

    #[test]
    fn sequential_oracle_runs_kernels() {
        let mut g = GraphBuilder::new(1);
        g.data(0, 1, 0, Some(Bytes::from_static(&[1])));
        g.insert(
            TaskDesc::new("inc")
                .read_key(0)
                .write(0, 1)
                .kernel(|ins| vec![Bytes::from(vec![ins[0][0] + 1])]),
        );
        g.insert(
            TaskDesc::new("double")
                .read_key(0)
                .write(0, 1)
                .kernel(|ins| vec![Bytes::from(vec![ins[0][0] * 2])]),
        );
        let last = g.current(0).expect("current version");
        let graph = g.build();
        let store = graph.sequential_oracle();
        assert_eq!(store[&last][0], 4); // (1+1)*2
    }

    #[test]
    #[should_panic(expected = "read of key 5 with no version")]
    fn reading_unknown_key_panics() {
        let mut g = GraphBuilder::new(1);
        g.insert(TaskDesc::new("bad").read_key(5));
    }

    #[test]
    fn chunk_vec_push_get_free() {
        let mut c: ChunkVec<usize> = ChunkVec::new();
        for i in 0..600 {
            c.push(i);
        }
        assert_eq!(c.len(), 600);
        assert_eq!(*c.get(0), 0);
        assert_eq!(*c.get(255), 255);
        assert_eq!(*c.get(256), 256);
        assert_eq!(*c.get(599), 599);
        assert_eq!(c.iter().sum::<usize>(), 600 * 599 / 2);
        c.free_chunk(0);
        assert_eq!(*c.get(300), 300); // later chunks unaffected
        assert_eq!(c.len(), 600);
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn chunk_vec_freed_access_panics() {
        let mut c: ChunkVec<usize> = ChunkVec::new();
        for i in 0..600 {
            c.push(i);
        }
        c.free_chunk(1);
        let _ = c.get(256);
    }

    #[test]
    fn builder_logs_superseded_versions() {
        let mut g = GraphBuilder::new(1);
        let v0 = g.data(0, 8, 0, None);
        g.set_track_superseded();
        g.insert(TaskDesc::new("w1").read_key(0).write(0, 8));
        let v1 = g.current(0).expect("current");
        g.insert(TaskDesc::new("w2").read_key(0).write(0, 8));
        assert_eq!(g.take_superseded(), vec![v0, v1]);
        assert!(g.take_superseded().is_empty());
    }
}
