//! Per-node runtime: ready queue, worker cores, data store, and the
//! ACTIVATE / GET DATA / put protocol handlers (paper Figure 1).

use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use amt_comm::{AmEvent, CommEngine, PutEvent, PutRequest};
use amt_netmodel::NodeId;
use amt_simnet::{CoreHandle, OnlineStats, OverlapTracker, Shared, Sim, SimTime, Trace};
use bytes::{Bytes, BytesMut};

use crate::config::{ClusterConfig, ExecMode};
use crate::graph::{TaskGraph, TaskId, VersionId};
use crate::records::{ActivateRec, GetRec, PutCb, ACTIVATE_WIRE_BYTES, GET_WIRE_BYTES};

/// AM tag for task-activation messages.
pub(crate) const AM_ACTIVATE: u64 = 1;
/// AM tag for data requests.
pub(crate) const AM_GETDATA: u64 = 2;
/// One-sided callback tag for data arrival.
pub(crate) const RTAG_DATA: u64 = 1;

/// Flow-arrow kind: ACTIVATE announcement (producer → consumer).
const FLOW_ACTIVATE: u64 = 0;
/// Flow-arrow kind: bulk data put (owner → consumer).
const FLOW_DATA: u64 = 1;

/// Deterministic Chrome-trace flow id, unique per (kind, version, src,
/// dst) — 12 bits per node id, 38 for the version.
fn flow_id(kind: u64, version: u64, src: NodeId, dst: NodeId) -> u64 {
    (kind << 62) | (version << 24) | ((src as u64) << 12) | dst as u64
}

enum DataState {
    /// Payload available locally (bytes absent in CostOnly mode).
    Present(Option<Bytes>),
    /// Announced by an ACTIVATE; GET DATA queued or in flight.
    Requested,
}

#[derive(PartialEq, Eq)]
struct Ready {
    priority: i64,
    seq: u64,
    task: TaskId,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then insertion order.
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(PartialEq, Eq)]
struct PendingGet {
    priority: i64,
    seq: u64,
    version: usize,
    src: NodeId,
    size: usize,
    activate_sent_at_ns: u64,
}

impl Ord for PendingGet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}
impl PartialOrd for PendingGet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct NodeRt {
    pub node: NodeId,
    pub graph: Rc<TaskGraph>,
    pub engine: Rc<CommEngine>,
    pub cfg: ClusterConfig,
    pub workers: Vec<CoreHandle>,
    idle_workers: Vec<usize>,
    ready: BinaryHeap<Ready>,
    /// Unsatisfied input count per task (only local tasks maintained).
    remaining: Vec<usize>,
    store: HashMap<VersionId, DataState>,
    pending_gets: BinaryHeap<PendingGet>,
    inflight_gets: usize,
    inflight_get_bytes: usize,
    /// Multicast subtrees to forward once the version's data arrives.
    pending_forwards: HashMap<VersionId, (Vec<u32>, i64, u64)>,
    seq: u64,
    pub executed: u64,
    pub worker_busy: SimTime,
    /// Per task-class execution counts and busy time.
    pub class_stats: HashMap<&'static str, (u64, SimTime)>,
    /// End-to-end latency per flow: ACTIVATE send → data arrival (§6.4.2).
    pub e2e: OnlineStats,
    /// Individual ACTIVATE message latency (§6.4.3).
    pub msg_lat: OnlineStats,
    /// Control-path latency: ACTIVATE send → GET DATA arrival at the data
    /// owner (the software component of the end-to-end path, excluding the
    /// bulk transfer itself).
    pub req_lat: OnlineStats,
    /// Optional execution timeline (Chrome-trace export).
    pub trace: Trace,
    /// Cluster-wide compute/wire concurrency integrator (metrics mode).
    overlap: Option<Shared<OverlapTracker>>,
}

pub(crate) type RtHandle = Shared<NodeRt>;

impl NodeRt {
    pub fn new(
        node: NodeId,
        graph: Rc<TaskGraph>,
        engine: Rc<CommEngine>,
        cfg: ClusterConfig,
        workers: Vec<CoreHandle>,
        overlap: Option<Shared<OverlapTracker>>,
    ) -> NodeRt {
        let nworkers = workers.len();
        let trace = Trace::new(cfg.trace);
        NodeRt {
            node,
            graph,
            engine,
            cfg,
            workers,
            idle_workers: (0..nworkers).rev().collect(),
            ready: BinaryHeap::new(),
            remaining: Vec::new(),
            store: HashMap::new(),
            pending_gets: BinaryHeap::new(),
            inflight_gets: 0,
            inflight_get_bytes: 0,
            pending_forwards: HashMap::new(),
            seq: 0,
            executed: 0,
            worker_busy: SimTime::ZERO,
            class_stats: HashMap::new(),
            e2e: OnlineStats::new(),
            msg_lat: OnlineStats::new(),
            req_lat: OnlineStats::new(),
            trace,
            overlap,
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Initialize local state: resident initial data, dependence counters,
    /// initially-ready tasks, and ACTIVATEs for initial data needed
    /// remotely.
    pub fn init(rt: &RtHandle, sim: &mut Sim) {
        let (graph, node) = {
            let r = rt.borrow();
            (r.graph.clone(), r.node)
        };
        {
            let mut r = rt.borrow_mut();
            r.remaining = vec![0; graph.tasks.len()];
            for (i, v) in graph.versions.iter().enumerate() {
                if v.producer.is_none() && v.home == node {
                    r.store
                        .insert(VersionId(i), DataState::Present(v.initial.clone()));
                }
            }
            for t in &graph.tasks {
                if t.node != node {
                    continue;
                }
                let missing = t
                    .inputs
                    .iter()
                    .filter(|v| !matches!(r.store.get(v), Some(DataState::Present(_))))
                    .count();
                r.remaining[t.id] = missing;
                if missing == 0 {
                    let seq = r.next_seq();
                    r.ready.push(Ready {
                        priority: t.priority,
                        seq,
                        task: t.id,
                    });
                }
            }
        }
        // Announce initial data to remote consumers (pseudo-completion of a
        // "source" task at t=0).
        for (i, v) in graph.versions.iter().enumerate() {
            if v.producer.is_none() && v.home == node {
                NodeRt::announce(rt, sim, VersionId(i), None);
            }
        }
        NodeRt::dispatch(rt, sim);
    }

    /// Send ACTIVATE records for `version` to every remote node that
    /// consumes it. In multithreaded mode the worker sends directly and the
    /// costs are returned for charging to the worker (`None` ⇒ funneled).
    fn announce(rt: &RtHandle, sim: &mut Sim, version: VersionId, mt_cost: Option<&mut SimTime>) {
        let (graph, node, engine, size) = {
            let r = rt.borrow();
            let size = match r.store.get(&version) {
                Some(DataState::Present(Some(b))) => b.len(),
                _ => r.graph.versions[version.0].size,
            };
            (r.graph.clone(), r.node, r.engine.clone(), size)
        };
        let v = &graph.versions[version.0];
        // Group remote consumers by node, remembering the best priority.
        let mut dests: Vec<(NodeId, i64)> = Vec::new();
        for &t in &v.consumers {
            let tn = graph.tasks[t].node;
            if tn == node {
                continue;
            }
            match dests.iter_mut().find(|(n, _)| *n == tn) {
                Some((_, p)) => *p = (*p).max(graph.tasks[t].priority),
                None => dests.push((tn, graph.tasks[t].priority)),
            }
        }
        if dests.is_empty() {
            return;
        }
        let mt = mt_cost.is_some() && rt.borrow().cfg.multithread_am;
        let tree_min = rt.borrow().cfg.bcast_tree_min;
        let sent_at = sim.now().as_ns();

        // Wide broadcasts go through a binomial multicast tree (Figure 1).
        let sends: Vec<ActivateRec_Send> = if tree_min.is_some_and(|m| dests.len() >= m) {
            let best_priority = dests.iter().map(|(_, p)| *p).max().expect("non-empty");
            let mut ids: Vec<u32> = dests.iter().map(|(n, _)| *n as u32).collect();
            ids.sort_unstable();
            crate::records::tree_children(&ids)
                .into_iter()
                .map(|(child, subtree)| ActivateRec_Send {
                    dst: child as NodeId,
                    rec: ActivateRec {
                        version: version.0 as u64,
                        size: size as u64,
                        priority: best_priority,
                        sent_at_ns: sent_at,
                        forward: subtree,
                    },
                })
                .collect()
        } else {
            dests
                .into_iter()
                .map(|(dst, priority)| ActivateRec_Send {
                    dst,
                    rec: ActivateRec::direct(version.0 as u64, size as u64, priority, sent_at),
                })
                .collect()
        };

        let trace_on = rt.borrow().trace.enabled();
        let mut extra = SimTime::ZERO;
        for s in sends {
            let wire = ACTIVATE_WIRE_BYTES + 4 * s.rec.forward.len();
            let payload = s.rec.encode_one_with(engine.buf_pool());
            if trace_on {
                let id = flow_id(FLOW_ACTIVATE, s.rec.version, node, s.dst);
                rt.borrow_mut().trace.flow_start(
                    format!("n{node}.comm"),
                    "activate",
                    id,
                    sim.now(),
                );
            }
            if mt {
                extra += engine.send_am_direct(sim, s.dst, AM_ACTIVATE, wire, Some(payload));
            } else {
                engine.send_am(sim, s.dst, AM_ACTIVATE, wire, Some(payload));
                extra += rt.borrow().cfg.cost.submit_cost;
            }
        }
        if let Some(c) = mt_cost {
            *c += extra;
        }
    }

    /// Forward a multicast announcement down the subtree once the data is
    /// locally present (called from the communication-thread context).
    fn forward_subtree(
        rt: &RtHandle,
        sim: &mut Sim,
        version: VersionId,
        subtree: &[u32],
        priority: i64,
        sent_at_ns: u64,
        size: usize,
    ) {
        let (engine, node, trace_on) = {
            let r = rt.borrow();
            (r.engine.clone(), r.node, r.trace.enabled())
        };
        for (child, sub) in crate::records::tree_children(subtree) {
            let rec = ActivateRec {
                version: version.0 as u64,
                size: size as u64,
                priority,
                sent_at_ns,
                forward: sub,
            };
            let wire = ACTIVATE_WIRE_BYTES + 4 * rec.forward.len();
            if trace_on {
                let id = flow_id(FLOW_ACTIVATE, rec.version, node, child as NodeId);
                rt.borrow_mut().trace.flow_start(
                    format!("n{node}.comm"),
                    "activate",
                    id,
                    sim.now(),
                );
            }
            engine.send_am(
                sim,
                child as NodeId,
                AM_ACTIVATE,
                wire,
                Some(rec.encode_one_with(engine.buf_pool())),
            );
        }
    }

    /// Assign ready tasks to idle workers.
    pub fn dispatch(rt: &RtHandle, sim: &mut Sim) {
        loop {
            let (task, widx, dur) = {
                let mut r = rt.borrow_mut();
                if r.ready.is_empty() || r.idle_workers.is_empty() {
                    return;
                }
                let ready = r.ready.pop().expect("checked non-empty");
                let widx = r.idle_workers.pop().expect("checked non-empty");
                let t = &r.graph.tasks[ready.task];
                let dur = r.cfg.cost.task_duration(t.flops, t.efficiency);
                let name = t.name;
                r.worker_busy += dur;
                let entry = r.class_stats.entry(name).or_insert((0, SimTime::ZERO));
                entry.0 += 1;
                entry.1 += dur;
                if let Some(o) = &r.overlap {
                    o.borrow_mut().busy_add(r.node, sim.now(), 1);
                }
                (ready.task, widx, dur)
            };
            let rt2 = rt.clone();
            let core = rt.borrow().workers[widx].clone();
            core.borrow_mut().charge(sim, dur, move |sim| {
                {
                    let mut r = rt2.borrow_mut();
                    if r.trace.enabled() {
                        let end = sim.now();
                        let name = r.graph.tasks[task].name;
                        let node = r.node;
                        r.trace
                            .record(format!("n{node}.w{widx}"), name, end - dur, end);
                    }
                }
                NodeRt::task_done(&rt2, sim, task, widx);
            });
        }
    }

    /// A task finished on a worker: run its kernel (Numeric mode), store
    /// outputs, release local consumers, announce to remote ones, then
    /// return the worker to the idle pool.
    fn task_done(rt: &RtHandle, sim: &mut Sim, task: TaskId, widx: usize) {
        let graph = rt.borrow().graph.clone();
        let t = &graph.tasks[task];

        // Execute the kernel on real payloads.
        let outputs: Vec<Option<Bytes>> = {
            let r = rt.borrow();
            if r.cfg.mode == ExecMode::Numeric {
                if let Some(kernel) = &t.kernel {
                    // Control (size-0) inputs carry no payload and are not
                    // handed to kernels.
                    let inputs: Vec<Bytes> = t
                        .inputs
                        .iter()
                        .filter(|v| graph.versions[v.0].size > 0)
                        .map(|v| match r.store.get(v) {
                            Some(DataState::Present(Some(b))) => b.clone(),
                            _ => {
                                panic!("task {} ran without input version {:?} present", t.name, v)
                            }
                        })
                        .collect();
                    drop(r);
                    let outs = kernel(&inputs);
                    assert_eq!(outs.len(), t.outputs.len(), "kernel output arity");
                    outs.into_iter().map(Some).collect()
                } else {
                    t.outputs.iter().map(|_| None).collect()
                }
            } else {
                t.outputs.iter().map(|_| None).collect()
            }
        };

        {
            let mut r = rt.borrow_mut();
            r.executed += 1;
            for (vid, bytes) in t.outputs.iter().zip(outputs) {
                let prev = r.store.insert(*vid, DataState::Present(bytes));
                assert!(prev.is_none(), "output version produced twice");
            }
        }

        // Release local consumers of each output.
        for vid in &t.outputs {
            NodeRt::release_local(rt, *vid);
        }

        // Announce to remote consumers; in multithreaded mode the send cost
        // extends the worker's occupancy.
        let mut extra = SimTime::ZERO;
        for vid in &t.outputs {
            NodeRt::announce(rt, sim, *vid, Some(&mut extra));
        }

        let rt2 = rt.clone();
        let core = rt.borrow().workers[widx].clone();
        if extra.is_zero() {
            extra = SimTime::from_ns(1);
        }
        rt.borrow_mut().worker_busy += extra;
        core.borrow_mut().charge(sim, extra, move |sim| {
            {
                let mut r = rt2.borrow_mut();
                r.idle_workers.push(widx);
                if let Some(o) = &r.overlap {
                    o.borrow_mut().busy_add(r.node, sim.now(), -1);
                }
            }
            NodeRt::dispatch(&rt2, sim);
        });
        NodeRt::dispatch(rt, sim);
    }

    fn release_local(rt: &RtHandle, version: VersionId) {
        let graph = rt.borrow().graph.clone();
        let node = rt.borrow().node;
        let mut r = rt.borrow_mut();
        for &c in &graph.versions[version.0].consumers {
            if graph.tasks[c].node != node {
                continue;
            }
            let rem = &mut r.remaining[c];
            debug_assert!(*rem > 0, "double release of task {c}");
            *rem -= 1;
            if *rem == 0 {
                let seq = r.next_seq();
                r.ready.push(Ready {
                    priority: graph.tasks[c].priority,
                    seq,
                    task: c,
                });
            }
        }
    }

    /// ACTIVATE callback (communication-thread context): prioritize each
    /// announced flow and request it now or defer it behind the in-flight
    /// window (§4.1).
    pub fn on_activate(rt: &RtHandle, sim: &mut Sim, ev: AmEvent) -> SimTime {
        let recs = ActivateRec::decode_frames(&ev.data);
        // The arrival buffers are dead after decoding: feed them back to the
        // engine's pool so outgoing encodes reuse them instead of allocating.
        {
            let engine = rt.borrow().engine.clone();
            engine.buf_pool().recycle_frames(ev.data);
        }
        let mut cost = SimTime::ZERO;
        {
            let mut r = rt.borrow_mut();
            let now_ns = sim.now().as_ns();
            let mut ctl_released = Vec::new();
            for rec in &recs {
                cost += r.cfg.cost.activate_record_cost;
                r.msg_lat.record(
                    (SimTime::from_ns(now_ns) - SimTime::from_ns(rec.sent_at_ns)).as_us_f64(),
                );
                if r.trace.enabled() {
                    let node = r.node;
                    let id = flow_id(FLOW_ACTIVATE, rec.version, ev.src, node);
                    r.trace
                        .flow_end(format!("n{node}.comm"), "activate", id, sim.now());
                }
                let vid = VersionId(rec.version as usize);
                if rec.size == 0 {
                    // Control dependency (PaRSEC CTL flow): the ACTIVATE
                    // itself satisfies it — no GET DATA / put round trip.
                    let prev = r.store.insert(vid, DataState::Present(None));
                    assert!(prev.is_none(), "version announced twice to one node");
                    ctl_released.push((vid, rec.clone()));
                    continue;
                }
                let prev = r.store.insert(vid, DataState::Requested);
                assert!(prev.is_none(), "version announced twice to one node");
                if !rec.forward.is_empty() {
                    r.pending_forwards
                        .insert(vid, (rec.forward.clone(), rec.priority, rec.sent_at_ns));
                }
                let seq = r.next_seq();
                r.pending_gets.push(PendingGet {
                    priority: rec.priority,
                    seq,
                    version: rec.version as usize,
                    src: ev.src,
                    size: rec.size as usize,
                    activate_sent_at_ns: rec.sent_at_ns,
                });
            }
            drop(r);
            if !ctl_released.is_empty() {
                for (vid, rec) in ctl_released {
                    NodeRt::release_local(rt, vid);
                    if !rec.forward.is_empty() {
                        NodeRt::forward_subtree(
                            rt,
                            sim,
                            vid,
                            &rec.forward,
                            rec.priority,
                            rec.sent_at_ns,
                            0,
                        );
                    }
                }
                let rt2 = rt.clone();
                sim.schedule_now(move |sim| NodeRt::dispatch(&rt2, sim));
            }
        }
        cost + NodeRt::pump_gets(rt, sim)
    }

    /// Send GET DATA for the highest-priority pending flows while the
    /// in-flight window has room. Communication-thread context.
    fn pump_gets(rt: &RtHandle, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            let (engine, get) = {
                let mut r = rt.borrow_mut();
                if r.inflight_gets >= r.cfg.get_window {
                    return cost;
                }
                let next_size = match r.pending_gets.peek() {
                    Some(g) => g.size,
                    None => return cost,
                };
                // Byte budget (priority-relative deferral): beyond the
                // minimum concurrency, defer fetches that would exceed it.
                if r.cfg.get_window_bytes > 0
                    && r.inflight_gets >= r.cfg.get_window_min_flows
                    && r.inflight_get_bytes + next_size > r.cfg.get_window_bytes
                {
                    return cost;
                }
                let g = r.pending_gets.pop().expect("peeked non-empty");
                r.inflight_gets += 1;
                r.inflight_get_bytes += g.size;
                (r.engine.clone(), g)
            };
            let rec = GetRec {
                version: get.version as u64,
                activate_sent_at_ns: get.activate_sent_at_ns,
            };
            engine.send_am_opts(
                sim,
                get.src,
                AM_GETDATA,
                GET_WIRE_BYTES,
                Some(rec.encode_with(engine.buf_pool())),
                false,
            );
            cost += rt.borrow().cfg.cost.get_send_cost;
        }
    }

    /// GET DATA callback at the data owner: start the put (Figure 1).
    pub fn on_getdata(rt: &RtHandle, sim: &mut Sim, ev: AmEvent) -> SimTime {
        let recs = GetRec::decode_frames(&ev.data);
        {
            let engine = rt.borrow().engine.clone();
            engine.buf_pool().recycle_frames(ev.data);
        }
        let mut cost = SimTime::ZERO;
        for rec in recs {
            {
                let mut r = rt.borrow_mut();
                let lat = sim.now() - SimTime::from_ns(rec.activate_sent_at_ns);
                r.req_lat.record(lat.as_us_f64());
                if r.trace.enabled() {
                    let node = r.node;
                    let id = flow_id(FLOW_DATA, rec.version, node, ev.src);
                    r.trace
                        .flow_start(format!("n{node}.comm"), "data", id, sim.now());
                }
            }
            let (engine, size, data) = {
                let r = rt.borrow();
                let vid = VersionId(rec.version as usize);
                let (size, data) = match r.store.get(&vid) {
                    Some(DataState::Present(Some(b))) => (b.len(), Some(b.clone())),
                    Some(DataState::Present(None)) => (r.graph.versions[vid.0].size, None),
                    _ => panic!("GET DATA for version not present at owner"),
                };
                (r.engine.clone(), size, data)
            };
            cost += rt.borrow().cfg.cost.get_request_cost;
            let cb = PutCb {
                version: rec.version,
                activate_sent_at_ns: rec.activate_sent_at_ns,
            };
            engine.put(
                sim,
                PutRequest {
                    dst: ev.src,
                    size,
                    data,
                    r_tag: RTAG_DATA,
                    cb_data: cb.encode_with(engine.buf_pool()),
                    on_local: Box::new(|_sim, _eng| SimTime::ZERO),
                },
            );
        }
        cost
    }

    /// Data-arrival callback (one-sided completion at the consumer node):
    /// store the payload, record end-to-end latency, release consumers.
    pub fn on_data(rt: &RtHandle, sim: &mut Sim, ev: PutEvent) -> SimTime {
        let cb = PutCb::decode(ev.cb_data.clone());
        let vid = VersionId(cb.version as usize);
        let cost;
        {
            let mut r = rt.borrow_mut();
            let e2e_us = (sim.now() - SimTime::from_ns(cb.activate_sent_at_ns)).as_us_f64();
            r.e2e.record(e2e_us);
            if r.trace.enabled() {
                let node = r.node;
                let id = flow_id(FLOW_DATA, cb.version, ev.src, node);
                r.trace
                    .flow_end(format!("n{node}.comm"), "data", id, sim.now());
            }
            let prev = r.store.insert(vid, DataState::Present(ev.data));
            assert!(
                matches!(prev, Some(DataState::Requested)),
                "data arrived for un-requested version"
            );
            debug_assert!(r.inflight_gets > 0);
            r.inflight_gets -= 1;
            r.inflight_get_bytes = r.inflight_get_bytes.saturating_sub(ev.size);
            cost = r.cfg.cost.arrival_cost;
        }
        NodeRt::release_local(rt, vid);
        // Multicast relay: now that the data is local, announce it down the
        // subtree; children will GET it from this node.
        let fwd = rt.borrow_mut().pending_forwards.remove(&vid);
        if let Some((subtree, priority, sent_at_ns)) = fwd {
            NodeRt::forward_subtree(rt, sim, vid, &subtree, priority, sent_at_ns, ev.size);
        }
        let cost = cost + NodeRt::pump_gets(rt, sim);
        // Worker dispatch happens outside the communication thread.
        let rt2 = rt.clone();
        sim.schedule_now(move |sim| NodeRt::dispatch(&rt2, sim));
        cost
    }

    /// Payload of the current state of `version`, if locally present.
    pub fn data(&self, version: VersionId) -> Option<Bytes> {
        match self.store.get(&version) {
            Some(DataState::Present(b)) => b.clone(),
            _ => None,
        }
    }
}

#[allow(non_camel_case_types)]
struct ActivateRec_Send {
    dst: NodeId,
    rec: ActivateRec,
}

/// Encode several ACTIVATE records into one payload (used by tests).
#[allow(dead_code)]
pub(crate) fn encode_records(recs: &[ActivateRec]) -> Bytes {
    let mut b = BytesMut::with_capacity(recs.iter().map(|r| r.enc_len()).sum());
    for r in recs {
        r.encode_into(&mut b);
    }
    b.freeze()
}
